// Ablation: adaptive two-phase SFI (measure p per subpopulation, then
// re-plan) against the paper's one-shot approaches, replayed against the
// exhaustive census. The adaptive campaign removes the data-aware method's
// reliance on the weight-distribution heuristic at the cost of a pilot
// round — it is the realizable form of Neyman allocation.

#include <iostream>

#include "core/adaptive.hpp"
#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;  // e = 1%, 99%

    std::cout << "Ablation: adaptive two-phase SFI vs one-shot approaches "
                 "(replayed against the census)\n\n";

    report::Table table({"Approach", "FIs", "Avg layer margin [%]",
                         "Layers contained", "Max |layer error| [%]"});

    auto add_campaign = [&](const char* name,
                            const core::CampaignResult& result,
                            std::uint64_t injected) {
        const auto v =
            core::validate_against_exhaustive(universe, result, truth);
        table.add_row({name, report::fmt_u64(injected),
                       report::fmt_percent(v.avg_layer_margin, 3),
                       std::to_string(v.layers_contained) + "/" +
                           std::to_string(v.layers_total),
                       report::fmt_percent(v.max_layer_abs_error, 3)});
    };

    const auto lw = core::replay(universe, core::plan_layer_wise(universe, spec),
                                 truth, testbed.rng("adapt-lw"));
    add_campaign("layer-wise (one-shot)", lw, lw.total_injected());

    const auto crit = core::analyze_network(testbed.network());
    const auto da =
        core::replay(universe, core::plan_data_aware(universe, spec, crit),
                     truth, testbed.rng("adapt-da"));
    add_campaign("data-aware (one-shot)", da, da.total_injected());

    for (const std::uint64_t pilot : {20ull, 50ull, 100ull}) {
        core::AdaptiveConfig config;
        config.spec = spec;
        config.pilot_size = pilot;
        const auto adaptive = core::replay_adaptive(
            universe, truth, config,
            testbed.rng("adaptive-" + std::to_string(pilot)));
        add_campaign(("adaptive, pilot=" + std::to_string(pilot)).c_str(),
                     adaptive.combined, adaptive.total_injected());
    }
    table.print(std::cout);

    std::cout << "\n(the adaptive campaign needs no weight-distribution "
                 "assumption: the pilot measures each subpopulation's p "
                 "directly, then Eq. 1 sizes the remainder — cost between "
                 "data-aware and layer-wise, margins comparable)\n";
    return 0;
}

// Ablation: how should a FIXED fault budget be allocated across layers?
// Compares proportional allocation (what a network-wise sample converges to)
// against Neyman allocation using the per-layer outcome variability, and
// against the paper's per-layer Eq. 1 (layer-wise) allocation — measured by
// the worst per-layer estimation error against ground truth.

#include <cmath>
#include <iostream>

#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"
#include "stats/stratified.hpp"

using namespace statfi;

namespace {

/// Replays a custom per-layer allocation and returns (avg, max) abs error.
std::pair<double, double> replay_allocation(
    core::Testbed& testbed, const std::vector<std::uint64_t>& allocation,
    const std::string& label) {
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    core::CampaignPlan plan;
    plan.approach = core::Approach::LayerWise;
    for (int l = 0; l < universe.layer_count(); ++l) {
        core::SubpopPlan sp;
        sp.layer = l;
        sp.bit = -1;
        sp.population = universe.layer_population(l);
        sp.sample_size = std::min<std::uint64_t>(
            allocation[static_cast<std::size_t>(l)], sp.population);
        plan.subpops.push_back(sp);
    }
    const auto result = core::replay(universe, plan, truth, testbed.rng(label));
    double sum = 0.0, worst = 0.0;
    for (const auto& sp : result.subpops) {
        const double exact = truth.layer_critical_rate(universe, sp.plan.layer);
        const double err = std::fabs(sp.critical_rate() - exact);
        sum += err;
        worst = std::max(worst, err);
    }
    return {sum / static_cast<double>(result.subpops.size()), worst};
}

}  // namespace

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();

    // Budget: what layer-wise Eq. 1 would spend in total.
    const auto lw_plan =
        core::plan_layer_wise(universe, stats::SampleSpec{});
    const std::uint64_t budget = lw_plan.total_sample_size();

    std::vector<std::uint64_t> sizes;
    std::vector<double> stddevs;
    for (int l = 0; l < universe.layer_count(); ++l) {
        sizes.push_back(universe.layer_population(l));
        const double p = truth.layer_critical_rate(universe, l);
        stddevs.push_back(std::sqrt(p * (1.0 - p)));
    }

    const auto proportional = stats::proportional_allocation(sizes, budget);
    const auto neyman = stats::neyman_allocation(sizes, stddevs, budget);
    std::vector<std::uint64_t> eq1;
    for (const auto& sp : lw_plan.subpops) eq1.push_back(sp.sample_size);

    std::cout << "Ablation: allocating a " << report::fmt_u64(budget)
              << "-fault budget across " << universe.layer_count()
              << " layers (20 replications each)\n\n";

    report::Table table({"Allocation", "Avg |error| [%]", "Max |error| [%]"});
    struct Scheme {
        const char* name;
        const std::vector<std::uint64_t>* alloc;
    };
    for (const Scheme scheme :
         {Scheme{"proportional (network-wise-like)", &proportional},
          Scheme{"Neyman (variance-optimal)", &neyman},
          Scheme{"per-layer Eq. 1 (paper layer-wise)", &eq1}}) {
        double avg = 0.0, worst = 0.0;
        constexpr int kReps = 20;
        for (int rep = 0; rep < kReps; ++rep) {
            const auto [a, w] = replay_allocation(
                testbed, *scheme.alloc,
                std::string(scheme.name) + "#" + std::to_string(rep));
            avg += a;
            worst = std::max(worst, w);
        }
        table.add_row({scheme.name, report::fmt_percent(avg / kReps, 4),
                       report::fmt_percent(worst, 4)});
    }
    table.print(std::cout);

    std::cout << "\n(Neyman needs the very variances the campaign is trying "
                 "to estimate — realizable only iteratively; Eq. 1 per layer "
                 "is the practical near-optimum the paper adopts.)\n";
    return 0;
}

// Ablation: error-margin constructions. The paper uses the FPC-corrected
// normal (Wald) margin at the observed rate, which reports ZERO margin when
// a subpopulation observes no critical fault. This bench measures the
// empirical containment of the paper's margin vs Laplace-smoothed Wald vs
// Wilson vs Clopper-Pearson across repeated samples against ground truth.

#include <iostream>

#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"
#include "stats/intervals.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;
    const auto plan = core::plan_layer_wise(universe, spec);

    constexpr int kSamples = 40;
    constexpr double kConfidence = 0.99;

    int paper_ok = 0, laplace_ok = 0, wilson_ok = 0, cp_ok = 0, total = 0;
    double paper_width = 0.0, laplace_width = 0.0, wilson_width = 0.0,
           cp_width = 0.0;

    for (int s = 0; s < kSamples; ++s) {
        const auto result = core::replay(
            universe, plan, truth, testbed.rng("ci-" + std::to_string(s)));
        for (const auto& sp : result.subpops) {
            const double exact =
                truth.layer_critical_rate(universe, sp.plan.layer);
            ++total;

            core::EstimatorConfig paper_cfg;
            const auto paper = core::estimate_subpop(sp, paper_cfg);
            paper_ok += paper.contains(exact);
            paper_width += paper.interval.width();

            core::EstimatorConfig laplace_cfg;
            laplace_cfg.laplace_smoothing = true;
            const auto laplace = core::estimate_subpop(sp, laplace_cfg);
            laplace_ok += laplace.contains(exact);
            laplace_width += laplace.interval.width();

            const auto wilson =
                stats::wilson_interval(sp.critical, sp.injected, kConfidence);
            wilson_ok += wilson.contains(exact);
            wilson_width += wilson.width();

            const auto cp = stats::clopper_pearson_interval(
                sp.critical, sp.injected, kConfidence);
            cp_ok += cp.contains(exact);
            cp_width += cp.width();
        }
    }

    std::cout << "Ablation: interval constructions over " << kSamples
              << " layer-wise samples x " << universe.layer_count()
              << " layers (99% nominal confidence)\n\n";
    report::Table table({"Construction", "Containment [%]",
                         "Mean width [%]", "Notes"});
    auto pct = [&](int ok) {
        return report::fmt_percent(static_cast<double>(ok) / total, 1);
    };
    auto width = [&](double w) {
        return report::fmt_percent(w / total, 3);
    };
    table.add_row({"Wald+FPC at p_hat (paper)", pct(paper_ok),
                   width(paper_width), "zero width at k=0"});
    table.add_row({"Wald+FPC, Laplace-smoothed", pct(laplace_ok),
                   width(laplace_width), "honest at k=0"});
    table.add_row({"Wilson score", pct(wilson_ok), width(wilson_width),
                   "no FPC"});
    table.add_row({"Clopper-Pearson exact", pct(cp_ok), width(cp_width),
                   "conservative"});
    table.print(std::cout);

    std::cout << "\n(The paper's construction achieves near-nominal "
                 "containment here because layer-wise samples are large "
                 "enough to observe criticals; on sparse subpopulations its "
                 "zero-width degenerate intervals under-cover — the reason "
                 "the estimator offers smoothing and the Wilson/CP "
                 "alternatives.)\n";
    return 0;
}

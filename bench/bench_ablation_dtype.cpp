// Ablation: data representations (the paper's stated future work, §VI).
// Computes the data-aware p(i) profile and campaign sizes when the weights
// are stored as FP32 / FP16 / bfloat16 / INT8, and measures the per-dtype
// critical rates on the validation substrate.
//
// Expected physics: the narrower the exponent field, the fewer catastrophic
// bit positions; INT8 has no exponent at all, so criticality spreads across
// the magnitude bits and the data-aware advantage shrinks.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;
using fault::DataType;

int main() {
    core::Testbed testbed;
    auto& net = testbed.network();
    const stats::SampleSpec spec;

    std::cout << "Ablation: data-aware SFI across weight data types "
                 "(MicroNet substrate)\n\n";

    report::Table table({"dtype", "bits", "population N", "data-unaware n",
                         "data-aware n", "reduction", "max-p bit",
                         "critical rate (sampled) [%]"});

    for (const DataType dtype : {DataType::Float32, DataType::Float16,
                                 DataType::BFloat16, DataType::Int8}) {
        auto universe = fault::FaultUniverse::stuck_at(net, dtype);
        core::DataAwareConfig config;
        config.dtype = dtype;
        if (dtype == DataType::Int8) {
            // Per-network symmetric scale, as the injector would use.
            float max_abs = 0.0f;
            for (auto& ref : net.weight_layers())
                max_abs = std::max(max_abs, ref.weight->max_abs());
            config.quant.scale = max_abs > 0 ? max_abs / 127.0f : 1.0f;
        }
        const auto crit = core::analyze_network(net, config);
        const auto unaware = core::plan_data_unaware(universe, spec);
        const auto aware = core::plan_data_aware(universe, spec, crit);

        int max_bit = 0;
        for (int i = 1; i < crit.bits(); ++i)
            if (crit.p[static_cast<std::size_t>(i)] >
                crit.p[static_cast<std::size_t>(max_bit)])
                max_bit = i;

        // Run a small real (non-replayed) data-aware campaign per dtype.
        core::ExecutorConfig exec_config;
        exec_config.dtype = dtype;
        core::CampaignEngine exec(net, testbed.eval_set(), exec_config);
        stats::SampleSpec coarse = spec;
        coarse.error_margin = 0.05;  // keep runtime in seconds
        const auto small_plan = core::plan_data_aware(universe, coarse, crit);
        const auto result = exec.run(universe, small_plan,
                                     testbed.rng(fault::to_string(dtype)));

        table.add_row(
            {fault::to_string(dtype), std::to_string(universe.bits()),
             report::fmt_u64(universe.total()),
             report::fmt_u64(unaware.total_sample_size()),
             report::fmt_u64(aware.total_sample_size()),
             report::fmt_double(
                 static_cast<double>(unaware.total_sample_size()) /
                     static_cast<double>(aware.total_sample_size()),
                 1) + "x",
             std::to_string(max_bit),
             report::fmt_percent(result.critical_rate(), 2)});
    }
    table.print(std::cout);

    std::cout << "\n(fp32/fp16/bf16: criticality pinned to the exponent MSB; "
                 "int8: spread over magnitude bits — the data-aware "
                 "reduction shrinks as the representation loses its "
                 "exponent.)\n";
    return 0;
}

// Ablation: fault models beyond the paper's permanent weight stuck-ats.
// Compares, on the trained validation substrate:
//  * permanent stuck-at-0/1 on weights (the paper's model),
//  * transient single-bit flips on weights,
//  * transient single-bit flips on activations (one inference),
// each sampled layer/node-wise at the same statistical settings.

#include <iostream>

#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    auto& net = testbed.network();
    stats::SampleSpec spec;
    spec.error_margin = 0.02;  // single-core budget; same spec for all models

    std::cout << "Ablation: permanent weight faults vs transient weight and "
                 "activation faults (MicroNet substrate, e = 2%)\n\n";

    // --- permanent stuck-at on weights (the paper's model) -----------------
    auto sa_universe = fault::FaultUniverse::stuck_at(net);
    auto& executor = testbed.engine();
    const auto sa_result =
        executor.run(sa_universe, core::plan_layer_wise(sa_universe, spec),
                     testbed.rng("transient-sa"));

    // --- transient bit flip on weights --------------------------------------
    auto flip_universe = fault::FaultUniverse::bit_flip(net);
    const auto flip_result =
        executor.run(flip_universe, core::plan_layer_wise(flip_universe, spec),
                     testbed.rng("transient-flip"));

    report::Table weights_table({"Layer", "Stuck-at N", "Stuck-at crit [%]",
                                 "Bit-flip N", "Bit-flip crit [%]"});
    for (int l = 0; l < sa_universe.layer_count(); ++l) {
        const auto sa = core::estimate_subpop(sa_result.subpops[
            static_cast<std::size_t>(l)]);
        const auto fl = core::estimate_subpop(flip_result.subpops[
            static_cast<std::size_t>(l)]);
        weights_table.add_row(
            {sa_universe.layer(l).name,
             report::fmt_u64(sa_universe.layer_population(l)),
             report::fmt_percent(sa.rate, 2),
             report::fmt_u64(flip_universe.layer_population(l)),
             report::fmt_percent(fl.rate, 2)});
    }
    weights_table.print(std::cout);
    std::cout << "\n(a bit flip is a stuck-at that always lands on the "
                 "opposite value: with ~50% of stuck-ats masked, the flip "
                 "critical rate is ~2x the stuck-at rate)\n\n";

    // --- transient bit flip on activations ---------------------------------
    // Same engine, same plan/run path as the weight models: the activation
    // universe's "layers" are graph nodes.
    const auto act_universe =
        fault::FaultUniverse::activation(net, Shape{3, 32, 32});
    const auto act_result = executor.run(
        act_universe, core::plan_layer_wise(act_universe, spec),
        testbed.rng("transient-act"));

    report::Table act_table({"Node", "Elements/inference", "N", "FIs",
                             "Critical [%]"});
    for (std::size_t s = 0; s < act_result.subpops.size(); ++s) {
        const auto& sp = act_result.subpops[s];
        const int node = sp.plan.layer;
        act_table.add_row({act_universe.layer(node).name,
                           report::fmt_u64(act_universe.layer(node).weight_count),
                           report::fmt_u64(sp.plan.population),
                           report::fmt_u64(sp.injected),
                           report::fmt_percent(sp.critical_rate(), 2)});
    }
    act_table.print(std::cout);
    std::cout << "\n(activation faults are single-inference events: later "
                 "nodes have fewer elements but each corrupted value feeds "
                 "the decision more directly — the classifier head is the "
                 "most vulnerable per bit)\n";
    return 0;
}

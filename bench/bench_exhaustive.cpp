// Reproduces the paper's §V experimental setup at validation scale: the
// exhaustive stuck-at campaign that grounds every statistical comparison.
// The paper spent 37 GPU-days on ResNet-20 / 54 on MobileNetV2; this runs
// the equivalent census on the MicroNet substrate (DESIGN.md §2) in seconds
// and caches the per-fault outcome table for the Table III / Fig. 5-7
// benches.

#include <iostream>

#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    std::cout << "Exhaustive fault-injection census (validation substrate)\n\n";
    std::cout << "model: MicroNet (" << testbed.network().total_weight_count()
              << " injectable weights)\n"
              << "test accuracy: "
              << report::fmt_percent(testbed.test_accuracy(), 2)
              << "% (paper: ResNet-20 91.7%, MobileNetV2 92.01%)\n"
              << "evaluation images per fault: " << testbed.eval_set().size()
              << ", golden accuracy on them: "
              << report::fmt_percent(testbed.golden_accuracy(), 2) << "%\n"
              << "fault model: permanent stuck-at-0/1 on all weight bits "
                 "(single-fault assumption)\n"
              << "population N = " << report::fmt_u64(testbed.universe().total())
              << " faults\n\n";

    const auto& truth = testbed.ground_truth();
    const auto& universe = testbed.universe();

    std::uint64_t critical = 0, masked = 0;
    for (std::uint64_t i = 0; i < truth.size(); ++i) {
        critical += truth.at(i) == core::FaultOutcome::Critical;
        masked += truth.at(i) == core::FaultOutcome::Masked;
    }
    std::cout << "outcomes: " << report::fmt_u64(critical) << " critical ("
              << report::fmt_percent(truth.network_critical_rate(), 3)
              << "%), " << report::fmt_u64(masked)
              << " masked (exactly half of a stuck-at census)\n\n";

    report::Table per_layer({"Layer", "Name", "Faults", "Critical rate [%]"});
    for (int l = 0; l < universe.layer_count(); ++l)
        per_layer.add_row(
            {std::to_string(l), universe.layer(l).name,
             report::fmt_u64(universe.layer_population(l)),
             report::fmt_percent(truth.layer_critical_rate(universe, l), 3)});
    per_layer.print(std::cout);

    std::cout << "\nPer-bit critical rate (pooled over layers):\n";
    for (int bit = 31; bit >= 0; --bit) {
        double weighted = 0.0;
        std::uint64_t pop = 0;
        for (int l = 0; l < universe.layer_count(); ++l) {
            const auto sub = universe.bit_population(l);
            weighted += truth.subpop_critical_rate(universe, l, bit) *
                        static_cast<double>(sub);
            pop += sub;
        }
        const double rate = weighted / static_cast<double>(pop);
        std::cout << report::bar("bit " + std::to_string(bit), rate, 0.5, 40, 8)
                  << '\n';
    }
    std::cout << "\n(shape check: criticality concentrates at the exponent "
                 "MSB, bit 30 — the paper's Fig. 3/4 narrative)\n";
    return 0;
}

// Reproduces Fig. 1 of the paper.
// Left: the probability-of-success curve p*(1-p) — maximal at p = 0.5, the
// reason p = 0.5 is the "safest" (most expensive) prior and any data-aware
// p != 0.5 shrinks the sample size.
// Right: the proposed subpopulation structure N(i,l) — illustrated on
// ResNet-20 layer 0.

#include <iostream>

#include "core/planner.hpp"
#include "fault/universe.hpp"
#include "models/resnet_cifar.hpp"
#include "report/table.hpp"
#include "stats/sample_size.hpp"

using namespace statfi;

int main() {
    std::cout << "Fig. 1 (left): p * (1 - p) vs p — maximum at p = 0.5\n\n";
    report::Table curve({"p", "p*(1-p)", "n for N=1e6 (e=1%, 99%)"});
    for (int i = 0; i <= 20; ++i) {
        const double p = i / 20.0;
        stats::SampleSpec spec;
        spec.p = p;
        curve.add_row({report::fmt_double(p, 2),
                       report::fmt_double(p * (1 - p), 4),
                       report::fmt_u64(stats::sample_size(1'000'000, spec))});
    }
    curve.print(std::cout);

    std::cout << "\nAs a curve:\n";
    for (int i = 0; i <= 20; ++i) {
        const double p = i / 20.0;
        std::cout << report::bar("p=" + report::fmt_double(p, 2), p * (1 - p),
                                 0.25, 40, 8)
                  << '\n';
    }

    std::cout << "\nFig. 1 (right): subpopulations N(i,l) — ResNet-20, "
                 "layer 0 (432 weights, 32-bit FP, stuck-at-0/1)\n\n";
    auto net = models::make_resnet20();
    const auto universe = fault::FaultUniverse::stuck_at(net);
    std::cout << "whole network: N = " << report::fmt_u64(universe.total())
              << " faults\n"
              << "  layer l=0:   N_l = "
              << report::fmt_u64(universe.layer_population(0)) << " faults\n"
              << "    bit i=31..0: N_(i,l) = "
              << report::fmt_u64(universe.bit_population(0))
              << " faults each (432 weights x 2 polarities)\n"
              << "    -> 32 independent subpopulations per layer, "
              << universe.layer_count() * universe.bits()
              << " subpopulations total;\n"
              << "       within each, every fault plausibly shares the same "
                 "success probability p\n"
              << "       (the 4th Bernoulli assumption), so Eq. 1 applies "
                 "per subpopulation (Eq. 3).\n";
    return 0;
}

// Reproduces Fig. 2 of the paper: the "bit-flip distance" — the |delta| a
// single bit flip introduces into an IEEE-754 binary32 weight, illustrated
// on the paper's example bit (28) and swept over all 32 bit positions.

#include <iostream>
#include <sstream>

#include "fault/codec.hpp"
#include "report/table.hpp"

using namespace statfi;
using fault::DataType;

int main() {
    const float w = 0.75f;  // a typical |weight| < 1 with a clean bit pattern

    std::cout << "Fig. 2: bit-flip distance on an FP32 weight\n\n"
              << "golden weight w = " << w << " (bits 0x" << std::hex
              << fault::float_bits(w) << std::dec << ")\n\n";

    std::cout << "The paper's example — flipping bit 28 (an exponent bit):\n";
    const float faulty28 = fault::apply_bit_flip(w, 28, DataType::Float32);
    std::cout << "  faulty weight = " << faulty28 << " (bits 0x" << std::hex
              << fault::float_bits(faulty28) << std::dec << ")\n"
              << "  distance |w' - w| = "
              << fault::bit_flip_distance(w, 28, DataType::Float32) << "\n\n";

    report::Table table({"Bit", "Field", "Faulty value", "Distance"});
    for (int bit = 31; bit >= 0; --bit) {
        const char* field = bit == 31 ? "sign"
                            : bit >= 23 ? "exponent"
                                        : "mantissa";
        const float faulty = fault::apply_bit_flip(w, bit, DataType::Float32);
        std::ostringstream value;
        value << faulty;
        table.add_row({std::to_string(bit), field, value.str(),
                       report::fmt_double(
                           fault::bit_flip_distance(w, bit, DataType::Float32),
                           10)});
    }
    table.print(std::cout);

    std::cout << "\n(The exponent MSB, bit 30, dwarfs everything else — the "
                 "asymmetry the data-aware p(i) of Fig. 4 exploits.)\n";
    return 0;
}

// Reproduces Fig. 3 of the paper: how often each bit position is 0 (f0) or
// 1 (f1) across the ResNet-20 weight distribution.
//
// Shape to reproduce: sign ~50/50; exponent MSB always 0 (|w| << 2); the
// next exponent bits almost always 1; mantissa bits ~50/50.

#include <iostream>

#include "core/data_aware.hpp"
#include "models/resnet_cifar.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    auto net = models::make_resnet20();
    stats::Rng rng(2023);
    nn::init_network_kaiming(net, rng);
    const auto crit = core::analyze_network(net);
    const auto weights = net.total_weight_count();

    std::cout << "Fig. 3: bit-value frequencies over the ResNet-20 weight "
                 "distribution ("
              << report::fmt_u64(weights) << " weights)\n\n";

    report::Table table({"Bit", "Field", "f0(i) count", "f1(i) count",
                         "f1(i) [%]"});
    for (int bit = 31; bit >= 0; --bit) {
        const auto idx = static_cast<std::size_t>(bit);
        const char* field = bit == 31 ? "sign"
                            : bit >= 23 ? "exponent"
                                        : "mantissa";
        table.add_row(
            {std::to_string(bit), field,
             report::fmt_u64(static_cast<std::uint64_t>(
                 crit.f0[idx] * static_cast<double>(weights) + 0.5)),
             report::fmt_u64(static_cast<std::uint64_t>(
                 crit.f1[idx] * static_cast<double>(weights) + 0.5)),
             report::fmt_percent(crit.f1[idx], 1)});
    }
    table.print(std::cout);

    std::cout << "\nf1(i) profile:\n";
    for (int bit = 31; bit >= 0; --bit)
        std::cout << report::bar("bit " + std::to_string(bit),
                                 crit.f1[static_cast<std::size_t>(bit)], 1.0,
                                 40, 8)
                  << '\n';
    return 0;
}

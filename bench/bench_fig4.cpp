// Reproduces Fig. 4 of the paper: the data-aware probability profile p(i)
// for ResNet-20 and MobileNetV2 (Eq. 4 + Eq. 5).
//
// Shape to reproduce: p peaks (0.5) at the exponent MSB and is ~0 across
// the mantissa — the asymmetry that shrinks the data-aware sample size to
// ~1% of the exhaustive census.

#include <iostream>

#include "core/data_aware.hpp"
#include "models/mobilenetv2.hpp"
#include "models/resnet_cifar.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    stats::Rng rng(2023);

    auto resnet = models::make_resnet20();
    nn::init_network_kaiming(resnet, rng);
    const auto crit_resnet = core::analyze_network(resnet);

    auto mobilenet = models::make_mobilenetv2();
    nn::init_network_kaiming(mobilenet, rng);
    const auto crit_mobilenet = core::analyze_network(mobilenet);

    std::cout << "Fig. 4: data-aware p(i) per bit position (Eq. 4/5)\n\n";
    report::Table table({"Bit", "Field", "Davg ResNet-20", "p ResNet-20",
                         "Davg MobileNetV2", "p MobileNetV2"});
    for (int bit = 31; bit >= 0; --bit) {
        const auto idx = static_cast<std::size_t>(bit);
        const char* field = bit == 31 ? "sign"
                            : bit >= 23 ? "exponent"
                                        : "mantissa";
        table.add_row({std::to_string(bit), field,
                       report::fmt_double(crit_resnet.davg[idx], 6),
                       report::fmt_double(crit_resnet.p[idx], 4),
                       report::fmt_double(crit_mobilenet.davg[idx], 6),
                       report::fmt_double(crit_mobilenet.p[idx], 4)});
    }
    table.print(std::cout);

    std::cout << "\np(i) for ResNet-20:\n";
    for (int bit = 31; bit >= 0; --bit)
        std::cout << report::bar("bit " + std::to_string(bit),
                                 crit_resnet.p[static_cast<std::size_t>(bit)],
                                 0.5, 40, 8)
                  << '\n';
    std::cout << "\np(i) for MobileNetV2:\n";
    for (int bit = 31; bit >= 0; --bit)
        std::cout << report::bar(
                         "bit " + std::to_string(bit),
                         crit_mobilenet.p[static_cast<std::size_t>(bit)], 0.5,
                         40, 8)
                  << '\n';
    return 0;
}

// Reproduces Fig. 5 of the paper: per-layer critical rate with error
// margins for the layer-wise and data-aware SFIs, against the exhaustive
// per-layer rate — on the validation substrate.
//
// Shape to reproduce: both approaches track the exhaustive per-layer
// criticality; the exhaustive value falls inside every error bar; the
// data-aware bars use far fewer injections.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;

    const auto criticality = core::analyze_network(testbed.network());
    const auto lw_plan = core::plan_layer_wise(universe, spec);
    const auto da_plan = core::plan_data_aware(universe, spec, criticality);

    const auto lw_result =
        core::replay(universe, lw_plan, truth, testbed.rng("fig5-layer-wise"));
    const auto da_result =
        core::replay(universe, da_plan, truth, testbed.rng("fig5-data-aware"));

    const auto lw_layers = core::estimate_layers(universe, lw_result);
    const auto da_layers = core::estimate_layers(universe, da_result);

    std::cout << "Fig. 5: layer-wise and data-aware SFIs vs exhaustive, "
                 "per layer\n\n";
    report::Table table({"Layer", "Exhaustive [%]", "Layer-wise [%]",
                         "LW margin [%]", "LW ok", "Data-aware [%]",
                         "DA margin [%]", "DA ok", "LW FIs", "DA FIs"});
    for (int l = 0; l < universe.layer_count(); ++l) {
        const double exact = truth.layer_critical_rate(universe, l);
        const auto& lw = lw_layers[static_cast<std::size_t>(l)].estimate;
        const auto& da = da_layers[static_cast<std::size_t>(l)].estimate;
        table.add_row({std::to_string(l), report::fmt_percent(exact, 3),
                       report::fmt_percent(lw.rate, 3),
                       report::fmt_percent(lw.margin, 3),
                       lw.contains(exact) ? "yes" : "NO",
                       report::fmt_percent(da.rate, 3),
                       report::fmt_percent(da.margin, 3),
                       da.contains(exact) ? "yes" : "NO",
                       report::fmt_u64(lw.injected),
                       report::fmt_u64(da.injected)});
    }
    table.print(std::cout);

    std::cout << "\ntotal FIs: layer-wise "
              << report::fmt_u64(lw_result.total_injected()) << ", data-aware "
              << report::fmt_u64(da_result.total_injected()) << " (of "
              << report::fmt_u64(universe.total()) << " possible)\n"
              << "avg margins: layer-wise "
              << report::fmt_percent(core::average_layer_margin(lw_layers), 3)
              << "%, data-aware "
              << report::fmt_percent(core::average_layer_margin(da_layers), 3)
              << "%\n"
              << "(paper: in layers where the data-aware SFI injects fewer "
                 "faults, its estimate stays accurate — margins below the "
                 "1% requirement)\n";
    return 0;
}

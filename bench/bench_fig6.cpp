// Reproduces Fig. 6 of the paper: ten random samples (S0-S9) of each SFI
// approach on the FIRST convolutional layer, showing the estimated critical
// rate, its error margin, the number of FIs, and whether the exhaustive
// value falls inside the margin.
//
// Shape to reproduce: the network-wise margin is unusable; margins shrink
// through layer-wise -> data-unaware as n grows; the data-aware margin
// grows slightly vs data-unaware but stays below the 1% requirement while
// injecting an order of magnitude fewer faults.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

namespace {

/// Layer-0 estimate of one replayed sample of the given plan.
core::Estimate layer0_estimate(const core::Testbed& testbed,
                               const fault::FaultUniverse& universe,
                               const core::CampaignPlan& plan,
                               const core::ExhaustiveOutcomes& truth,
                               const std::string& label, int sample) {
    const auto result = core::replay(
        universe, plan, truth,
        testbed.rng(label + "-S" + std::to_string(sample)));
    core::EstimatorConfig config;
    config.laplace_smoothing = true;  // honest bars for the tiny nw samples
    return core::estimate_layers(universe, result, config)[0].estimate;
}

}  // namespace

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;
    const auto criticality = core::analyze_network(testbed.network());

    const double exhaustive = truth.layer_critical_rate(universe, 0);
    std::cout << "Fig. 6: ten random samples per approach, layer 0 "
                 "(exhaustive critical rate "
              << report::fmt_percent(exhaustive, 3) << "%, N_l = "
              << report::fmt_u64(universe.layer_population(0)) << ")\n\n";

    struct ApproachRow {
        const char* name;
        core::CampaignPlan plan;
    };
    const std::vector<ApproachRow> approaches{
        {"network-wise", core::plan_network_wise(universe, spec)},
        {"layer-wise", core::plan_layer_wise(universe, spec)},
        {"data-unaware", core::plan_data_unaware(universe, spec)},
        {"data-aware", core::plan_data_aware(universe, spec, criticality)},
    };

    for (const auto& approach : approaches) {
        report::Table table({"Sample", "FIs in layer 0", "Critical [%]",
                             "Margin [%]", "Exhaustive inside?"});
        int contained = 0;
        for (int s = 0; s < 10; ++s) {
            const auto est = layer0_estimate(testbed, universe, approach.plan,
                                             truth, approach.name, s);
            const bool ok = est.contains(exhaustive);
            contained += ok;
            table.add_row({"S" + std::to_string(s),
                           report::fmt_u64(est.injected),
                           report::fmt_percent(est.rate, 3),
                           report::fmt_percent(est.margin, 3),
                           ok ? "yes" : "NO"});
        }
        std::cout << approach.name << " (planned n for layer 0: "
                  << report::fmt_u64(
                         approach.plan.layer_sample_size(universe, 0))
                  << ")\n";
        table.print(std::cout);
        std::cout << "contained: " << contained << "/10\n\n";
    }

    std::cout << "(paper: the error margin is not acceptable for the "
                 "network-wise SFI; it reduces for layer-wise and "
                 "data-unaware; it increases slightly for data-aware but "
                 "stays below the predefined 1%)\n";
    return 0;
}

// Reproduces Fig. 7 of the paper: a network-wise SFI cannot estimate
// per-layer critical rates, while the proposed data-aware SFI tracks the
// exhaustive per-layer criticality — shown on the validation substrate,
// plus the analytic per-layer fault allocations for MobileNetV2 at full
// scale (where the mismatch originates: a 16,639-fault network-wise sample
// leaves a few hundred faults per layer).

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "models/mobilenetv2.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;
    const auto criticality = core::analyze_network(testbed.network());

    const auto nw_result =
        core::replay(universe, core::plan_network_wise(universe, spec), truth,
                     testbed.rng("fig7-network-wise"));
    const auto da_result = core::replay(
        universe, core::plan_data_aware(universe, spec, criticality), truth,
        testbed.rng("fig7-data-aware"));

    core::EstimatorConfig honest;
    honest.laplace_smoothing = true;
    const auto nw_layers = core::estimate_layers(universe, nw_result, honest);
    const auto da_layers = core::estimate_layers(universe, da_result, honest);

    std::cout << "Fig. 7: per-layer critical rate — network-wise vs "
                 "data-aware vs exhaustive (validation substrate)\n\n";
    report::Table table({"Layer", "Exhaustive [%]", "Network-wise [%]",
                         "NW margin [%]", "NW FIs", "Data-aware [%]",
                         "DA margin [%]", "DA FIs"});
    for (int l = 0; l < universe.layer_count(); ++l) {
        const double exact = truth.layer_critical_rate(universe, l);
        const auto& nw = nw_layers[static_cast<std::size_t>(l)].estimate;
        const auto& da = da_layers[static_cast<std::size_t>(l)].estimate;
        table.add_row({std::to_string(l), report::fmt_percent(exact, 3),
                       report::fmt_percent(nw.rate, 3),
                       report::fmt_percent(nw.margin, 3),
                       report::fmt_u64(nw.injected),
                       report::fmt_percent(da.rate, 3),
                       report::fmt_percent(da.margin, 3),
                       report::fmt_u64(da.injected)});
    }
    table.print(std::cout);

    const double nw_margin = core::average_layer_margin(nw_layers);
    std::cout << "\navg per-layer margin: network-wise "
              << report::fmt_percent(nw_margin, 2) << "%"
              << (nw_margin > 0.01 ? " (invalid, >1%)" : "")
              << " vs data-aware "
              << report::fmt_percent(core::average_layer_margin(da_layers), 2)
              << "%\n(MicroNet has only 4 layers, so a network-wise sample "
                 "still lands ~1k faults per layer; the paper-scale failure "
                 "is quantified below)\ninjected: network-wise "
              << report::fmt_u64(nw_result.total_injected())
              << " faults vs data-aware "
              << report::fmt_u64(da_result.total_injected()) << " (of "
              << report::fmt_u64(universe.total()) << ")\n\n";

    // Full-scale origin of the failure: the paper's MobileNetV2 numbers.
    auto mobilenet = models::make_mobilenetv2();
    stats::Rng rng(2023);
    nn::init_network_kaiming(mobilenet, rng);
    auto mb_universe = fault::FaultUniverse::stuck_at(mobilenet);
    const auto mb_nw = core::plan_network_wise(mb_universe, spec);
    std::cout << "Full-scale MobileNetV2: the network-wise sample ("
              << report::fmt_u64(mb_nw.total_sample_size())
              << " faults, paper: 16,639) leaves per layer:\n";
    std::uint64_t min_faults = ~0ull, max_faults = 0;
    for (int l = 0; l < mb_universe.layer_count(); ++l) {
        const auto share = mb_nw.layer_sample_size(mb_universe, l);
        min_faults = std::min(min_faults, share);
        max_faults = std::max(max_faults, share);
    }
    std::cout << "  between " << report::fmt_u64(min_faults) << " and "
              << report::fmt_u64(max_faults)
              << " faults per layer — orders of magnitude below the "
                 "per-layer Eq. 1 requirement, hence the paper's 3.28% "
                 "margin (> 1%: statistically invalid for per-layer "
                 "claims).\n";
    return 0;
}

// Engineering micro-benchmarks (google-benchmark): the costs that determine
// campaign throughput — forward passes, partial re-execution, injection,
// sampling, and planning. Not a paper table; quantifies DESIGN.md §5's
// claims (partial re-execution speedup, masked short-circuit).

#include <benchmark/benchmark.h>

#include "core/data_aware.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "data/synthetic.hpp"
#include "fault/injector.hpp"
#include "models/registry.hpp"
#include "nn/init.hpp"
#include "stats/sampling.hpp"

using namespace statfi;

namespace {

nn::Network prepared(const std::string& name) {
    auto net = models::build_model(name);
    stats::Rng rng(1);
    nn::init_network_kaiming(net, rng);
    return net;
}

void BM_MicroNetForward(benchmark::State& state) {
    auto net = prepared("micronet");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MicroNetForward);

void BM_ResNet20Forward(benchmark::State& state) {
    auto net = prepared("resnet20");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_ResNet20Forward);

void BM_MobileNetV2Forward(benchmark::State& state) {
    auto net = prepared("mobilenetv2");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MobileNetV2Forward);

/// Partial re-execution from each weight layer of ResNet-20 vs full forward:
/// the speedup that makes exhaustive censuses tractable.
void BM_PartialReexecution(benchmark::State& state) {
    auto net = prepared("resnet20");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    std::vector<Tensor> golden, scratch;
    net.forward_all(x, golden);
    const auto refs = net.weight_layers();
    const int node = refs[static_cast<std::size_t>(state.range(0))].node_id;
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward_from(node, x, golden, scratch));
}
BENCHMARK(BM_PartialReexecution)->Arg(0)->Arg(7)->Arg(13)->Arg(19);

void BM_InjectorApplyRestore(benchmark::State& state) {
    auto net = prepared("resnet20");
    fault::WeightInjector injector(net);
    fault::Fault f;
    f.layer = 10;
    f.weight_index = 123;
    f.bit = 30;
    f.model = fault::FaultModel::StuckAt1;
    for (auto _ : state) {
        const auto record = injector.apply(f);
        injector.restore(f, record);
        benchmark::DoNotOptimize(record);
    }
}
BENCHMARK(BM_InjectorApplyRestore);

void BM_MaskedShortCircuit(benchmark::State& state) {
    auto net = prepared("micronet");
    data::SyntheticSpec spec;
    auto eval = data::make_synthetic(spec, 4, "test");
    core::CampaignExecutor exec(net, eval);
    fault::Fault f;  // bit 30 stuck-at-0: masked on Kaiming weights
    f.layer = 2;
    f.weight_index = 5;
    f.bit = 30;
    f.model = fault::FaultModel::StuckAt0;
    for (auto _ : state) benchmark::DoNotOptimize(exec.evaluate(f));
}
BENCHMARK(BM_MaskedShortCircuit);

void BM_FaultEvaluation(benchmark::State& state) {
    auto net = prepared("micronet");
    data::SyntheticSpec spec;
    auto eval = data::make_synthetic(spec, 4, "test");
    core::CampaignExecutor exec(net, eval);
    fault::Fault f;  // bit flips are never masked: guaranteed live inference
    f.layer = 2;
    f.weight_index = 5;
    f.bit = 12;
    f.model = fault::FaultModel::BitFlip;
    for (auto _ : state) benchmark::DoNotOptimize(exec.evaluate(f));
}
BENCHMARK(BM_FaultEvaluation);

void BM_SampleWithoutReplacement(benchmark::State& state) {
    stats::Rng rng(3);
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::sample_without_replacement(141'029'376ull, n, rng));
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(1000)->Arg(16639);

void BM_PlanDataAware(benchmark::State& state) {
    auto net = prepared("resnet20");
    auto universe = fault::FaultUniverse::stuck_at(net);
    const auto crit = core::analyze_network(net);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::plan_data_aware(universe, stats::SampleSpec{}, crit));
}
BENCHMARK(BM_PlanDataAware);

void BM_AnalyzeWeights(benchmark::State& state) {
    auto net = prepared("resnet20");
    for (auto _ : state)
        benchmark::DoNotOptimize(core::analyze_network(net));
}
BENCHMARK(BM_AnalyzeWeights);

}  // namespace

BENCHMARK_MAIN();

// Engineering micro-benchmarks (google-benchmark): the costs that determine
// campaign throughput — forward passes, partial re-execution, injection,
// sampling, and planning. Not a paper table; quantifies DESIGN.md §5's
// claims (partial re-execution speedup, masked short-circuit).
//
// Besides the google-benchmark suite, `bench_perf --engine-json PATH`
// runs an end-to-end census throughput measurement on a fixed fixture and
// writes a small JSON report (BENCH_engine.json) with faults/second,
// inferences/fault and wall seconds next to the pre-refactor baseline —
// the regression check CI runs as a smoke step (capped via --faults).
//
// `bench_perf --shard-json PATH [--statfi BIN]` measures the scale-out
// path: the same census run single-process in-process, then sharded via
// `statfi shard run-all` subprocesses at --jobs 2 and 4, with the merged
// result checked bit-identical against the single-process table
// (BENCH_shard.json).
//
// `bench_perf --telemetry-json PATH` measures the telemetry subsystem's
// overhead: the engine-report census with telemetry off vs on (metrics +
// tracing), alternating reps, best-of wall per mode, outcomes checked
// bit-identical. Fails when the enabled run costs more than 3% — the
// "observability is near-free" claim in DESIGN.md §5.12 (BENCH_telemetry.json).
//
// `bench_perf --observatory-json PATH` extends that gate to the FULL
// observatory of DESIGN.md §5.13: metrics + tracing + JSONL event log on
// disk + live StatusServer, vs the bare engine. Same alternating-rep
// protocol, same 3% ceiling, same bit-identity requirement
// (BENCH_observatory.json).
//
// `bench_perf --kernels-json PATH` measures the kernel-dispatch layer and
// the fault-batched ensemble forward (DESIGN.md decision 15): the engine
// census in {generic, native} x {ungrouped, grouped} configurations, every
// outcome table checked bit-identical, with a >= 4x faults/s gate for the
// best configuration against the pre-kernel baseline (BENCH_kernels.json).
//
// `bench_perf --formats-json PATH` measures the number-format paths of
// DESIGN.md decision 17: one census per weight format (fp32, fp16, bf16,
// int8) on the shard fixture, each checked bit-identical across worker
// counts, with a gate requiring the fp16 and int8 paths to stay within 10%
// of the fp32 census throughput (BENCH_formats.json).
//
// `bench_perf --service-json PATH` measures the scheduler daemon of
// DESIGN.md decision 16: an in-process ServiceDaemon on an ephemeral
// loopback port runs a small batch of distinct campaigns across two
// workers (jobs/second through the full submit -> schedule -> shard ->
// merge -> publish path), then an identical resubmission measures the
// content-addressed cache-hit latency. The served result must match a
// direct engine run of the same recipe exactly (BENCH_service.json).
//
// `bench_perf --fleet-json PATH` measures the fleet observability plane of
// DESIGN.md decision 18: the same service batch with SchedulerOptions::fleet
// off vs on (per-shard trace sessions, the 200 ms metrics sampler, live
// /fleet stats, merged per-job trace). Alternating reps, best-of wall per
// mode, the on-mode's artifacts validated (history samples, one trace_id
// across daemon + every shard), served outcomes identical, and the same 3%
// overhead ceiling (BENCH_fleet.json).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/convergence.hpp"
#include "core/data_aware.hpp"
#include "core/engine.hpp"
#include "core/planner.hpp"
#include "kernels/registry.hpp"
#include "data/synthetic.hpp"
#include "fault/injector.hpp"
#include "models/registry.hpp"
#include "nn/init.hpp"
#include "report/json_parse.hpp"
#include "service/daemon.hpp"
#include "service/recipe_json.hpp"
#include "shard/driver.hpp"
#include "shard/fixture.hpp"
#include "shard/merge.hpp"
#include "stats/sampling.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/http.hpp"
#include "telemetry/session.hpp"

using namespace statfi;

namespace {

nn::Network prepared(const std::string& name) {
    auto net = models::build_model(name);
    stats::Rng rng(1);
    nn::init_network_kaiming(net, rng);
    return net;
}

void BM_MicroNetForward(benchmark::State& state) {
    auto net = prepared("micronet");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MicroNetForward);

void BM_ResNet20Forward(benchmark::State& state) {
    auto net = prepared("resnet20");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_ResNet20Forward);

void BM_MobileNetV2Forward(benchmark::State& state) {
    auto net = prepared("mobilenetv2");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MobileNetV2Forward);

/// Partial re-execution from each weight layer of ResNet-20 vs full forward:
/// the speedup that makes exhaustive censuses tractable.
void BM_PartialReexecution(benchmark::State& state) {
    auto net = prepared("resnet20");
    Tensor x(Shape{1, 3, 32, 32}, 0.1f);
    std::vector<Tensor> golden, scratch;
    net.forward_all(x, golden);
    const auto refs = net.weight_layers();
    const int node = refs[static_cast<std::size_t>(state.range(0))].node_id;
    for (auto _ : state)
        benchmark::DoNotOptimize(net.forward_from(node, x, golden, scratch));
}
BENCHMARK(BM_PartialReexecution)->Arg(0)->Arg(7)->Arg(13)->Arg(19);

void BM_InjectorApplyRestore(benchmark::State& state) {
    auto net = prepared("resnet20");
    fault::WeightInjector injector(net);
    fault::Fault f;
    f.layer = 10;
    f.weight_index = 123;
    f.bit = 30;
    f.model = fault::FaultModel::StuckAt1;
    for (auto _ : state) {
        const auto record = injector.apply(f);
        injector.restore(f, record);
        benchmark::DoNotOptimize(record);
    }
}
BENCHMARK(BM_InjectorApplyRestore);

void BM_MaskedShortCircuit(benchmark::State& state) {
    auto net = prepared("micronet");
    data::SyntheticSpec spec;
    auto eval = data::make_synthetic(spec, 4, "test");
    core::CampaignEngine engine(net, eval);
    fault::Fault f;  // bit 30 stuck-at-0: masked on Kaiming weights
    f.layer = 2;
    f.weight_index = 5;
    f.bit = 30;
    f.model = fault::FaultModel::StuckAt0;
    for (auto _ : state) benchmark::DoNotOptimize(engine.evaluate(f));
}
BENCHMARK(BM_MaskedShortCircuit);

void BM_FaultEvaluation(benchmark::State& state) {
    auto net = prepared("micronet");
    data::SyntheticSpec spec;
    auto eval = data::make_synthetic(spec, 4, "test");
    core::CampaignEngine engine(net, eval);
    fault::Fault f;  // bit flips are never masked: guaranteed live inference
    f.layer = 2;
    f.weight_index = 5;
    f.bit = 12;
    f.model = fault::FaultModel::BitFlip;
    for (auto _ : state) benchmark::DoNotOptimize(engine.evaluate(f));
}
BENCHMARK(BM_FaultEvaluation);

void BM_SampleWithoutReplacement(benchmark::State& state) {
    stats::Rng rng(3);
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::sample_without_replacement(141'029'376ull, n, rng));
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(1000)->Arg(16639);

void BM_PlanDataAware(benchmark::State& state) {
    auto net = prepared("resnet20");
    auto universe = fault::FaultUniverse::stuck_at(net);
    const auto crit = core::analyze_network(net);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::plan_data_aware(universe, stats::SampleSpec{}, crit));
}
BENCHMARK(BM_PlanDataAware);

void BM_AnalyzeWeights(benchmark::State& state) {
    auto net = prepared("resnet20");
    for (auto _ : state)
        benchmark::DoNotOptimize(core::analyze_network(net));
}
BENCHMARK(BM_AnalyzeWeights);

// --- end-to-end engine throughput (--engine-json) -------------------------

/// Pre-refactor numbers for the same fixture, measured at commit 51af8be
/// (CampaignExecutor serial census, best of two runs) on the reference
/// single-core builder. Kept in the report so every BENCH_engine.json is a
/// self-contained before/after comparison.
constexpr double kBaselineFaultsPerSecond = 14172.6;
constexpr double kBaselineInferencesPerFault = 1.96632;
constexpr double kBaselineWallSeconds = 9.49213;
constexpr const char* kBaselineCommit = "51af8be";

/// Census throughput on a fixed fixture: micronet, Kaiming init with
/// Rng(424242), 4 synthetic "test" images, GoldenMismatch policy. The
/// fixture matches the pre-refactor baseline measurement exactly, so
/// critical_rate doubles as an empirical bit-identity check against the
/// retired serial executor (expected 0.011663 on the full universe).
int run_engine_report(const std::string& json_path, std::uint64_t max_faults,
                      std::size_t threads) {
    auto net = models::build_model("micronet");
    stats::Rng rng(424242);
    nn::init_network_kaiming(net, rng);
    const auto eval = data::make_synthetic({}, 4, "test");
    const auto universe = fault::FaultUniverse::stuck_at(net);

    core::ExecutorConfig config;
    config.policy = core::ClassificationPolicy::GoldenMismatch;
    core::CampaignEngine engine(net, eval, config, threads);

    const std::uint64_t total = universe.total();
    const std::uint64_t faults =
        max_faults == 0 ? total : std::min(max_faults, total);

    std::uint64_t critical = 0;
    const auto start = std::chrono::steady_clock::now();
    if (faults == total) {
        const auto outcomes = engine.run_exhaustive(universe);
        critical = outcomes.critical_count(0, total);
    } else {
        // Capped smoke run: same ascending-index walk as the census chunk,
        // on worker 0 only (keeps the cap deterministic across thread counts).
        for (std::uint64_t i = 0; i < faults; ++i)
            critical += engine.evaluate(universe.decode(i)) ==
                        core::FaultOutcome::Critical;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const double fps = wall > 0 ? static_cast<double>(faults) / wall : 0.0;
    const double ipf =
        static_cast<double>(engine.inference_count()) /
        static_cast<double>(faults);
    const double crit_rate =
        static_cast<double>(critical) / static_cast<double>(faults);

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet kaiming(424242), 4 synthetic test "
           "images, GoldenMismatch, stuck-at universe\",\n"
        << "  \"universe\": " << total << ",\n"
        << "  \"faults\": " << faults << ",\n"
        << "  \"full_census\": " << (faults == total ? "true" : "false")
        << ",\n"
        << "  \"workers\": " << engine.worker_count() << ",\n"
        << "  \"wall_seconds\": " << wall << ",\n"
        << "  \"faults_per_second\": " << fps << ",\n"
        << "  \"inferences\": " << engine.inference_count() << ",\n"
        << "  \"inferences_per_fault\": " << ipf << ",\n"
        << "  \"critical_rate\": " << crit_rate << ",\n"
        << "  \"baseline\": {\n"
        << "    \"commit\": \"" << kBaselineCommit << "\",\n"
        << "    \"faults_per_second\": " << kBaselineFaultsPerSecond << ",\n"
        << "    \"inferences_per_fault\": " << kBaselineInferencesPerFault
        << ",\n"
        << "    \"wall_seconds\": " << kBaselineWallSeconds << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "engine throughput: " << fps << " faults/s (" << faults
              << " faults, " << wall << " s, " << ipf
              << " inferences/fault, critical_rate " << crit_rate
              << "); baseline " << kBaselineFaultsPerSecond
              << " faults/s @ " << kBaselineCommit << "\n"
              << "report written to " << json_path << "\n";
    return 0;
}

// --- kernel dispatch + ensemble forward (--kernels-json) ------------------

/// One engine-report census under a forced kernel backend and ensemble
/// width. A fresh engine per configuration: the golden cache must be built
/// by the same backend that classifies (one process never mixes backends).
struct KernelsConfigResult {
    std::string kernels;
    std::size_t width = 1;
    double wall = 0.0;
    double fps = 0.0;
    core::ExhaustiveOutcomes outcomes;
};

KernelsConfigResult run_kernels_config(const std::string& backend,
                                       std::size_t width,
                                       std::uint64_t max_faults,
                                       std::size_t threads) {
    kernels::select(backend);
    auto net = models::build_model("micronet");
    stats::Rng rng(424242);
    nn::init_network_kaiming(net, rng);
    const auto eval = data::make_synthetic({}, 4, "test");
    const auto universe = fault::FaultUniverse::stuck_at(net);

    core::ExecutorConfig config;
    config.policy = core::ClassificationPolicy::GoldenMismatch;
    config.ensemble_width = width;
    core::CampaignEngine engine(net, eval, config, threads);

    const std::uint64_t total = universe.total();
    const std::uint64_t faults =
        max_faults == 0 ? total : std::min(max_faults, total);

    KernelsConfigResult r;
    r.kernels = kernels::active().name;
    r.width = width;
    const auto start = std::chrono::steady_clock::now();
    if (faults == total) {
        r.outcomes = engine.run_exhaustive(universe);
    } else {
        // Capped smoke run: grouped exactly like the engine's census chunk,
        // on worker 0 (deterministic across thread counts).
        r.outcomes = core::ExhaustiveOutcomes(faults);
        core::ClassificationCore& core0 = engine.core(0);
        std::vector<fault::Fault> group;
        std::vector<core::FaultOutcome> out;
        for (std::uint64_t i = 0; i < faults;) {
            group.clear();
            const fault::Fault first = universe.decode(i);
            const std::uint64_t lo = i;
            while (i < faults && group.size() < width) {
                const fault::Fault f = universe.decode(i);
                if (f.layer != first.layer ||
                    !fault::same_ensemble_family(f.model, first.model))
                    break;
                group.push_back(f);
                ++i;
            }
            out.assign(group.size(), core::FaultOutcome::NonCritical);
            core0.evaluate_group(group, out.data());
            for (std::size_t b = 0; b < out.size(); ++b)
                r.outcomes.set(lo + b, out[b]);
        }
    }
    r.wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    r.fps = r.wall > 0 ? static_cast<double>(faults) / r.wall : 0.0;
    std::cout << "  " << r.kernels << " width=" << width << ": " << r.fps
              << " faults/s (" << r.wall << " s)\n";
    return r;
}

/// The kernel-dispatch gate: every {backend} x {width} census bit-identical,
/// best configuration >= 4x the pre-kernel baseline (full census only —
/// capped smoke runs skip the throughput gate, not the identity check).
int run_kernels_report(const std::string& json_path, std::uint64_t max_faults,
                       std::size_t threads) {
    const bool have_native = kernels::native_kernels() != nullptr;
    std::cout << "kernel-dispatch census sweep (cpu: "
              << kernels::detect_cpu().describe() << ")\n";
    std::vector<KernelsConfigResult> runs;
    runs.push_back(run_kernels_config("generic", 1, max_faults, threads));
    runs.push_back(run_kernels_config("generic", 8, max_faults, threads));
    if (have_native) {
        runs.push_back(run_kernels_config("native", 1, max_faults, threads));
        runs.push_back(run_kernels_config("native", 8, max_faults, threads));
    }
    kernels::select("auto");

    const std::uint64_t n = runs.front().outcomes.size();
    bool identical = true;
    for (std::size_t c = 1; c < runs.size(); ++c)
        for (std::uint64_t i = 0; i < n; ++i)
            if (runs[c].outcomes.at(i) != runs[0].outcomes.at(i)) {
                std::cerr << "bench_perf: outcome mismatch at fault " << i
                          << " between " << runs[0].kernels << "/w"
                          << runs[0].width << " and " << runs[c].kernels
                          << "/w" << runs[c].width << "\n";
                identical = false;
                i = n;
            }

    const double crit_rate =
        static_cast<double>(runs[0].outcomes.critical_count(0, n)) /
        static_cast<double>(n);
    double best_fps = 0.0;
    std::string best_name;
    for (const auto& r : runs)
        if (r.fps > best_fps) {
            best_fps = r.fps;
            best_name = r.kernels + "/w" + std::to_string(r.width);
        }
    const double speedup = best_fps / kBaselineFaultsPerSecond;
    const bool full = max_faults == 0;
    const bool gate_ok = !full || !have_native || speedup >= 4.0;

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet kaiming(424242), 4 synthetic test "
           "images, GoldenMismatch, stuck-at universe\",\n"
        << "  \"cpu\": \"" << kernels::detect_cpu().describe() << "\",\n"
        << "  \"faults\": " << n << ",\n"
        << "  \"full_census\": " << (full ? "true" : "false") << ",\n"
        << "  \"workers\": " << (threads == 0 ? 0 : threads) << ",\n"
        << "  \"outcomes_identical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"critical_rate\": " << crit_rate << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t c = 0; c < runs.size(); ++c)
        out << "    {\"kernels\": \"" << runs[c].kernels
            << "\", \"ensemble_width\": " << runs[c].width
            << ", \"wall_seconds\": " << runs[c].wall
            << ", \"faults_per_second\": " << runs[c].fps << "}"
            << (c + 1 < runs.size() ? "," : "") << "\n";
    out << "  ],\n"
        << "  \"best\": {\"config\": \"" << best_name
        << "\", \"faults_per_second\": " << best_fps
        << ", \"speedup_vs_baseline\": " << speedup << "},\n"
        << "  \"baseline\": {\n"
        << "    \"commit\": \"" << kBaselineCommit << "\",\n"
        << "    \"faults_per_second\": " << kBaselineFaultsPerSecond << "\n"
        << "  },\n"
        << "  \"gate\": {\"required_speedup\": 4.0, \"passed\": "
        << (gate_ok ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "best: " << best_name << " at " << best_fps
              << " faults/s = " << speedup << "x baseline ("
              << kBaselineFaultsPerSecond << " @ " << kBaselineCommit
              << ")\nreport written to " << json_path << "\n";
    if (!identical) {
        std::cerr << "bench_perf: KERNEL BACKENDS DISAGREE — bit-identity "
                     "contract violated\n";
        return 1;
    }
    if (!gate_ok) {
        std::cerr << "bench_perf: kernel speedup gate FAILED (" << speedup
                  << "x < 4x)\n";
        return 1;
    }
    return 0;
}

// --- per-format census throughput (--formats-json) ------------------------

/// One census per number format on the shard fixture (micronet recipe,
/// seed 424242, 4 images, GoldenMismatch): the universe shrinks with the
/// stored word width (32/16/8 bits per weight), so the comparison is on
/// faults/second, not wall time. Each format runs once at the requested
/// thread count and once at 2 workers; the durable-census contract says the
/// two outcome tables must match bit for bit.
struct FormatRunResult {
    std::string format;
    std::uint64_t universe = 0;
    std::uint64_t faults = 0;
    double wall = 0.0;
    double fps = 0.0;
    double crit_rate = 0.0;
    bool identical = false;  ///< 1-worker vs 2-worker outcome tables
};

FormatRunResult run_formats_config(fault::DataType dtype,
                                   std::uint64_t max_faults,
                                   std::size_t threads) {
    shard::CampaignRecipe recipe;
    recipe.model = "micronet";
    recipe.approach = core::Approach::Exhaustive;
    recipe.images = 4;
    recipe.policy = core::ClassificationPolicy::GoldenMismatch;
    recipe.seed = 424242;
    recipe.dtype = dtype;

    FormatRunResult r;
    r.format = fault::to_string(dtype);

    auto fx = shard::build_fixture(recipe);
    r.universe = fx.universe.total();
    r.faults = max_faults == 0 ? r.universe
                               : std::min(max_faults, r.universe);
    core::DurabilityOptions durability;
    durability.range_end = r.faults;

    core::CampaignEngine engine(fx.net, fx.eval, fx.config, threads);
    // Best of two timed runs: a single census is short enough (seconds)
    // that one scheduler hiccup can fake a >10% "regression" against the
    // gate. The outcomes of both passes are identical by the determinism
    // contract, so only the wall clock differs.
    core::ExhaustiveOutcomes outcomes;
    r.wall = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        const auto start = std::chrono::steady_clock::now();
        auto run = engine.run_exhaustive_durable(fx.universe, durability);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        if (pass == 0 || wall < r.wall) r.wall = wall;
        outcomes = std::move(run.outcomes);
    }
    r.fps = r.wall > 0 ? static_cast<double>(r.faults) / r.wall : 0.0;
    r.crit_rate =
        static_cast<double>(outcomes.critical_count(0, r.faults)) /
        static_cast<double>(r.faults);

    // Worker-count identity: a fresh fixture (deploy + golden pass from
    // scratch) at 2 workers must classify every fault the same way.
    auto fx2 = shard::build_fixture(recipe);
    core::CampaignEngine engine2(fx2.net, fx2.eval, fx2.config, 2);
    const auto run2 = engine2.run_exhaustive_durable(fx2.universe, durability);
    r.identical = true;
    for (std::uint64_t i = 0; r.identical && i < r.faults; ++i)
        r.identical = outcomes.at(i) == run2.outcomes.at(i);

    std::cout << "  " << r.format << ": " << r.fps << " faults/s ("
              << r.faults << "/" << r.universe << " faults, " << r.wall
              << " s, critical_rate " << r.crit_rate << ", workers-identical "
              << (r.identical ? "yes" : "NO") << ")\n";
    return r;
}

/// The format gate: every format's census bit-identical across worker
/// counts, and the reduced-precision paths (fp16, int8) within 10% of the
/// fp32 census throughput (full census only — capped smoke runs skip the
/// throughput gate, not the identity checks).
int run_formats_report(const std::string& json_path, std::uint64_t max_faults,
                       std::size_t threads) {
    constexpr double kMaxRegressionPct = 10.0;
    std::cout << "per-format census sweep (micronet seed 424242, 4 images, "
                 "GoldenMismatch)\n";
    const fault::DataType dtypes[] = {
        fault::DataType::Float32, fault::DataType::Float16,
        fault::DataType::BFloat16, fault::DataType::Int8};
    std::vector<FormatRunResult> runs;
    for (const auto dtype : dtypes)
        runs.push_back(run_formats_config(dtype, max_faults, threads));

    bool identical = true;
    for (const auto& r : runs) identical = identical && r.identical;

    const double fp32_fps = runs.front().fps;
    const bool full = max_faults == 0;
    bool gate_ok = true;
    for (const auto& r : runs) {
        if (r.format != "fp16" && r.format != "int8") continue;
        if (full && fp32_fps > 0 &&
            r.fps < fp32_fps * (1.0 - kMaxRegressionPct / 100.0)) {
            std::cerr << "bench_perf: " << r.format << " census at " << r.fps
                      << " faults/s regresses fp32 (" << fp32_fps
                      << ") by more than " << kMaxRegressionPct << "%\n";
            gate_ok = false;
        }
    }

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet recipe seed 424242, 4 synthetic test "
           "images, GoldenMismatch, stuck-at universe per format\",\n"
        << "  \"full_census\": " << (full ? "true" : "false") << ",\n"
        << "  \"workers\": " << (threads == 0 ? 0 : threads) << ",\n"
        << "  \"workers_identical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"formats\": [\n";
    for (std::size_t c = 0; c < runs.size(); ++c) {
        const auto& r = runs[c];
        out << "    {\"format\": \"" << r.format << "\", \"universe\": "
            << r.universe << ", \"faults\": " << r.faults
            << ", \"wall_seconds\": " << r.wall
            << ", \"faults_per_second\": " << r.fps
            << ", \"critical_rate\": " << r.crit_rate
            << ", \"vs_fp32\": " << (fp32_fps > 0 ? r.fps / fp32_fps : 0.0)
            << ", \"workers_identical\": "
            << (r.identical ? "true" : "false") << "}"
            << (c + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"gate\": {\"max_regression_pct\": " << kMaxRegressionPct
        << ", \"gated_formats\": [\"fp16\", \"int8\"], \"passed\": "
        << ((gate_ok && identical) ? "true" : "false") << "}\n"
        << "}\n";
    std::cout << "report written to " << json_path << "\n";
    if (!identical) {
        std::cerr << "bench_perf: FORMAT WORKER COUNTS DISAGREE — "
                     "bit-identity contract violated\n";
        return 1;
    }
    if (!gate_ok) {
        std::cerr << "bench_perf: format throughput gate FAILED\n";
        return 1;
    }
    return 0;
}

// --- sharded census throughput (--shard-json) -----------------------------

/// Sharded census on the shard fixture (micronet recipe, 4 images,
/// GoldenMismatch, seed 424242): a single-process in-process census as the
/// baseline, then `statfi shard run-all` at --jobs 2 and 4, merged and
/// checked bit-identical against the baseline table. Reported per jobs
/// count: wall seconds, faults/second and speedup over single-process.
int run_shard_report(const std::string& json_path,
                     const std::string& statfi_binary) {
    shard::CampaignRecipe recipe;
    recipe.model = "micronet";
    recipe.approach = core::Approach::Exhaustive;
    recipe.images = 4;
    recipe.policy = core::ClassificationPolicy::GoldenMismatch;
    recipe.seed = 424242;

    const auto dir =
        std::filesystem::temp_directory_path() / "statfi_shard_bench";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string manifest_path = (dir / "bench.sfim").string();

    // Single-process baseline (also the bit-identity reference).
    auto fx = shard::build_fixture(recipe);
    core::CampaignEngine engine(fx.net, fx.eval, fx.config);
    const auto single_start = std::chrono::steady_clock::now();
    const auto reference =
        engine.run_exhaustive_durable(fx.universe, {}).outcomes;
    const double single_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      single_start)
            .count();
    const std::uint64_t total = fx.universe.total();
    const double single_fps = static_cast<double>(total) / single_wall;

    shard::ShardManifest manifest;
    manifest.recipe = recipe;
    manifest.fingerprint = engine.fingerprint(fx.universe, recipe.model);
    manifest.layer_count = static_cast<std::uint32_t>(fx.universe.layer_count());
    manifest.plan.approach = core::Approach::Exhaustive;
    manifest.item_count = total;
    manifest.shards = shard::partition_items(total, 4);
    manifest.save(manifest_path);

    struct ShardRun {
        std::size_t jobs;
        double wall;
        double fps;
        bool identical;
    };
    std::vector<ShardRun> runs;
    for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
        for (std::uint32_t k = 0; k < manifest.shards.size(); ++k)
            std::filesystem::remove(shard::shard_result_path(manifest_path, k));
        shard::DriveOptions drive;
        drive.jobs = jobs;
        drive.threads = 1;
        drive.statfi_binary = statfi_binary;
        const auto start = std::chrono::steady_clock::now();
        const auto report =
            shard::run_all_shards(manifest, manifest_path, drive);
        if (!report.ok()) {
            std::cerr << "bench_perf: shard run-all failed at jobs=" << jobs
                      << "\n";
            return 1;
        }
        const auto merged = shard::merge_shards(manifest, manifest_path);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        bool identical = merged.outcomes.size() == reference.size();
        for (std::uint64_t i = 0; identical && i < total; ++i)
            identical = merged.outcomes.at(i) == reference.at(i);
        runs.push_back(
            {jobs, wall, static_cast<double>(total) / wall, identical});
    }
    std::filesystem::remove_all(dir);

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet recipe seed 424242, 4 synthetic test "
           "images, GoldenMismatch, stuck-at census, 4 shards\",\n"
        << "  \"universe\": " << total << ",\n"
        << "  \"shards\": " << manifest.shards.size() << ",\n"
        << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"single_process\": {\n"
        << "    \"wall_seconds\": " << single_wall << ",\n"
        << "    \"faults_per_second\": " << single_fps << "\n"
        << "  },\n"
        << "  \"run_all\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto& r = runs[i];
        out << "    {\n"
            << "      \"jobs\": " << r.jobs << ",\n"
            << "      \"wall_seconds\": " << r.wall << ",\n"
            << "      \"faults_per_second\": " << r.fps << ",\n"
            << "      \"speedup\": " << r.fps / single_fps << ",\n"
            << "      \"bit_identical\": " << (r.identical ? "true" : "false")
            << "\n    }" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";

    bool all_identical = true;
    for (const auto& r : runs) {
        std::cout << "shard run-all jobs=" << r.jobs << ": " << r.fps
                  << " faults/s (" << r.wall << " s, speedup "
                  << r.fps / single_fps << "x, bit_identical "
                  << (r.identical ? "yes" : "NO") << ")\n";
        all_identical = all_identical && r.identical;
    }
    std::cout << "single-process: " << single_fps << " faults/s ("
              << single_wall << " s)\nreport written to " << json_path << "\n";
    return all_identical ? 0 : 1;
}

// --- telemetry overhead (--telemetry-json) --------------------------------

/// The gate DESIGN.md §5.12 promises: a fully instrumented census (metrics
/// + tracing) may cost at most this much over the null-sink run.
constexpr double kMaxTelemetryOverheadPct = 3.0;
constexpr int kTelemetryReps = 3;

/// Telemetry off vs on over the engine-report fixture, reps alternating so
/// thermal/frequency drift hits both modes equally; best-of wall per mode.
/// Every run's outcome table must match the first run's bit for bit
/// (telemetry only observes), and the enabled runs' statfi_faults_total
/// counter must equal the census size.
int run_telemetry_report(const std::string& json_path,
                         std::uint64_t max_faults) {
    const auto make_net = [] {
        auto net = models::build_model("micronet");
        stats::Rng rng(424242);
        nn::init_network_kaiming(net, rng);
        return net;
    };
    const auto eval = data::make_synthetic({}, 4, "test");
    core::ExecutorConfig config;
    config.policy = core::ClassificationPolicy::GoldenMismatch;

    auto reference_net = make_net();
    const auto universe = fault::FaultUniverse::stuck_at(reference_net);
    const std::uint64_t total = universe.total();
    const std::uint64_t faults =
        max_faults == 0 ? total : std::min(max_faults, total);
    core::DurabilityOptions durability;
    durability.range_end = faults;

    core::ExhaustiveOutcomes reference;
    double best_wall[2] = {1e300, 1e300};  // [disabled, enabled]
    bool identical = true;
    std::uint64_t faults_counter = 0;
    for (int rep = 0; rep < kTelemetryReps; ++rep) {
        for (int mode = 0; mode < 2; ++mode) {
            auto net = make_net();
            std::unique_ptr<telemetry::Session> session;
            if (mode == 1) session = std::make_unique<telemetry::Session>();
            core::CampaignEngine engine(net, eval, config, 1, session.get());
            const auto start = std::chrono::steady_clock::now();
            const auto run = engine.run_exhaustive_durable(universe, durability);
            const double wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
            best_wall[mode] = std::min(best_wall[mode], wall);
            if (rep == 0 && mode == 0) {
                reference = run.outcomes;
            } else {
                for (std::uint64_t i = 0; identical && i < faults; ++i)
                    identical = run.outcomes.at(i) == reference.at(i);
            }
            if (session) {
                const auto snap = session->metrics().snapshot();
                if (const auto* m = snap.find("statfi_faults_total"))
                    faults_counter = m->counter;
            }
        }
    }

    const double overhead_pct =
        (best_wall[1] - best_wall[0]) / best_wall[0] * 100.0;
    const bool counter_matches = faults_counter == faults;
    const bool pass =
        identical && counter_matches && overhead_pct <= kMaxTelemetryOverheadPct;

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet kaiming(424242), 4 synthetic test "
           "images, GoldenMismatch, stuck-at universe\",\n"
        << "  \"universe\": " << total << ",\n"
        << "  \"faults\": " << faults << ",\n"
        << "  \"reps_per_mode\": " << kTelemetryReps << ",\n"
        << "  \"disabled_wall_seconds\": " << best_wall[0] << ",\n"
        << "  \"enabled_wall_seconds\": " << best_wall[1] << ",\n"
        << "  \"disabled_faults_per_second\": "
        << static_cast<double>(faults) / best_wall[0] << ",\n"
        << "  \"enabled_faults_per_second\": "
        << static_cast<double>(faults) / best_wall[1] << ",\n"
        << "  \"overhead_pct\": " << overhead_pct << ",\n"
        << "  \"max_overhead_pct\": " << kMaxTelemetryOverheadPct << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
        << "  \"faults_counter_matches\": "
        << (counter_matches ? "true" : "false") << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "telemetry overhead: " << overhead_pct << "% (off "
              << best_wall[0] << " s, on " << best_wall[1]
              << " s, gate " << kMaxTelemetryOverheadPct
              << "%), bit_identical " << (identical ? "yes" : "NO")
              << ", faults counter " << faults_counter << "/" << faults
              << "\nreport written to " << json_path << "\n";
    if (!pass)
        std::cerr << "bench_perf: telemetry gate FAILED (overhead "
                  << overhead_pct << "% > " << kMaxTelemetryOverheadPct
                  << "%, or divergence above)\n";
    return pass ? 0 : 1;
}

// --- full observatory overhead (--observatory-json) -----------------------

std::string service_http(std::uint16_t port, const std::string& request);

/// The engine-report census bare vs under the full observatory: metrics,
/// tracing, the JSONL event log streamed to disk, and a live StatusServer
/// on an ephemeral loopback port that a client thread actually polls
/// (/status and /metrics every ~50 ms) — an idle server would measure
/// nothing and once reported http_requests_served: 0. Alternating reps,
/// best-of wall per mode; the instrumented run must stay within
/// kMaxTelemetryOverheadPct of the bare run and its outcome table must
/// match bit for bit.
int run_observatory_report(const std::string& json_path,
                           std::uint64_t max_faults) {
    const auto make_net = [] {
        auto net = models::build_model("micronet");
        stats::Rng rng(424242);
        nn::init_network_kaiming(net, rng);
        return net;
    };
    const auto eval = data::make_synthetic({}, 4, "test");
    core::ExecutorConfig config;
    config.policy = core::ClassificationPolicy::GoldenMismatch;

    auto reference_net = make_net();
    const auto universe = fault::FaultUniverse::stuck_at(reference_net);
    const std::uint64_t total = universe.total();
    const std::uint64_t faults =
        max_faults == 0 ? total : std::min(max_faults, total);
    core::DurabilityOptions durability;
    durability.range_end = faults;

    const auto log_path = std::filesystem::temp_directory_path() /
                          "statfi_observatory_bench.jsonl";

    core::CampaignHeaderInfo header;
    header.command = "bench";
    header.model = "micronet";
    header.approach = "exhaustive";
    header.dtype = "fp32";
    header.policy = "golden-mismatch";
    header.seed = 424242;
    header.images = 4;

    core::ExhaustiveOutcomes reference;
    double best_wall[2] = {1e300, 1e300};  // [bare, observatory]
    bool identical = true;
    std::uint64_t events_logged = 0;
    std::uint64_t requests_served = 0;
    for (int rep = 0; rep < kTelemetryReps; ++rep) {
        for (int mode = 0; mode < 2; ++mode) {
            auto net = make_net();
            std::unique_ptr<telemetry::Session> session;
            std::unique_ptr<telemetry::StatusServer> server;
            std::atomic<bool> poll_stop{false};
            std::thread poller;
            if (mode == 1) {
                session = std::make_unique<telemetry::Session>();
                session->open_event_log(log_path.string());
                core::emit_campaign_header(*session->events(), header);
                server =
                    std::make_unique<telemetry::StatusServer>(session.get(), 0);
                // A live observer: the overhead being gated includes
                // answering real requests while the census runs.
                const std::uint16_t port = server->port();
                poller = std::thread([port, &poll_stop] {
                    while (!poll_stop.load(std::memory_order_relaxed)) {
                        service_http(port, "GET /status HTTP/1.1\r\n"
                                           "Connection: close\r\n\r\n");
                        service_http(port, "GET /metrics HTTP/1.1\r\n"
                                           "Connection: close\r\n\r\n");
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                    }
                });
            }
            core::CampaignEngine engine(net, eval, config, 1, session.get());
            const auto start = std::chrono::steady_clock::now();
            const auto run = engine.run_exhaustive_durable(universe, durability);
            const double wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
            if (poller.joinable()) {
                poll_stop.store(true, std::memory_order_relaxed);
                poller.join();
            }
            best_wall[mode] = std::min(best_wall[mode], wall);
            if (rep == 0 && mode == 0) {
                reference = run.outcomes;
            } else {
                for (std::uint64_t i = 0; identical && i < faults; ++i)
                    identical = run.outcomes.at(i) == reference.at(i);
            }
            if (session) {
                core::emit_campaign_end(
                    *session->events(), run.complete, faults,
                    run.outcomes.critical_count(0, faults), wall);
                events_logged = session->events()->events_written();
                requests_served = server->requests_served();
            }
        }
    }
    std::filesystem::remove(log_path);

    const double overhead_pct =
        (best_wall[1] - best_wall[0]) / best_wall[0] * 100.0;
    const bool logged = events_logged >= 2;  // header + campaign_end minimum
    // The poller issues /status + /metrics pairs for the whole run; zero
    // served requests would mean the "live observer" leg measured nothing.
    const bool served = requests_served >= 2;
    const bool pass = identical && logged && served &&
                      overhead_pct <= kMaxTelemetryOverheadPct;

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet kaiming(424242), 4 synthetic test "
           "images, GoldenMismatch, stuck-at universe\",\n"
        << "  \"instrumentation\": \"metrics + tracing + JSONL event log + "
           "StatusServer (ephemeral loopback port)\",\n"
        << "  \"universe\": " << total << ",\n"
        << "  \"faults\": " << faults << ",\n"
        << "  \"reps_per_mode\": " << kTelemetryReps << ",\n"
        << "  \"bare_wall_seconds\": " << best_wall[0] << ",\n"
        << "  \"observatory_wall_seconds\": " << best_wall[1] << ",\n"
        << "  \"bare_faults_per_second\": "
        << static_cast<double>(faults) / best_wall[0] << ",\n"
        << "  \"observatory_faults_per_second\": "
        << static_cast<double>(faults) / best_wall[1] << ",\n"
        << "  \"overhead_pct\": " << overhead_pct << ",\n"
        << "  \"max_overhead_pct\": " << kMaxTelemetryOverheadPct << ",\n"
        << "  \"events_logged\": " << events_logged << ",\n"
        << "  \"http_requests_served\": " << requests_served << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "observatory overhead: " << overhead_pct << "% (bare "
              << best_wall[0] << " s, instrumented " << best_wall[1]
              << " s, gate " << kMaxTelemetryOverheadPct
              << "%), bit_identical " << (identical ? "yes" : "NO") << ", "
              << events_logged << " events logged, " << requests_served
              << " HTTP requests served\nreport written to " << json_path
              << "\n";
    if (!pass)
        std::cerr << "bench_perf: observatory gate FAILED (overhead "
                  << overhead_pct << "% > " << kMaxTelemetryOverheadPct
                  << "%, zero requests served, or divergence above)\n";
    return pass ? 0 : 1;
}

// --- service scheduling throughput (--service-json) -----------------------

/// Minimal loopback HTTP client for driving the in-process daemon.
std::string service_http(std::uint16_t port, const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

report::JsonValue service_get_json(std::uint16_t port,
                                   const std::string& path) {
    const std::string response = service_http(
        port, "GET " + path + " HTTP/1.1\r\nConnection: close\r\n\r\n");
    const auto split = response.find("\r\n\r\n");
    if (split == std::string::npos) return {};
    return report::parse_json(response.substr(split + 4));
}

report::JsonValue service_post_json(std::uint16_t port,
                                    const std::string& path,
                                    const std::string& body) {
    const std::string response = service_http(
        port, "POST " + path + " HTTP/1.1\r\nContent-Length: " +
                  std::to_string(body.size()) +
                  "\r\nConnection: close\r\n\r\n" + body);
    const auto split = response.find("\r\n\r\n");
    if (split == std::string::npos) return {};
    return report::parse_json(response.substr(split + 4));
}

/// Poll a job to its terminal state; returns the final status document.
report::JsonValue service_await(std::uint16_t port, std::uint64_t id) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
        const auto status = service_get_json(
            port, "/campaigns/" + std::to_string(id) + "/status");
        const std::string state = status.get_str("state");
        if (state == "done" || state == "failed" ||
            std::chrono::steady_clock::now() > deadline)
            return status;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

/// Jobs/second through the full service path, cache-hit latency for an
/// identical resubmission, and served-result identity against a direct
/// engine run of the same recipe.
int run_service_report(const std::string& json_path) {
    constexpr std::size_t kJobs = 4;
    constexpr std::size_t kWorkers = 2;

    const auto state_dir =
        std::filesystem::temp_directory_path() / "statfi_service_bench";
    std::filesystem::remove_all(state_dir);

    service::DaemonOptions options;
    options.port = 0;  // ephemeral
    options.workers = kWorkers;
    options.default_shards = 2;
    options.state_dir = state_dir.string();
    service::ServiceDaemon daemon(options);
    daemon.start();
    const std::uint16_t port = daemon.port();

    const auto recipe = [](std::uint64_t seed) {
        return std::string(R"({"model":"micronet","approach":"exhaustive",)"
                           R"("images":2,"policy":"golden","seed":)") +
               std::to_string(seed) + "}";
    };

    // Batch of distinct campaigns: submit all, then poll each to done.
    const auto batch_start = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    for (std::size_t j = 0; j < kJobs; ++j)
        ids.push_back(
            service_post_json(port, "/campaigns", recipe(100 + j)).get_uint("id"));
    bool all_done = true;
    std::uint64_t classified = 0;
    for (const std::uint64_t id : ids) {
        const auto status = service_await(port, id);
        all_done = all_done && status.get_str("state") == "done";
        classified += status.get_uint("classified");
    }
    const double batch_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_start)
            .count();

    // Identical resubmission: POST-to-done latency of a pure cache hit.
    const auto hit_start = std::chrono::steady_clock::now();
    const std::uint64_t hit_id =
        service_post_json(port, "/campaigns", recipe(100)).get_uint("id");
    const auto hit_status = service_await(port, hit_id);
    const double hit_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      hit_start)
            .count();
    const bool cache_hit = hit_status.get_bool("cache_hit") &&
                           hit_status.get_uint("classified") == 0;

    // Served result vs the direct engine path on the same recipe.
    const auto result = service_get_json(
        port, "/campaigns/" + std::to_string(ids[0]) + "/result.json");
    daemon.stop();
    const auto sub = service::parse_submission(recipe(100));
    auto fx = shard::build_fixture(sub.recipe);
    core::CampaignEngine engine(fx.net, fx.eval, fx.config);
    const auto direct = engine.run_exhaustive_durable(fx.universe, {});
    const bool identical =
        result.get_uint("total_injected") == fx.universe.total() &&
        result.get_uint("total_critical") ==
            direct.outcomes.critical_count(0, fx.universe.total());

    std::filesystem::remove_all(state_dir);
    const bool pass = all_done && cache_hit && identical;

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet exhaustive census, 2 synthetic test "
           "images, GoldenMismatch, distinct seeds\",\n"
        << "  \"jobs\": " << kJobs << ",\n"
        << "  \"workers\": " << kWorkers << ",\n"
        << "  \"shards_per_job\": " << options.default_shards << ",\n"
        << "  \"classified_total\": " << classified << ",\n"
        << "  \"batch_wall_seconds\": " << batch_wall << ",\n"
        << "  \"jobs_per_second\": "
        << static_cast<double>(kJobs) / batch_wall << ",\n"
        << "  \"cache_hit_seconds\": " << hit_wall << ",\n"
        << "  \"cache_hit\": " << (cache_hit ? "true" : "false") << ",\n"
        << "  \"result_identical_to_direct\": "
        << (identical ? "true" : "false") << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "service scheduling: " << kJobs << " jobs in " << batch_wall
              << " s (" << static_cast<double>(kJobs) / batch_wall
              << " jobs/s, " << kWorkers << " workers), cache hit in "
              << hit_wall << " s, identical "
              << (identical ? "yes" : "NO") << "\nreport written to "
              << json_path << "\n";
    if (!pass)
        std::cerr << "bench_perf: service gate FAILED (incomplete jobs, "
                     "missed cache, or result divergence above)\n";
    return pass ? 0 : 1;
}

// --- fleet observability plane overhead (--fleet-json) --------------------

/// One daemon life with the fleet plane on or off: submit @p jobs distinct
/// campaigns, await them, and collect the served outcomes plus (fleet mode)
/// the plane's artifacts — metrics history samples, the merged trace's
/// process count and trace id, and the /fleet listing.
struct FleetModeResult {
    double wall = 0.0;
    bool all_done = true;
    bool fleet_listed = true;
    std::vector<std::array<std::uint64_t, 2>> outcomes;  ///< injected, critical
    std::uint64_t history_samples = 0;
    std::size_t trace_processes = 0;
    std::string trace_id;
};

FleetModeResult run_fleet_mode(bool fleet, std::size_t jobs) {
    const auto state_dir =
        std::filesystem::temp_directory_path() /
        (fleet ? "statfi_fleet_bench_on" : "statfi_fleet_bench_off");
    std::filesystem::remove_all(state_dir);
    service::DaemonOptions options;
    options.port = 0;  // ephemeral
    options.workers = 2;
    options.default_shards = 3;
    options.state_dir = state_dir.string();
    options.fleet = fleet;
    service::ServiceDaemon daemon(options);
    daemon.start();
    const std::uint16_t port = daemon.port();

    FleetModeResult r;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    for (std::size_t j = 0; j < jobs; ++j)
        ids.push_back(
            service_post_json(
                port, "/campaigns",
                std::string(
                    R"({"model":"micronet","approach":"exhaustive",)"
                    R"("images":4,"policy":"golden","seed":)") +
                    std::to_string(500 + j) + "}")
                .get_uint("id"));
    for (const std::uint64_t id : ids) {
        const auto status = service_await(port, id);
        r.all_done = r.all_done && status.get_str("state") == "done";
    }
    r.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();

    for (const std::uint64_t id : ids) {
        const auto result = service_get_json(
            port, "/campaigns/" + std::to_string(id) + "/result.json");
        r.outcomes.push_back({result.get_uint("total_injected"),
                              result.get_uint("total_critical")});
    }
    const auto fleet_view = service_get_json(port, "/fleet");
    const report::JsonValue* listed = fleet_view.find("jobs");
    r.fleet_listed = listed && listed->array.size() == jobs;
    if (fleet) {
        const auto history = service_get_json(
            port, "/campaigns/" + std::to_string(ids[0]) + "/history");
        if (const report::JsonValue* samples = history.find("samples"))
            r.history_samples = samples->array.size();
        const auto trace = service_get_json(
            port, "/campaigns/" + std::to_string(ids[0]) + "/trace");
        for (const report::JsonValue& e : trace.array) {
            if (e.get_str("name") == "process_name") ++r.trace_processes;
            if (e.get_str("name") == "statfi_trace") {
                const report::JsonValue* args = e.find("args");
                const std::string id_text =
                    args ? args->get_str("trace_id") : "";
                if (r.trace_id.empty())
                    r.trace_id = id_text;
                else if (r.trace_id != id_text)
                    r.trace_id = "MISMATCH";
            }
        }
    }
    daemon.stop();
    std::filesystem::remove_all(state_dir);
    return r;
}

/// The service batch with the fleet plane off vs on: same alternating-rep,
/// best-of-wall protocol and 3% ceiling as the telemetry gates, plus
/// artifact validation (history sampled, one trace_id across daemon + every
/// shard, /fleet listing) and served-outcome identity across modes.
int run_fleet_report(const std::string& json_path) {
    constexpr std::size_t kJobs = 2;
    // Daemon-lifetime walls jitter by a few percent run-to-run (thread
    // scheduling, page-cache warmth), which dwarfs the plane's true cost;
    // best-of-5 per mode converges where best-of-3 still bounces.
    constexpr int kReps = 5;
    double best_wall[2] = {1e300, 1e300};  // [off, on]
    FleetModeResult last[2];
    bool all_done = true;
    for (int rep = 0; rep < kReps; ++rep) {
        for (int mode = 0; mode < 2; ++mode) {
            FleetModeResult r = run_fleet_mode(mode == 1, kJobs);
            all_done = all_done && r.all_done && r.fleet_listed;
            best_wall[mode] = std::min(best_wall[mode], r.wall);
            last[mode] = std::move(r);
        }
    }
    const bool identical = last[0].outcomes == last[1].outcomes &&
                           !last[0].outcomes.empty();
    const double overhead_pct =
        (best_wall[1] - best_wall[0]) / best_wall[0] * 100.0;
    // daemon + 3 shards = 4 processes minimum under one non-empty trace id
    const bool artifacts = last[1].history_samples >= 1 &&
                           last[1].trace_processes >= 4 &&
                           !last[1].trace_id.empty() &&
                           last[1].trace_id != "MISMATCH";
    const bool pass = all_done && identical && artifacts &&
                      overhead_pct <= kMaxTelemetryOverheadPct;

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "bench_perf: cannot write " << json_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"fixture\": \"micronet exhaustive census, 4 synthetic test "
           "images, GoldenMismatch, distinct seeds, 3 shards/job\",\n"
        << "  \"instrumentation\": \"fleet plane: per-shard trace sessions "
           "+ 200ms metrics sampler + live stats + merged trace\",\n"
        << "  \"jobs\": " << kJobs << ",\n"
        << "  \"reps_per_mode\": " << kReps << ",\n"
        << "  \"off_wall_seconds\": " << best_wall[0] << ",\n"
        << "  \"on_wall_seconds\": " << best_wall[1] << ",\n"
        << "  \"jobs_per_second\": "
        << static_cast<double>(kJobs) / best_wall[1] << ",\n"
        << "  \"overhead_pct\": " << overhead_pct << ",\n"
        << "  \"max_overhead_pct\": " << kMaxTelemetryOverheadPct << ",\n"
        << "  \"history_samples\": " << last[1].history_samples << ",\n"
        << "  \"trace_processes\": " << last[1].trace_processes << ",\n"
        << "  \"trace_id\": \"" << last[1].trace_id << "\",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
        << "  \"pass\": " << (pass ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "fleet plane overhead: " << overhead_pct << "% (off "
              << best_wall[0] << " s, on " << best_wall[1] << " s, gate "
              << kMaxTelemetryOverheadPct << "%), outcomes identical "
              << (identical ? "yes" : "NO") << ", "
              << last[1].history_samples << " history sample(s), "
              << last[1].trace_processes << " trace process(es) under trace "
              << last[1].trace_id << "\nreport written to " << json_path
              << "\n";
    if (!pass)
        std::cerr << "bench_perf: fleet gate FAILED (overhead "
                  << overhead_pct << "% > " << kMaxTelemetryOverheadPct
                  << "%, missing artifacts, or divergence above)\n";
    return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::string formats_json_path;
    std::string kernels_json_path;
    std::string shard_json_path;
    std::string telemetry_json_path;
    std::string observatory_json_path;
    std::string service_json_path;
    std::string fleet_json_path;
    std::string statfi_binary;
    std::uint64_t max_faults = 0;  // 0 = full census
    std::size_t threads = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine-json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--formats-json" && i + 1 < argc) {
            formats_json_path = argv[++i];
        } else if (arg == "--kernels-json" && i + 1 < argc) {
            kernels_json_path = argv[++i];
        } else if (arg == "--shard-json" && i + 1 < argc) {
            shard_json_path = argv[++i];
        } else if (arg == "--telemetry-json" && i + 1 < argc) {
            telemetry_json_path = argv[++i];
        } else if (arg == "--observatory-json" && i + 1 < argc) {
            observatory_json_path = argv[++i];
        } else if (arg == "--service-json" && i + 1 < argc) {
            service_json_path = argv[++i];
        } else if (arg == "--fleet-json" && i + 1 < argc) {
            fleet_json_path = argv[++i];
        } else if (arg == "--statfi" && i + 1 < argc) {
            statfi_binary = argv[++i];
        } else if (arg == "--faults" && i + 1 < argc) {
            max_faults = std::stoull(argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::stoul(argv[++i]);
        }
    }
    if (!fleet_json_path.empty()) return run_fleet_report(fleet_json_path);
    if (!service_json_path.empty())
        return run_service_report(service_json_path);
    if (!observatory_json_path.empty())
        return run_observatory_report(observatory_json_path, max_faults);
    if (!telemetry_json_path.empty())
        return run_telemetry_report(telemetry_json_path, max_faults);
    if (!shard_json_path.empty()) {
        if (statfi_binary.empty())
            statfi_binary = (std::filesystem::path(argv[0]).parent_path() /
                             ".." / "tools" / "statfi")
                                .string();
        return run_shard_report(shard_json_path, statfi_binary);
    }
    if (!formats_json_path.empty())
        return run_formats_report(formats_json_path, max_faults, threads);
    if (!kernels_json_path.empty())
        return run_kernels_report(kernels_json_path, max_faults, threads);
    if (!json_path.empty()) return run_engine_report(json_path, max_faults, threads);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

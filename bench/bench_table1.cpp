// Reproduces Table I of the paper: ResNet-20 per-layer fault populations and
// the sample sizes of the four statistical FI approaches
// (e = 1%, 99% confidence, t = 2.58).
//
// Columns 2-6 are pure architecture + Eq. 3 arithmetic and match the paper
// digit-for-digit (modulo the paper's layer-11 "9,226" typo). The data-aware
// column depends on the weight distribution: the paper used trained CIFAR-10
// weights, we use Kaiming-initialized weights with the same distribution
// shape, so that column reproduces in magnitude and ordering, not digits.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/planner.hpp"
#include "fault/universe.hpp"
#include "models/resnet_cifar.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    auto net = models::make_resnet20();
    stats::Rng rng(2023);
    nn::init_network_kaiming(net, rng);
    auto universe = fault::FaultUniverse::stuck_at(net);

    const stats::SampleSpec spec;  // e=1%, 99%, p=0.5, t=2.58
    const auto criticality = core::analyze_network(net);

    const auto network_wise = core::plan_network_wise(universe, spec);
    const auto layer_wise = core::plan_layer_wise(universe, spec);
    const auto data_unaware = core::plan_data_unaware(universe, spec);
    const auto data_aware = core::plan_data_aware(universe, spec, criticality);

    std::cout << "Table I: ResNet-20 — Exhaustive vs Statistical FIs\n"
              << "(e=1%, t=99% [2.58]; paper values in DESIGN.md; paper's "
                 "layer-11 count 9,226 is a typo for 9,216)\n\n";

    report::Table table({"Layer", "Parameters", "Exhaustive FI",
                         "Network-wise [9]", "Layer-wise", "Data-unaware",
                         "Data-aware"});
    std::uint64_t params_total = 0;
    for (int l = 0; l < universe.layer_count(); ++l) {
        params_total += universe.layer(l).weight_count;
        table.add_row({std::to_string(l),
                       report::fmt_u64(universe.layer(l).weight_count),
                       report::fmt_u64(universe.layer_population(l)),
                       report::fmt_u64(network_wise.layer_sample_size(universe, l)),
                       report::fmt_u64(layer_wise.layer_sample_size(universe, l)),
                       report::fmt_u64(data_unaware.layer_sample_size(universe, l)),
                       report::fmt_u64(data_aware.layer_sample_size(universe, l))});
    }
    table.add_row({"Total", report::fmt_u64(params_total),
                   report::fmt_u64(universe.total()),
                   report::fmt_u64(network_wise.total_sample_size()),
                   report::fmt_u64(layer_wise.total_sample_size()),
                   report::fmt_u64(data_unaware.total_sample_size()),
                   report::fmt_u64(data_aware.total_sample_size())});
    table.print(std::cout);

    std::cout << "\nPaper totals: exhaustive 17,174,144 | network-wise 16,625 "
                 "| layer-wise 307,650 | data-unaware 4,885,760 | data-aware "
                 "207,837\n";
    return 0;
}

// Reproduces Table II of the paper: MobileNetV2 totals — 54 weight layers,
// 2,203,584 parameters, 141,029,376 stuck-at faults — and the total sample
// sizes of the four statistical approaches.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/planner.hpp"
#include "fault/universe.hpp"
#include "models/mobilenetv2.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    auto net = models::make_mobilenetv2();
    stats::Rng rng(2023);
    nn::init_network_kaiming(net, rng);
    auto universe = fault::FaultUniverse::stuck_at(net);

    const stats::SampleSpec spec;
    const auto criticality = core::analyze_network(net);

    std::cout << "Table II: MobileNetV2 — Exhaustive vs Statistical FIs "
                 "(total numbers)\n\n";

    report::Table table({"Total Layers", "Total Parameters", "Exhaustive FI",
                         "Network-wise [9]", "Layer-wise", "Data-unaware",
                         "Data-aware"});
    table.add_row(
        {std::to_string(universe.layer_count()),
         report::fmt_u64(net.total_weight_count()),
         report::fmt_u64(universe.total()),
         report::fmt_u64(
             core::plan_network_wise(universe, spec).total_sample_size()),
         report::fmt_u64(
             core::plan_layer_wise(universe, spec).total_sample_size()),
         report::fmt_u64(
             core::plan_data_unaware(universe, spec).total_sample_size()),
         report::fmt_u64(core::plan_data_aware(universe, spec, criticality)
                             .total_sample_size())});
    table.print(std::cout);

    std::cout << "\nPaper row: 54 | 2,203,584 | 141,029,376 | 16,639 | "
                 "838,988 | 14,894,400 | 778,951\n"
              << "(data-aware depends on the weight distribution; trained vs "
                 "Kaiming weights differ in digits, not in ordering)\n";
    return 0;
}

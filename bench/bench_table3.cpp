// Reproduces Table III of the paper: the four statistical FI approaches
// compared on (n, injected %, average per-layer error margin), validated
// against the exhaustive census.
//
// Paper shape to confirm (both CNNs):
//   network-wise: tiny n, avg margin ABOVE the predefined 1% -> invalid;
//   layer-wise:   ~1.8% of faults, margin well below 1%;
//   data-unaware: most faults, smallest margin;
//   data-aware:   fewest faults of the valid approaches, margin ~layer-wise.
// Runs on the validation substrate (MicroNet + exhaustive ground truth),
// with every statistical sample replayed against the census.

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

using namespace statfi;

int main() {
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    const auto& truth = testbed.ground_truth();
    const stats::SampleSpec spec;  // e=1%, 99% confidence

    const auto criticality = core::analyze_network(testbed.network());

    struct Row {
        const char* name;
        core::CampaignPlan plan;
    };
    std::vector<Row> rows;
    rows.push_back({"Exhaustive FI", core::plan_exhaustive(universe)});
    rows.push_back(
        {"Network-wise SFI [9]", core::plan_network_wise(universe, spec)});
    rows.push_back({"Layer-wise SFI", core::plan_layer_wise(universe, spec)});
    rows.push_back(
        {"Data-unaware SFI", core::plan_data_unaware(universe, spec)});
    rows.push_back(
        {"Data-aware SFI", core::plan_data_aware(universe, spec, criticality)});

    std::cout << "Table III: Comparing the FI methodologies "
                 "(validation substrate: MicroNet, N = "
              << report::fmt_u64(universe.total()) << ")\n\n";

    report::Table table({"Approach", "FIs (n)", "Injected Faults [%]",
                         "Avg Error Margin [%] (acceptable<1%)",
                         "Layers contained", "Network contained"});
    for (const auto& row : rows) {
        if (row.plan.approach == core::Approach::Exhaustive) {
            table.add_row({row.name, report::fmt_u64(universe.total()), "100",
                           "-", "-", "-"});
            continue;
        }
        const auto result =
            core::replay(universe, row.plan, truth, testbed.rng(row.name));
        const auto validation =
            core::validate_against_exhaustive(universe, result, truth);
        table.add_row(
            {row.name, report::fmt_u64(result.total_injected()),
             report::fmt_percent(
                 static_cast<double>(result.total_injected()) /
                     static_cast<double>(universe.total()),
                 2),
             report::fmt_percent(validation.avg_layer_margin, 3),
             std::to_string(validation.layers_contained) + "/" +
                 std::to_string(validation.layers_total),
             validation.network_contained ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper (ResNet-20):    16,625 / 307,650 / 4,885,760 / 207,837 "
           "FIs; margins 1.57 / 0.19 / 0.06 / 0.08 %\n"
        << "Paper (MobileNetV2):  16,639 / 838,988 / 14,894,400 / 778,951 "
           "FIs; margins 3.28 / 0.01 / 0.004 / 0.008 %\n"
        << "Shape to check here:  network-wise needs the fewest FIs but its "
           "per-layer margins explode (cannot make per-layer claims);\n"
        << "                      data-aware is the cheapest approach whose "
           "margins stay acceptable.\n";

    // The per-layer margin of the network-wise readout, with honest
    // (Laplace-smoothed) margins for its tiny per-layer samples — the
    // quantified version of the paper's invalidity argument.
    const auto nw_result =
        core::replay(universe, rows[1].plan, truth, testbed.rng(rows[1].name));
    core::EstimatorConfig honest;
    honest.laplace_smoothing = true;
    const auto nw_layers = core::estimate_layers(universe, nw_result, honest);
    std::cout << "\nNetwork-wise per-layer margin (Laplace-smoothed): "
              << report::fmt_percent(core::average_layer_margin(nw_layers), 2)
              << "% average — far above the 1% requirement.\n";
    return 0;
}

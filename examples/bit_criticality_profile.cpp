// Scenario: pre-silicon safety analysis of a CNN's weight representation.
//
// Before any fault-injection budget is spent, a safety engineer can profile
// which bit positions of the stored weights are dangerous — purely from the
// golden weight distribution (paper §III-B). This example produces that
// profile for ResNet-20 in all four supported data types and writes the
// FP32 profile to a CSV for downstream tooling.
//
// Build & run:  ./build/examples/bit_criticality_profile [out.csv]

#include <fstream>
#include <iostream>

#include "core/data_aware.hpp"
#include "models/resnet_cifar.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
    using namespace statfi;
    using fault::DataType;

    auto net = models::make_resnet20();
    stats::Rng rng(7);
    nn::init_network_kaiming(net, rng);
    std::cout << "ResNet-20: " << report::fmt_u64(net.total_weight_count())
              << " weights analyzed (no injections performed)\n\n";

    // FP32 profile in full detail.
    const auto fp32 = core::analyze_network(net);
    report::Table table(
        {"Bit", "Field", "f1 [%]", "D 0->1", "D 1->0", "Davg", "p(i)"});
    for (int bit = 31; bit >= 0; --bit) {
        const auto i = static_cast<std::size_t>(bit);
        const char* field = bit == 31 ? "sign"
                            : bit >= 23 ? "exponent"
                                        : "mantissa";
        table.add_row({std::to_string(bit), field,
                       report::fmt_percent(fp32.f1[i], 1),
                       report::fmt_double(fp32.d01[i], 6),
                       report::fmt_double(fp32.d10[i], 6),
                       report::fmt_double(fp32.davg[i], 6),
                       report::fmt_double(fp32.p[i], 5)});
    }
    table.print(std::cout);

    // Cross-dtype comparison: where does the danger live per representation?
    std::cout << "\nMost critical bit per data type:\n";
    for (const DataType dtype : {DataType::Float32, DataType::Float16,
                                 DataType::BFloat16, DataType::Int8}) {
        core::DataAwareConfig config;
        config.dtype = dtype;
        if (dtype == DataType::Int8) {
            float max_abs = 0.0f;
            for (auto& ref : net.weight_layers())
                max_abs = std::max(max_abs, ref.weight->max_abs());
            config.quant.scale = max_abs / 127.0f;
        }
        const auto crit = core::analyze_network(net, config);
        int top = 0;
        for (int i = 1; i < crit.bits(); ++i)
            if (crit.p[static_cast<std::size_t>(i)] >
                crit.p[static_cast<std::size_t>(top)])
                top = i;
        std::cout << "  " << fault::to_string(dtype) << ": bit " << top
                  << " (p = " << crit.p[static_cast<std::size_t>(top)] << ")\n";
    }

    // CSV export.
    const std::string path = argc > 1 ? argv[1] : "resnet20_bit_profile.csv";
    report::Table csv({"bit", "f0", "f1", "d01", "d10", "davg", "p"});
    for (int bit = 0; bit < 32; ++bit) {
        const auto i = static_cast<std::size_t>(bit);
        csv.add_row({std::to_string(bit), report::fmt_double(fp32.f0[i], 6),
                     report::fmt_double(fp32.f1[i], 6),
                     report::fmt_double(fp32.d01[i], 9),
                     report::fmt_double(fp32.d10[i], 9),
                     report::fmt_double(fp32.davg[i], 9),
                     report::fmt_double(fp32.p[i], 9)});
    }
    std::ofstream os(path);
    csv.write_csv(os);
    std::cout << "\nwrote " << path << "\n";
    return 0;
}

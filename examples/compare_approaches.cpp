// Scenario: choosing an SFI methodology for a verification sign-off.
//
// A verification team must pick a fault-injection strategy with a bounded
// budget and a 1% accuracy requirement. This example runs all four
// statistical approaches against the SAME exhaustive census (validation
// substrate, cached on disk) and prints the cost/accuracy trade-off the
// paper's Table III summarizes — then drills into the per-layer view to
// show why the cheapest plan (network-wise) is not statistically valid for
// per-layer claims.
//
// Build & run:  ./build/examples/compare_approaches

#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

int main() {
    using namespace statfi;
    core::Testbed testbed;
    const auto& universe = testbed.universe();
    std::cout << "substrate: MicroNet, test accuracy "
              << report::fmt_percent(testbed.test_accuracy(), 1) << "%, N = "
              << report::fmt_u64(universe.total()) << " faults\n"
              << "building exhaustive ground truth (cached after the first "
                 "run)...\n\n";
    const auto& truth = testbed.ground_truth();

    const stats::SampleSpec spec;  // e = 1%, 99%
    const auto criticality = core::analyze_network(testbed.network());

    struct Candidate {
        const char* name;
        core::CampaignPlan plan;
    };
    const std::vector<Candidate> candidates{
        {"network-wise", core::plan_network_wise(universe, spec)},
        {"layer-wise", core::plan_layer_wise(universe, spec)},
        {"data-unaware", core::plan_data_unaware(universe, spec)},
        {"data-aware", core::plan_data_aware(universe, spec, criticality)},
    };

    report::Table table({"Approach", "FIs", "% of exhaustive",
                         "Network est. [%]", "Truth [%]", "Contained",
                         "Layers contained"});
    for (const auto& candidate : candidates) {
        const auto result = core::replay(universe, candidate.plan, truth,
                                         testbed.rng(candidate.name));
        const auto network = core::estimate_network(universe, result);
        const auto validation =
            core::validate_against_exhaustive(universe, result, truth);
        table.add_row(
            {candidate.name, report::fmt_u64(result.total_injected()),
             report::fmt_percent(static_cast<double>(result.total_injected()) /
                                     static_cast<double>(universe.total()),
                                 2),
             report::fmt_percent(network.rate, 3) + " +- " +
                 report::fmt_percent(network.margin, 3),
             report::fmt_percent(truth.network_critical_rate(), 3),
             network.contains(truth.network_critical_rate()) ? "yes" : "NO",
             std::to_string(validation.layers_contained) + "/" +
                 std::to_string(validation.layers_total)});
    }
    table.print(std::cout);

    std::cout << "\nDrill-down: per-layer estimates from the network-wise "
                 "sample (why it fails fine-grained claims)\n\n";
    const auto nw_result =
        core::replay(universe, candidates[0].plan, truth, testbed.rng("drill"));
    core::EstimatorConfig honest;
    honest.laplace_smoothing = true;
    report::Table drill({"Layer", "FIs landed", "Estimate [%]", "Margin [%]",
                         "Truth [%]"});
    for (const auto& le :
         core::estimate_layers(universe, nw_result, honest)) {
        drill.add_row(
            {universe.layer(le.layer).name,
             report::fmt_u64(le.estimate.injected),
             report::fmt_percent(le.estimate.rate, 2),
             report::fmt_percent(le.estimate.margin, 2),
             report::fmt_percent(truth.layer_critical_rate(universe, le.layer),
                                 2)});
    }
    drill.print(std::cout);

    std::cout << "\nverdict: data-aware gives layer-valid estimates at the "
                 "lowest cost — the paper's conclusion.\n";
    return 0;
}

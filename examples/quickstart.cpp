// Quickstart: the five-minute tour of StatFI.
//
//  1. build and train a small CNN (MicroNet) on a synthetic dataset;
//  2. enumerate its stuck-at fault universe;
//  3. derive the data-aware per-bit criticality p(i) from the golden weights
//     (no injections needed);
//  4. plan a data-aware statistical campaign (Eq. 3) at a 1% error margin,
//     99% confidence;
//  5. run it and report the estimated critical-fault rate with its margin.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/data_aware.hpp"
#include "core/engine.hpp"
#include "core/estimator.hpp"
#include "data/synthetic.hpp"
#include "models/micronet.hpp"
#include "nn/init.hpp"
#include "nn/trainer.hpp"
#include "report/table.hpp"

int main() {
    using namespace statfi;
    stats::Rng rng(42);

    // 1. Model + data + a short training run.
    auto net = models::make_micronet();
    nn::init_network_kaiming(net, rng);
    data::SyntheticSpec data_spec;
    const auto train = data::make_synthetic(data_spec, 1024, "train");
    const auto test = data::make_synthetic(data_spec, 128, "test");
    std::cout << "training MicroNet (" << net.total_weight_count()
              << " weights)...\n";
    nn::train_classifier(net, train.images, train.labels, /*epochs=*/8,
                         /*batch_size=*/32, nn::SgdConfig{}, rng);
    const double accuracy =
        nn::top1_accuracy(net.forward(test.images), test.labels);
    std::cout << "test accuracy: " << report::fmt_percent(accuracy, 1)
              << "%\n\n";

    // 2. The fault population: permanent stuck-at-0/1 on every weight bit.
    auto universe = fault::FaultUniverse::stuck_at(net);
    std::cout << "fault universe: N = " << report::fmt_u64(universe.total())
              << " stuck-at faults across " << universe.layer_count()
              << " weight layers\n";

    // 3. Data-aware criticality from the golden weights alone.
    const auto criticality = core::analyze_network(net);
    std::cout << "most critical bit: exponent MSB p(30) = "
              << criticality.p[30] << ", mantissa LSB p(0) = "
              << report::fmt_double(criticality.p[0], 6) << "\n\n";

    // 4. The campaign engine: spec -> plan -> run. The engine owns cloned
    // weights, the golden-activation cache, and (optionally) a worker pool;
    // plan() sizes every per-bit subpopulation via Eq. 3.
    const auto eval = test.take(8);
    core::CampaignEngine engine(net, eval);
    core::CampaignSpec campaign;
    campaign.approach = core::Approach::DataAware;  // e = 1%, 99% confidence
    const auto plan = engine.plan(universe, campaign);
    std::cout << "data-aware plan: " << report::fmt_u64(plan.total_sample_size())
              << " injections ("
              << report::fmt_percent(
                     static_cast<double>(plan.total_sample_size()) /
                         static_cast<double>(universe.total()),
                     2)
              << "% of exhaustive)\n";

    // 5. Run it (weights are corrupted and restored fault by fault).
    std::cout << "running " << report::fmt_u64(plan.total_sample_size())
              << " fault injections...\n";
    const auto result = engine.run(universe, plan, rng.fork("campaign"));

    const auto estimate = core::estimate_network(universe, result);
    std::cout << "\nestimated critical-fault rate: "
              << report::fmt_percent(estimate.rate, 3) << "% +- "
              << report::fmt_percent(estimate.margin, 3) << "% (99% conf.)\n"
              << "campaign wall time: " << report::fmt_double(result.wall_seconds, 1)
              << "s, " << engine.inference_count() << " faulty inferences\n";

    // Bonus: the per-layer view the paper says network-wise SFIs cannot give.
    report::Table table({"Layer", "Critical [%]", "Margin [%]", "FIs"});
    for (const auto& le : core::estimate_layers(universe, result)) {
        table.add_row({universe.layer(le.layer).name,
                       report::fmt_percent(le.estimate.rate, 3),
                       report::fmt_percent(le.estimate.margin, 3),
                       report::fmt_u64(le.estimate.injected)});
    }
    std::cout << '\n';
    table.print(std::cout);
    return 0;
}

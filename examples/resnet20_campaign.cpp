// Scenario: the paper's headline workflow on its actual topology — a
// data-aware statistical fault-injection campaign on ResNet-20.
//
// At the paper's settings (e = 1%, 10k test images) this is a multi-hour
// run on one CPU core, so the defaults here relax the margin and shrink the
// evaluation set; both are adjustable:
//
//   ./build/examples/resnet20_campaign [error_margin_% = 10] [images = 2]
//
// Pass `1 16` to approach paper conditions (be prepared to wait).

#include <cstdlib>
#include <iostream>

#include "core/data_aware.hpp"
#include "core/engine.hpp"
#include "core/estimator.hpp"
#include "data/synthetic.hpp"
#include "models/resnet_cifar.hpp"
#include "nn/init.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
    using namespace statfi;
    const double margin_pct = argc > 1 ? std::atof(argv[1]) : 10.0;
    const std::int64_t images = argc > 2 ? std::atoll(argv[2]) : 2;
    if (margin_pct <= 0 || images <= 0) {
        std::cerr << "usage: resnet20_campaign [error_margin_%] [images]\n";
        return 1;
    }

    stats::Rng rng(1453);
    auto net = models::make_resnet20();
    nn::init_network_kaiming(net, rng);
    // Note: with no CIFAR-10 available offline, the network carries
    // Kaiming-initialized weights (same distribution shape as trained ones;
    // DESIGN.md §2) and faults are judged against the golden predictions.
    data::SyntheticSpec data_spec;
    const auto eval = data::make_synthetic(data_spec, images, "test");

    auto universe = fault::FaultUniverse::stuck_at(net);
    std::cout << "ResNet-20 stuck-at universe: N = "
              << report::fmt_u64(universe.total()) << " faults\n";

    core::ExecutorConfig exec_config;
    exec_config.policy = core::ClassificationPolicy::GoldenMismatch;
    core::CampaignEngine engine(net, eval, exec_config);
    core::CampaignSpec campaign;
    campaign.approach = core::Approach::DataAware;
    campaign.sample.error_margin = margin_pct / 100.0;
    const auto plan = engine.plan(universe, campaign);
    std::cout << "data-aware plan at e = " << margin_pct << "%: "
              << report::fmt_u64(plan.total_sample_size()) << " injections ("
              << report::fmt_percent(
                     static_cast<double>(plan.total_sample_size()) /
                         static_cast<double>(universe.total()),
                     3)
              << "% of exhaustive), " << images << " image(s) per fault\n";

    std::cout << "running...\n";
    const auto result = engine.run(universe, plan, rng.fork("resnet20"));

    const auto network = core::estimate_network(universe, result);
    std::cout << "\nnetwork critical-fault rate: "
              << report::fmt_percent(network.rate, 2) << "% +- "
              << report::fmt_percent(network.margin, 2) << "%  ("
              << report::fmt_u64(result.total_injected()) << " FIs, "
              << report::fmt_double(result.wall_seconds, 1) << "s)\n\n";

    report::Table table({"Layer", "Name", "Critical [%]", "Margin [%]", "FIs"});
    for (const auto& le : core::estimate_layers(universe, result))
        table.add_row({std::to_string(le.layer),
                       universe.layer(le.layer).name,
                       report::fmt_percent(le.estimate.rate, 2),
                       report::fmt_percent(le.estimate.margin, 2),
                       report::fmt_u64(le.estimate.injected)});
    table.print(std::cout);

    std::cout << "\n(paper conditions: e = 1%, 99% confidence, 10k images, "
                 "207,837 injections -> 1.21% of exhaustive)\n";
    return 0;
}

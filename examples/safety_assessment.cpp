// Scenario: ISO 26262-style safety assessment of a CNN's weight memory.
//
// A safety engineer must show that soft errors in the network's weight
// storage keep the item under its PMHF budget. The flow:
//  1. run a data-aware statistical FI campaign (cheap, statistically valid);
//  2. translate the critical-fault rate into a FIT contribution using the
//     storage technology's raw soft-error rate;
//  3. compare against the ASIL budgets, per layer — identifying which
//     layers would need protection (ECC, TMR, duplication) first.
//
// Build & run:  ./build/examples/safety_assessment [fit_per_mbit = 700]

#include <cstdlib>
#include <iostream>

#include "core/data_aware.hpp"
#include "core/estimator.hpp"
#include "core/fit.hpp"
#include "core/testbed.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
    using namespace statfi;
    core::SoftErrorSpec ser;
    if (argc > 1) ser.fit_per_mbit = std::atof(argv[1]);
    if (ser.fit_per_mbit <= 0) {
        std::cerr << "usage: safety_assessment [fit_per_mbit]\n";
        return 1;
    }

    core::Testbed testbed;
    const auto& universe = testbed.universe();
    std::cout << "device under assessment: MicroNet, "
              << report::fmt_double(core::weight_storage_mbit(universe), 3)
              << " Mbit of weight storage, raw SER "
              << ser.fit_per_mbit << " FIT/Mbit\n\n";

    // 1. Data-aware campaign (live injections, not replay).
    const auto criticality = core::analyze_network(testbed.network());
    const auto plan = core::plan_data_aware(universe, stats::SampleSpec{},
                                            criticality);
    std::cout << "running data-aware campaign ("
              << report::fmt_u64(plan.total_sample_size()) << " of "
              << report::fmt_u64(universe.total()) << " faults)...\n";
    auto& engine = testbed.engine();
    const auto result =
        engine.run(universe, plan, testbed.rng("safety-assessment"));

    // 2. FIT translation.
    const auto network = core::estimate_network(universe, result);
    const auto fit = core::device_fit(universe, network, ser);
    std::cout << "\ncritical-fault rate: "
              << report::fmt_percent(network.rate, 3) << "% +- "
              << report::fmt_percent(network.margin, 3) << "%\n"
              << "weight-memory FIT contribution: "
              << report::fmt_double(fit.fit, 3) << " +- "
              << report::fmt_double(fit.margin, 3) << " FIT\n"
              << "strictest PMHF budget met: "
              << core::to_string(fit.strictest_met()) << "\n\n";

    // 3. Per-layer breakdown — where to spend protection.
    const auto layers = core::estimate_layers(universe, result);
    const auto layer_fits = core::layer_fit(universe, layers, ser);
    report::Table table({"Layer", "Storage [Mbit]", "Critical [%]",
                         "FIT", "Share [%]"});
    for (std::size_t l = 0; l < layers.size(); ++l) {
        table.add_row(
            {universe.layer(static_cast<int>(l)).name,
             report::fmt_double(layer_fits[l].storage_mbit, 4),
             report::fmt_percent(layers[l].estimate.rate, 3),
             report::fmt_double(layer_fits[l].fit, 4),
             report::fmt_percent(fit.fit > 0 ? layer_fits[l].fit / fit.fit : 0,
                                 1)});
    }
    table.print(std::cout);

    std::cout << "\nASIL budgets (ISO 26262-5): D < 10 FIT, B/C < 100 FIT.\n"
              << "Protecting the highest-share layers first (ECC on their "
                 "weight memory) buys the largest FIT reduction per "
                 "protected bit.\n";
    return 0;
}

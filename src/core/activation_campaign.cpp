#include "core/activation_campaign.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "stats/sampling.hpp"

namespace statfi::core {

ActivationCampaignExecutor::ActivationCampaignExecutor(
    nn::Network& net, const data::Dataset& eval, ExecutorConfig config)
    : net_(&net), config_(config), golden_(build_golden_cache(net, eval)) {}

FaultOutcome ActivationCampaignExecutor::evaluate(
    const fault::ActivationFault& fault, std::int64_t image_index) {
    const auto i = static_cast<std::size_t>(image_index);
    if (i >= golden_.images.size())
        throw std::out_of_range("ActivationCampaignExecutor: image index");
    auto& acts = golden_.acts[i];
    Tensor& act = acts[static_cast<std::size_t>(fault.node)];
    if (fault.element >= act.numel())
        throw std::out_of_range("ActivationCampaignExecutor: element index");

    const float saved = act[fault.element];
    act[fault.element] =
        fault::apply_bit_flip(saved, fault.bit, fault::DataType::Float32);
    // Only nodes AFTER the corrupted one re-run; when the corrupted node is
    // the last one, forward_from returns the (corrupted) golden output.
    const Tensor& logits =
        net_->forward_from(fault.node + 1, golden_.images[i], acts, scratch_);
    int prediction = nn::argmax_row(logits, 0);
    if (!std::isfinite(logits[static_cast<std::size_t>(prediction)]))
        prediction = -1;
    act[fault.element] = saved;

    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction:
            return (golden_.preds[i] == golden_.labels[i] && prediction != golden_.labels[i])
                       ? FaultOutcome::Critical
                       : FaultOutcome::NonCritical;
        case ClassificationPolicy::GoldenMismatch:
        case ClassificationPolicy::AccuracyDrop:  // single-inference fault:
                                                  // drop == one flip
            return prediction != golden_.preds[i] ? FaultOutcome::Critical
                                                  : FaultOutcome::NonCritical;
    }
    return FaultOutcome::NonCritical;
}

CampaignPlan ActivationCampaignExecutor::plan_node_wise(
    const fault::ActivationUniverse& universe,
    const stats::SampleSpec& spec) const {
    CampaignPlan plan;
    plan.approach = Approach::LayerWise;  // per-node == per-layer granularity
    plan.spec = spec;
    for (int node = 0; node < universe.node_count(); ++node) {
        SubpopPlan sp;
        sp.layer = node;
        sp.bit = -1;
        sp.population = universe.node_population(node);
        sp.p = spec.p;
        sp.sample_size = stats::sample_size(sp.population, spec);
        plan.subpops.push_back(sp);
    }
    return plan;
}

CampaignResult ActivationCampaignExecutor::run(
    const fault::ActivationUniverse& universe, const CampaignPlan& plan,
    stats::Rng rng) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    std::uint64_t subpop_index = 0;
    std::uint64_t fault_counter = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        for (const auto local : indices) {
            const auto fault =
                universe.decode(universe.node_offset(sp.layer) + local);
            const auto image = static_cast<std::int64_t>(
                fault_counter++ % golden_.images.size());
            const FaultOutcome outcome = evaluate(fault, image);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
        }
        result.subpops.push_back(std::move(tally));
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

}  // namespace statfi::core

#include "core/activation_campaign.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "stats/sampling.hpp"

namespace statfi::core {

ActivationCampaignExecutor::ActivationCampaignExecutor(
    nn::Network& net, const data::Dataset& eval, ExecutorConfig config)
    : net_(&net), config_(config) {
    const std::int64_t count = eval.size();
    if (count == 0)
        throw std::invalid_argument(
            "ActivationCampaignExecutor: empty evaluation set");
    labels_ = eval.labels;
    golden_acts_.resize(static_cast<std::size_t>(count));
    golden_preds_.resize(static_cast<std::size_t>(count));
    std::uint64_t correct = 0;
    for (std::int64_t i = 0; i < count; ++i) {
        images_.push_back(eval.image(i));
        auto& acts = golden_acts_[static_cast<std::size_t>(i)];
        net.forward_all(images_.back(), acts);
        golden_preds_[static_cast<std::size_t>(i)] =
            nn::argmax_row(acts.back(), 0);
        correct += golden_preds_[static_cast<std::size_t>(i)] ==
                   labels_[static_cast<std::size_t>(i)];
    }
    golden_accuracy_ =
        static_cast<double>(correct) / static_cast<double>(count);
}

FaultOutcome ActivationCampaignExecutor::evaluate(
    const fault::ActivationFault& fault, std::int64_t image_index) {
    const auto i = static_cast<std::size_t>(image_index);
    if (i >= images_.size())
        throw std::out_of_range("ActivationCampaignExecutor: image index");
    auto& acts = golden_acts_[i];
    Tensor& act = acts[static_cast<std::size_t>(fault.node)];
    if (fault.element >= act.numel())
        throw std::out_of_range("ActivationCampaignExecutor: element index");

    const float saved = act[fault.element];
    act[fault.element] =
        fault::apply_bit_flip(saved, fault.bit, fault::DataType::Float32);
    // Only nodes AFTER the corrupted one re-run; when the corrupted node is
    // the last one, forward_from returns the (corrupted) golden output.
    const Tensor& logits =
        net_->forward_from(fault.node + 1, images_[i], acts, scratch_);
    int prediction = nn::argmax_row(logits, 0);
    if (!std::isfinite(logits[static_cast<std::size_t>(prediction)]))
        prediction = -1;
    act[fault.element] = saved;

    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction:
            return (golden_preds_[i] == labels_[i] && prediction != labels_[i])
                       ? FaultOutcome::Critical
                       : FaultOutcome::NonCritical;
        case ClassificationPolicy::GoldenMismatch:
        case ClassificationPolicy::AccuracyDrop:  // single-inference fault:
                                                  // drop == one flip
            return prediction != golden_preds_[i] ? FaultOutcome::Critical
                                                  : FaultOutcome::NonCritical;
    }
    return FaultOutcome::NonCritical;
}

CampaignPlan ActivationCampaignExecutor::plan_node_wise(
    const fault::ActivationUniverse& universe,
    const stats::SampleSpec& spec) const {
    CampaignPlan plan;
    plan.approach = Approach::LayerWise;  // per-node == per-layer granularity
    plan.spec = spec;
    for (int node = 0; node < universe.node_count(); ++node) {
        SubpopPlan sp;
        sp.layer = node;
        sp.bit = -1;
        sp.population = universe.node_population(node);
        sp.p = spec.p;
        sp.sample_size = stats::sample_size(sp.population, spec);
        plan.subpops.push_back(sp);
    }
    return plan;
}

CampaignResult ActivationCampaignExecutor::run(
    const fault::ActivationUniverse& universe, const CampaignPlan& plan,
    stats::Rng rng) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    std::uint64_t subpop_index = 0;
    std::uint64_t fault_counter = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        for (const auto local : indices) {
            const auto fault =
                universe.decode(universe.node_offset(sp.layer) + local);
            const auto image = static_cast<std::int64_t>(
                fault_counter++ % images_.size());
            const FaultOutcome outcome = evaluate(fault, image);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
        }
        result.subpops.push_back(std::move(tally));
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

}  // namespace statfi::core

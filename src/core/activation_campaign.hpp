#pragma once
// Campaign execution for transient activation faults.
//
// A transient fault lives in ONE inference: the executor picks the target
// image, corrupts one element of one node's golden activation, re-runs only
// the downstream sub-graph, and compares the prediction under the
// configured policy. Images are assigned to sampled faults round-robin so a
// campaign integrates over the evaluation set without a per-fault RNG.

#include "core/classification_core.hpp"
#include "fault/activation.hpp"

namespace statfi::core {

class ActivationCampaignExecutor {
public:
    ActivationCampaignExecutor(nn::Network& net, const data::Dataset& eval,
                               ExecutorConfig config = {});

    [[nodiscard]] double golden_accuracy() const noexcept {
        return golden_.accuracy;
    }

    /// Classify one activation fault during image @p image_index's inference.
    FaultOutcome evaluate(const fault::ActivationFault& fault,
                          std::int64_t image_index);

    /// Per-node subpopulation plan (the activation analogue of layer-wise):
    /// Eq. 1 per node at the spec's p.
    [[nodiscard]] CampaignPlan plan_node_wise(
        const fault::ActivationUniverse& universe,
        const stats::SampleSpec& spec) const;

    /// Run a node-wise plan; subpopulation s of the result maps to graph
    /// node plan.subpops[s].layer (node ids reuse the layer field).
    CampaignResult run(const fault::ActivationUniverse& universe,
                       const CampaignPlan& plan, stats::Rng rng);

private:
    nn::Network* net_;
    ExecutorConfig config_;
    GoldenCache golden_;  ///< shared golden pass (see build_golden_cache)
    std::vector<Tensor> scratch_;
};

}  // namespace statfi::core

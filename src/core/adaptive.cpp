#include "core/adaptive.hpp"

#include <algorithm>
#include <functional>

#include "stats/sampling.hpp"

namespace statfi::core {

namespace {

/// Shared two-phase logic; @p classify maps a subpopulation-local index to
/// an outcome (live injection or ground-truth lookup).
AdaptiveResult run_two_phase(
    const fault::FaultUniverse& universe, const AdaptiveConfig& config,
    stats::Rng rng,
    const std::function<FaultOutcome(int layer, int bit, std::uint64_t local)>&
        classify) {
    AdaptiveResult result;
    result.combined.approach = Approach::DataAware;  // closest family
    result.combined.spec = config.spec;

    std::uint64_t subpop_index = 0;
    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int bit = 0; bit < universe.bits(); ++bit) {
            const std::uint64_t population = universe.bit_population(l);
            auto pilot_rng = rng.fork(subpop_index);
            auto refine_rng = rng.fork(subpop_index + 0x100000);
            ++subpop_index;

            // Phase 1: pilot.
            const std::uint64_t n_pilot =
                std::min(config.pilot_size, population);
            auto indices =
                stats::sample_indices(population, n_pilot, pilot_rng);
            std::uint64_t pilot_critical = 0;
            std::vector<std::pair<std::uint64_t, FaultOutcome>> evaluated;
            evaluated.reserve(indices.size());
            for (const auto local : indices) {
                const FaultOutcome outcome = classify(l, bit, local);
                pilot_critical += outcome == FaultOutcome::Critical;
                evaluated.emplace_back(local, outcome);
            }
            result.pilot_injected += n_pilot;

            // Phase 2: re-plan Eq. 1 at the measured rate.
            const double p_hat =
                n_pilot ? static_cast<double>(pilot_critical) /
                              static_cast<double>(n_pilot)
                        : config.p_ceiling;
            stats::SampleSpec spec = config.spec;
            spec.p = std::clamp(p_hat, config.p_floor, config.p_ceiling);
            const std::uint64_t n_final = stats::sample_size(population, spec);

            if (n_final > n_pilot) {
                auto extra =
                    stats::sample_indices(population, n_final, refine_rng);
                for (const auto local : extra) {
                    // Deduplicate against the pilot (indices are sorted).
                    const auto it = std::lower_bound(indices.begin(),
                                                     indices.end(), local);
                    if (it != indices.end() && *it == local) continue;
                    evaluated.emplace_back(local, classify(l, bit, local));
                    ++result.refinement_injected;
                }
            }

            SubpopResult tally;
            tally.plan.layer = l;
            tally.plan.bit = bit;
            tally.plan.population = population;
            tally.plan.p = spec.p;
            tally.plan.sample_size = evaluated.size();
            for (const auto& [local, outcome] : evaluated) {
                ++tally.injected;
                if (outcome == FaultOutcome::Critical) ++tally.critical;
                if (outcome == FaultOutcome::Masked) ++tally.masked;
            }
            result.combined.subpops.push_back(std::move(tally));
        }
    }
    return result;
}

}  // namespace

AdaptiveResult run_adaptive(ClassificationCore& core,
                            const fault::FaultUniverse& universe,
                            const AdaptiveConfig& config, stats::Rng rng) {
    return run_two_phase(
        universe, config, rng,
        [&](int layer, int bit, std::uint64_t local) {
            return core.evaluate(
                universe.decode_in_subpop(layer, bit, local));
        });
}

AdaptiveResult replay_adaptive(const fault::FaultUniverse& universe,
                               const ExhaustiveOutcomes& truth,
                               const AdaptiveConfig& config, stats::Rng rng) {
    if (truth.size() != universe.total())
        throw std::invalid_argument("replay_adaptive: outcome table mismatch");
    return run_two_phase(
        universe, config, rng,
        [&](int layer, int bit, std::uint64_t local) {
            return truth.at(universe.subpop_offset(layer, bit) + local);
        });
}

}  // namespace statfi::core

#pragma once
// Adaptive (two-phase) statistical fault injection — an extension beyond
// the paper.
//
// The data-aware method guesses each subpopulation's success probability
// p(i) from the weight distribution BEFORE any injection. The adaptive
// campaign instead *measures* it: a small pilot sample per (bit, layer)
// subpopulation produces p_hat, Eq. 1 is re-evaluated at p_hat to size the
// final sample, and only the remainder is injected. This realizes the
// iterative variant of Neyman allocation that bench_ablation_alloc shows is
// otherwise unrealizable (the variances are not known up front), at the
// cost of one extra planning round trip.

#include "core/classification_core.hpp"

namespace statfi::core {

struct AdaptiveConfig {
    stats::SampleSpec spec;          ///< target margin/confidence of phase 2
    std::uint64_t pilot_size = 50;   ///< faults per subpopulation in phase 1
    double p_floor = 1e-3;           ///< lower clamp on the measured p_hat
    double p_ceiling = 0.5;          ///< upper clamp (0.5 = safest)
};

struct AdaptiveResult {
    CampaignResult combined;          ///< union of pilot + refinement samples
    std::uint64_t pilot_injected = 0;
    std::uint64_t refinement_injected = 0;

    [[nodiscard]] std::uint64_t total_injected() const {
        return pilot_injected + refinement_injected;
    }
};

/// Runs the two-phase campaign over every (bit, layer) subpopulation of
/// @p universe. Phase-2 samples are drawn independently and merged with the
/// pilot (duplicates evaluated once); tallies count distinct faults.
AdaptiveResult run_adaptive(ClassificationCore& core,
                            const fault::FaultUniverse& universe,
                            const AdaptiveConfig& config, stats::Rng rng);

/// Replay variant against exhaustive ground truth (used by tests/benches).
AdaptiveResult replay_adaptive(const fault::FaultUniverse& universe,
                               const ExhaustiveOutcomes& truth,
                               const AdaptiveConfig& config, stats::Rng rng);

}  // namespace statfi::core

#include "core/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"

namespace statfi::core {

namespace {

constexpr char kJournalMagic[4] = {'S', 'F', 'I', 'J'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kRecordSize = 8 + 1 + 4;  // index + outcome + crc

void put_u32(std::string& buf, std::uint32_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_u64(std::string& buf, std::uint64_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Header bytes after the magic: version + fingerprint + crc over the
/// preceding fields. Byte order is the writing machine's — journals and
/// caches are machine-local scratch, not interchange files.
std::string encode_header(const CampaignFingerprint& fp) {
    std::string body;
    put_u32(body, kJournalVersion);
    put_u64(body, fp.universe_size);
    body.push_back(static_cast<char>(fp.dtype));
    body.push_back(static_cast<char>(fp.policy));
    std::uint64_t threshold_bits = 0;
    static_assert(sizeof(threshold_bits) == sizeof(fp.accuracy_drop_threshold));
    std::memcpy(&threshold_bits, &fp.accuracy_drop_threshold,
                sizeof(threshold_bits));
    put_u64(body, threshold_bits);
    put_u32(body, fp.eval_hash);
    put_u32(body, fp.weights_hash);
    body.push_back(static_cast<char>(fp.fault_model));
    body.push_back(static_cast<char>(fp.mbu_k));
    put_u32(body, fp.mitigation_hash);
    put_u32(body, static_cast<std::uint32_t>(fp.model_id.size()));
    body.append(fp.model_id);

    std::string header(kJournalMagic, sizeof(kJournalMagic));
    header += body;
    put_u32(header, io::crc32(body.data(), body.size()));
    return header;
}

std::string encode_record(std::uint64_t fault_index, std::uint8_t outcome) {
    std::string rec;
    put_u64(rec, fault_index);
    rec.push_back(static_cast<char>(outcome));
    put_u32(rec, io::crc32(rec.data(), rec.size()));
    return rec;
}

std::string hex(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

}  // namespace

std::string CampaignFingerprint::describe() const {
    std::ostringstream os;
    os << "model=" << model_id << " N=" << universe_size
       << " dtype=" << static_cast<int>(dtype)
       << " policy=" << static_cast<int>(policy)
       << " threshold=" << accuracy_drop_threshold << " eval=" << hex(eval_hash)
       << " weights=" << hex(weights_hash)
       << " fault_model=" << static_cast<int>(fault_model)
       << " k=" << static_cast<int>(mbu_k)
       << " mitigation=" << hex(mitigation_hash);
    return os.str();
}

CampaignJournal::Recovery CampaignJournal::recover(
    const std::string& path, const CampaignFingerprint& expected) {
    Recovery result;
    std::string bytes;
    if (!io::read_file(path, bytes)) {
        result.note = "no journal at " + path;
        return result;
    }
    if (bytes.empty()) {
        // A crash between open(O_CREAT) and the header write leaves a
        // zero-byte file; distinct from a truncated header so the operator
        // knows no work was lost.
        result.note = "empty journal file (0 bytes) in " + path;
        return result;
    }
    const std::string header = encode_header(expected);
    if (bytes.size() < header.size()) {
        result.note = "journal header truncated (" +
                      std::to_string(bytes.size()) + " bytes, need " +
                      std::to_string(header.size()) + ") in " + path;
        return result;
    }
    if (bytes.compare(0, sizeof(kJournalMagic), kJournalMagic,
                      sizeof(kJournalMagic)) != 0) {
        result.note = "bad journal magic in " + path;
        return result;
    }
    // Comparing the raw header bytes checks the version, every fingerprint
    // field, and the header CRC in one pass; any difference means the file
    // belongs to a different campaign (or a corrupted header).
    if (bytes.compare(0, header.size(), header) != 0) {
        result.note = "journal fingerprint mismatch in " + path +
                      " (expected " + expected.describe() +
                      "); discarding and starting fresh";
        return result;
    }

    std::size_t offset = header.size();
    while (bytes.size() - offset >= kRecordSize) {
        std::uint32_t stored_crc = 0;
        std::memcpy(&stored_crc, bytes.data() + offset + 9, sizeof(stored_crc));
        if (io::crc32(bytes.data() + offset, 9) != stored_crc) break;
        JournalRecord rec;
        std::memcpy(&rec.fault_index, bytes.data() + offset, sizeof(rec.fault_index));
        rec.outcome = static_cast<std::uint8_t>(bytes[offset + 8]);
        result.records.push_back(rec);
        offset += kRecordSize;
    }
    result.valid_bytes = offset;
    if (offset != bytes.size()) {
        result.tail_dropped = true;
        result.note = "dropped " + std::to_string(bytes.size() - offset) +
                      " torn/corrupt tail byte(s) after " +
                      std::to_string(result.records.size()) +
                      " valid record(s) in " + path;
    }
    return result;
}

CampaignJournal CampaignJournal::open(const std::string& path,
                                      const CampaignFingerprint& fingerprint,
                                      std::uint64_t keep_bytes) {
    CampaignJournal journal;
    journal.path_ = path;
    if (keep_bytes > 0) {
        std::error_code ec;
        std::filesystem::resize_file(path, keep_bytes, ec);
        if (ec)
            throw std::runtime_error("CampaignJournal::open: cannot truncate " +
                                     path + " to valid prefix: " + ec.message());
        journal.out_.open(path, std::ios::binary | std::ios::app);
        if (!journal.out_)
            throw std::runtime_error("CampaignJournal::open: cannot append to " +
                                     path);
    } else {
        journal.out_.open(path, std::ios::binary | std::ios::trunc);
        if (!journal.out_)
            throw std::runtime_error("CampaignJournal::open: cannot create " +
                                     path);
        const std::string header = encode_header(fingerprint);
        journal.out_.write(header.data(),
                           static_cast<std::streamsize>(header.size()));
        journal.out_.flush();
        if (!journal.out_)
            throw std::runtime_error(
                "CampaignJournal::open: cannot write header to " + path);
    }
    return journal;
}

void CampaignJournal::append(std::uint64_t fault_index, std::uint8_t outcome) {
    const std::string rec = encode_record(fault_index, outcome);
    out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    ++appended_;
}

void CampaignJournal::flush() {
    out_.flush();
    if (!out_)
        throw std::runtime_error("CampaignJournal::flush: write failed for " +
                                 path_);
}

}  // namespace statfi::core

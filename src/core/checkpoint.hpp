#pragma once
// Durable campaign state: the journal that lets a multi-hour census survive
// a crash, a kill, or a Ctrl-C.
//
// Design (DESIGN.md §5 "Durability"):
//  * The journal is append-only. Each record is (fault_index u64, outcome
//    u8, crc32 u32) — 13 bytes — so a record torn by a crash fails its CRC
//    and is dropped at recovery, never parsed as data. Everything before
//    the first bad record is trusted; everything after is discarded.
//  * The header carries a CampaignFingerprint: universe size, data type,
//    classification policy, and hashes of the evaluation set and golden
//    weights. A journal written by a *different* campaign (retrained model,
//    different eval set, different policy) fingerprints differently and is
//    discarded with a warning instead of resumed into wrong results.
//  * Because each fault's outcome is a deterministic function of (network,
//    eval set, fault), replaying journal records and re-classifying only
//    the remainder is bit-identical to an uninterrupted run — for any
//    interruption point and any worker count (asserted in
//    tests/core/durability_test.cpp).

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace statfi::core {

/// Cooperative cancellation: set from a signal handler or another thread,
/// polled by the executors between fault classifications. Lock-free and
/// async-signal-safe to set.
class CancellationToken {
public:
    void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> stop_{false};
};

/// Identity of a campaign. Journals and resumable caches are only reused
/// when every field matches; any mismatch means the stored outcomes answer
/// a different question.
struct CampaignFingerprint {
    std::string model_id;                  ///< topology name, free-form
    std::uint64_t universe_size = 0;       ///< N (faults in the universe)
    std::uint8_t dtype = 0;                ///< fault::DataType
    std::uint8_t policy = 0;               ///< ClassificationPolicy
    double accuracy_drop_threshold = 0.0;  ///< AccuracyDrop parameter
    std::uint32_t eval_hash = 0;           ///< CRC32 of eval images + labels
    std::uint32_t weights_hash = 0;        ///< CRC32 of golden weights
    std::uint8_t fault_model = 0;          ///< fault::FaultModelKind
    std::uint8_t mbu_k = 1;                ///< multi-bit upset k (else 1)
    std::uint32_t mitigation_hash = 0;     ///< MitigationConfig descriptor CRC

    [[nodiscard]] bool operator==(const CampaignFingerprint&) const = default;
    /// "model=micronet N=134528 dtype=0 policy=0 eval=0x.. weights=0x.."
    [[nodiscard]] std::string describe() const;
};

struct JournalRecord {
    std::uint64_t fault_index = 0;
    std::uint8_t outcome = 0;
};

/// Append-only, CRC-protected record of classified faults.
class CampaignJournal {
public:
    struct Recovery {
        std::vector<JournalRecord> records;  ///< valid records, append order
        std::uint64_t valid_bytes = 0;  ///< parse-clean prefix of the file
        bool tail_dropped = false;      ///< a torn/corrupt tail was discarded
        std::string note;  ///< names the failed invariant; empty = clean file
    };

    /// Scan an existing journal. A missing file, short/corrupt header, or a
    /// fingerprint belonging to a different campaign yields an empty
    /// recovery whose `note` names which invariant failed — the caller
    /// starts fresh. A torn or bit-flipped tail yields the valid prefix
    /// with tail_dropped set; it is a warning, not an error.
    static Recovery recover(const std::string& path,
                            const CampaignFingerprint& expected);

    /// Open @p path for appending. @p keep_bytes (from Recovery::valid_bytes)
    /// nonzero: the file is truncated to that prefix — dropping any torn
    /// tail — and appended to. Zero: the file is recreated with a fresh
    /// header. Throws std::runtime_error when the file cannot be opened.
    static CampaignJournal open(const std::string& path,
                                const CampaignFingerprint& fingerprint,
                                std::uint64_t keep_bytes = 0);

    CampaignJournal(CampaignJournal&&) = default;
    CampaignJournal& operator=(CampaignJournal&&) = default;

    /// Buffered append; call flush() to force records to disk.
    void append(std::uint64_t fault_index, std::uint8_t outcome);
    void flush();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }

private:
    CampaignJournal() = default;

    std::string path_;
    std::ofstream out_;
    std::uint64_t appended_ = 0;
};

}  // namespace statfi::core

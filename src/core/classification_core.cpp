#include "core/classification_core.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "io/checksum.hpp"
#include "kernels/registry.hpp"

namespace statfi::core {

GoldenCache build_golden_cache(const nn::Network& net,
                               const data::Dataset& eval) {
    const std::int64_t count = eval.size();
    if (count == 0)
        throw std::invalid_argument(
            "ClassificationCore: empty evaluation set");
    GoldenCache golden;
    golden.labels = eval.labels;

    // One batched pass over the whole eval tensor, then split each node's
    // (N, ...) output back into per-image rows. Every layer computes batch
    // rows independently, so the rows are bit-identical to N single-image
    // passes — while the batched pass amortizes per-call overhead and
    // im2col/workspace setup N-fold.
    std::vector<Tensor> batched;
    net.forward_all(eval.images, batched);

    golden.images.reserve(static_cast<std::size_t>(count));
    golden.acts.resize(static_cast<std::size_t>(count));
    golden.preds.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::size_t>(i);
        golden.images.push_back(eval.image(i));
        auto& acts = golden.acts[s];
        acts.reserve(batched.size());
        for (const Tensor& node_out : batched)
            acts.push_back(node_out.slice_row(i));
        golden.preds[s] = nn::argmax_row(acts.back(), 0);
        if (golden.preds[s] == golden.labels[s]) ++golden.correct;
    }
    golden.accuracy =
        static_cast<double>(golden.correct) / static_cast<double>(count);

    golden.correct_order.resize(static_cast<std::size_t>(count));
    std::iota(golden.correct_order.begin(), golden.correct_order.end(), 0);
    std::stable_partition(golden.correct_order.begin(),
                          golden.correct_order.end(), [&](std::size_t i) {
                              return golden.preds[i] == golden.labels[i];
                          });
    return golden;
}

namespace {
/// Resolve the mitigation config against the graph and deploy it: clip
/// rules install a node hook clamping protected outputs, so every forward
/// pass from here on (the golden pass included) runs the hardened network.
fault::ResolvedMitigation deploy_mitigation(
    const fault::MitigationConfig& config, nn::Network& net) {
    auto resolved = fault::resolve_mitigation(config, net);
    if (resolved.any_clip) {
        net.set_node_hook(
            [clips = resolved.node_clips](int id, Tensor& out) {
                const auto& range = clips[static_cast<std::size_t>(id)];
                if (!range) return;
                // NaN passes through (clamp circuits bound magnitude, they
                // do not repair invalid encodings) — a contract every
                // kernel backend honors bit-for-bit.
                kernels::active().clamp(out.data(), out.numel(),
                                        range->first, range->second);
            });
    }
    return resolved;
}
}  // namespace

ClassificationCore::ClassificationCore(nn::Network& net,
                                       const data::Dataset& eval,
                                       ExecutorConfig config)
    : net_(&net), config_(std::move(config)),
      mitigation_(deploy_mitigation(config_.mitigation, net)),
      injector_(net, config_.dtype, config_.layer_quant),
      golden_(build_golden_cache(net, eval)) {
    // Warm the scratch arena (and each conv's im2col workspace) at
    // single-image shapes so the hot loop never allocates. Not an injected
    // inference, so it stays out of inference_count().
    net_->forward_from(0, golden_.images[0], golden_.acts[0], scratch_);

    // Precompute, for every potential dirty node d, which golden entries
    // the ensemble suffix forward_from(d + 1) dereferences: producers
    // p < d read by some node > d (the frontier d itself is built fresh
    // each step), plus whether any suffix node reads the network input.
    const int n = net_->node_count();
    ensemble_golden_.resize(static_cast<std::size_t>(n));
    row_cache_.assign(static_cast<std::size_t>(n),
                      std::vector<Tensor>(golden_.images.size()));
    suffix_deps_.resize(static_cast<std::size_t>(n));
    suffix_needs_input_.assign(static_cast<std::size_t>(n), 0);
    std::vector<char> used;
    for (int d = 0; d < n; ++d) {
        used.assign(static_cast<std::size_t>(n), 0);
        bool needs_input = false;
        for (int q = d + 1; q < n; ++q)
            for (int in : net_->node_inputs(q)) {
                if (in == nn::Network::kInputId)
                    needs_input = true;
                else if (in < d)
                    used[static_cast<std::size_t>(in)] = 1;
            }
        for (int p = 0; p < d; ++p)
            if (used[static_cast<std::size_t>(p)])
                suffix_deps_[static_cast<std::size_t>(d)].push_back(p);
        suffix_needs_input_[static_cast<std::size_t>(d)] = needs_input ? 1 : 0;
    }
}

namespace {
/// Top-1 prediction; -1 when the winning logit is not finite (numerically
/// exploded network counts as a misprediction).
int predict(const Tensor& logits) {
    const int best = nn::argmax_row(logits, 0);
    const float v = logits[static_cast<std::size_t>(best)];
    if (!std::isfinite(v)) return -1;
    return best;
}

/// predict() for one lane of a lane-stacked (F, classes) logits tensor —
/// same argmax and finiteness rule, so per-lane decisions match the
/// per-fault path exactly.
int predict_row(const Tensor& logits, std::int64_t row) {
    const int best = nn::argmax_row(logits, row);
    const float v = logits[static_cast<std::size_t>(
        row * logits.shape()[1] + best)];
    if (!std::isfinite(v)) return -1;
    return best;
}

/// @p src's shape with the leading (batch) dimension replaced by @p lanes.
Shape lane_shape(const Shape& src, std::size_t lanes) {
    std::vector<std::int64_t> dims = src.dims();
    dims.at(0) = static_cast<std::int64_t>(lanes);
    return Shape(std::move(dims));
}

/// Replicate a batch-1 tensor into @p lanes batch rows of @p dst.
void stack_lanes(const Tensor& src, std::size_t lanes, Tensor& dst) {
    nn::ensure_shape(dst, lane_shape(src.shape(), lanes));
    const std::size_t sz = src.numel();
    for (std::size_t l = 0; l < lanes; ++l)
        std::memcpy(dst.data() + l * sz, src.data(), sz * sizeof(float));
}
}  // namespace

FaultOutcome ClassificationCore::classify_active_fault(int first_dirty_node) {
    const auto count = golden_.images.size();
    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction: {
            for (std::size_t k = 0; k < count; ++k) {
                const std::size_t i = golden_.correct_order[k];
                if (golden_.preds[i] != golden_.labels[i])
                    break;  // incorrect tail
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_.labels[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::GoldenMismatch: {
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_.preds[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::AccuracyDrop: {
            const double threshold =
                config_.accuracy_drop_threshold * static_cast<double>(count);
            std::uint64_t faulty_correct = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) == golden_.labels[i]) ++faulty_correct;
                // Even if every remaining image is correct, is the drop
                // already unavoidable?
                const std::uint64_t remaining = count - 1 - i;
                const double best_case =
                    static_cast<double>(golden_.correct) -
                    static_cast<double>(faulty_correct + remaining);
                if (best_case > threshold) return FaultOutcome::Critical;
            }
            const double drop = static_cast<double>(golden_.correct) -
                                static_cast<double>(faulty_correct);
            return drop > threshold ? FaultOutcome::Critical
                                    : FaultOutcome::NonCritical;
        }
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome ClassificationCore::evaluate_activation(const fault::Fault& fault) {
    // A transient fault lives in ONE inference: pick the target image,
    // corrupt one element of one node's golden activation, re-run only the
    // downstream sub-graph, restore. fault.layer is the graph-node id and
    // fault.weight_index the element within its batch-1 output.
    const std::size_t images = golden_.images.size();
    const auto i = static_cast<std::size_t>(
        (fault.weight_index + static_cast<std::uint64_t>(fault.bit)) % images);
    auto& acts = golden_.acts[i];
    Tensor& act = acts.at(static_cast<std::size_t>(fault.layer));
    if (fault.weight_index >= static_cast<std::uint64_t>(act.numel()))
        throw std::out_of_range(
            "ClassificationCore: activation element index out of range");
    const auto element = static_cast<std::size_t>(fault.weight_index);
    const float saved = act[element];
    act[element] = fault::apply_bit_flip(saved, fault.bit, config_.dtype);
    // Only nodes AFTER the corrupted one re-run; when the corrupted node is
    // the last one, forward_from returns the (corrupted) golden output.
    const Tensor& logits =
        net_->forward_from(fault.layer + 1, golden_.images[i], acts, scratch_);
    ++inferences_;
    const int prediction = predict(logits);
    act[element] = saved;

    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction:
            return (golden_.preds[i] == golden_.labels[i] &&
                    prediction != golden_.labels[i])
                       ? FaultOutcome::Critical
                       : FaultOutcome::NonCritical;
        case ClassificationPolicy::GoldenMismatch:
        case ClassificationPolicy::AccuracyDrop:  // single-inference fault:
                                                  // drop == one flip
            return prediction != golden_.preds[i] ? FaultOutcome::Critical
                                                  : FaultOutcome::NonCritical;
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome ClassificationCore::evaluate(const fault::Fault& fault) {
    if (!telemetry_) {
        if (fault.model == fault::FaultModel::ActivationFlip)
            return evaluate_activation(fault);
        if (mitigation_.tmr_protects(fault.layer) || injector_.masked(fault))
            return FaultOutcome::Masked;
        fault::WeightInjector::Scoped guard(injector_, fault);
        return classify_active_fault(injector_.node_of_layer(fault.layer));
    }
    return evaluate_instrumented(fault);
}

FaultOutcome ClassificationCore::evaluate_instrumented(
    const fault::Fault& fault) {
    using clock = std::chrono::steady_clock;
    const auto ns_between = [](clock::time_point a, clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };
    auto& reg = telemetry_->metrics();
    const telemetry::MetricIds& ids = telemetry_->ids();
    const std::uint64_t inferences_before = inferences_;
    const auto t0 = clock::now();

    FaultOutcome outcome;
    if (fault.model == fault::FaultModel::ActivationFlip) {
        outcome = evaluate_activation(fault);
        // One corrupted inference: the whole evaluation is forward time.
        reg.inc(worker_, ids.forward_ns_total, ns_between(t0, clock::now()));
    } else if (mitigation_.tmr_protects(fault.layer) ||
               injector_.masked(fault)) {
        outcome = FaultOutcome::Masked;
        reg.inc(worker_, ids.masked_total);
    } else {
        clock::time_point applied, classified;
        {
            fault::WeightInjector::Scoped guard(injector_, fault);
            applied = clock::now();
            outcome =
                classify_active_fault(injector_.node_of_layer(fault.layer));
            classified = clock::now();
        }
        const auto restored = clock::now();
        reg.inc(worker_, ids.inject_ns_total, ns_between(t0, applied));
        reg.inc(worker_, ids.forward_ns_total, ns_between(applied, classified));
        reg.inc(worker_, ids.restore_ns_total,
                ns_between(classified, restored));
    }
    reg.inc(worker_, ids.faults_total);
    if (outcome == FaultOutcome::Critical)
        reg.inc(worker_, ids.critical_total);
    reg.inc(worker_, ids.inferences_total, inferences_ - inferences_before);
    reg.observe(worker_, ids.evaluate_seconds,
                std::chrono::duration<double>(clock::now() - t0).count());
    return outcome;
}

// ------------------------------------------- fault-batched group evaluation

void ClassificationCore::evaluate_group(std::span<const fault::Fault> faults,
                                        FaultOutcome* out) {
    if (faults.empty()) return;
    for (const auto& f : faults)
        if (f.layer != faults.front().layer ||
            !fault::same_ensemble_family(f.model, faults.front().model))
            throw std::invalid_argument(
                "ClassificationCore::evaluate_group: faults must share one "
                "layer and one ensemble family (weight models may mix; "
                "activation faults group only with activation faults)");
    if (faults.size() == 1) {
        // Degenerate group: per-fault path with full instrumentation.
        out[0] = evaluate(faults.front());
        return;
    }
    if (!telemetry_) {
        evaluate_group_plain(faults, out);
        return;
    }

    using clock = std::chrono::steady_clock;
    auto& reg = telemetry_->metrics();
    const telemetry::MetricIds& ids = telemetry_->ids();
    const std::uint64_t inferences_before = inferences_;
    const auto t0 = clock::now();
    evaluate_group_plain(faults, out);
    const auto t1 = clock::now();
    // Group-granularity accounting: the blocked pass interleaves injection,
    // forward, and restore per lane, so the whole pass is booked as forward
    // time and evaluate_seconds observes one sample per group.
    reg.inc(worker_, ids.forward_ns_total,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
    reg.inc(worker_, ids.faults_total, faults.size());
    std::uint64_t masked = 0, critical = 0;
    for (std::size_t f = 0; f < faults.size(); ++f) {
        masked += out[f] == FaultOutcome::Masked ? 1 : 0;
        critical += out[f] == FaultOutcome::Critical ? 1 : 0;
    }
    if (masked) reg.inc(worker_, ids.masked_total, masked);
    if (critical) reg.inc(worker_, ids.critical_total, critical);
    reg.inc(worker_, ids.inferences_total, inferences_ - inferences_before);
    reg.observe(worker_, ids.evaluate_seconds,
                std::chrono::duration<double>(t1 - t0).count());
}

void ClassificationCore::evaluate_group_plain(
    std::span<const fault::Fault> faults, FaultOutcome* out) {
    if (faults.front().model == fault::FaultModel::ActivationFlip)
        evaluate_activation_group(faults, out);
    else
        evaluate_weight_group(faults, out);
}

const Tensor& ClassificationCore::ensemble_weight_step(
    std::span<const fault::Fault> faults, int node, std::size_t image) {
    const std::size_t F = active_.size();
    const auto d = static_cast<std::size_t>(node);
    const nn::Layer& layer = net_->layer(node);
    const auto& acts = golden_.acts[image];

    lane_inputs_.clear();
    for (int in : net_->node_inputs(node))
        lane_inputs_.push_back(in == nn::Network::kInputId
                                   ? &golden_.images[image]
                                   : &acts[static_cast<std::size_t>(in)]);
    const std::span<const Tensor* const> inputs(lane_inputs_.data(),
                                                lane_inputs_.size());

    // Frontier: per lane, the golden node output with only the output row
    // its corrupted weight word feeds recomputed under that lane's fault.
    // The other rows do not depend on the corrupted word, so they are
    // byte-identical to a full faulty recompute.
    const Tensor& gact = acts[d];
    const std::size_t lane_sz = gact.numel();
    Tensor& frontier = ensemble_golden_[d];
    nn::ensure_shape(frontier, lane_shape(gact.shape(), F));
    for (std::size_t l = 0; l < F; ++l) {
        const fault::Fault& fault = faults[active_[l]];
        nn::ensure_shape(lane_buf_, gact.shape());
        std::memcpy(lane_buf_.data(), gact.data(), lane_sz * sizeof(float));
        {
            fault::WeightInjector::Scoped guard(injector_, fault);
            layer.forward_row_cached(inputs, fault.weight_index,
                                     row_cache_[d][image], lane_buf_);
        }
        std::memcpy(frontier.data() + l * lane_sz, lane_buf_.data(),
                    lane_sz * sizeof(float));
    }
    // The per-fault path recomputes node d in full and runs the clip hook on
    // the result; here the hook's clamp is re-applied to the whole stacked
    // tensor — idempotent on the already-clamped golden rows, identical on
    // the recomputed one (NaN passes std::clamp both times).
    if (mitigation_.any_clip) {
        const auto& range = mitigation_.node_clips[d];
        if (range)
            kernels::active().clamp(frontier.data(), frontier.numel(),
                                    range->first, range->second);
    }

    for (int p : suffix_deps_[d])
        stack_lanes(acts[static_cast<std::size_t>(p)], F,
                    ensemble_golden_[static_cast<std::size_t>(p)]);
    if (suffix_needs_input_[d])
        stack_lanes(golden_.images[image], F, ensemble_input_);

    if (node + 1 >= net_->node_count()) return frontier;
    return net_->forward_ensemble(node + 1, ensemble_input_, ensemble_golden_,
                                  ensemble_scratch_);
}

void ClassificationCore::evaluate_weight_group(
    std::span<const fault::Fault> faults, FaultOutcome* out) {
    // Masked / TMR-outvoted lanes are decided without inference, exactly as
    // in evaluate().
    active_.clear();
    for (std::size_t f = 0; f < faults.size(); ++f) {
        if (mitigation_.tmr_protects(faults[f].layer) ||
            injector_.masked(faults[f]))
            out[f] = FaultOutcome::Masked;
        else
            active_.push_back(f);
    }
    if (active_.empty()) return;
    if (active_.size() == 1) {
        // One live lane left: the per-fault path IS the blocked pass.
        const fault::Fault& fault = faults[active_.front()];
        fault::WeightInjector::Scoped guard(injector_, fault);
        out[active_.front()] =
            classify_active_fault(injector_.node_of_layer(fault.layer));
        return;
    }

    const int node = injector_.node_of_layer(faults.front().layer);
    const std::size_t count = golden_.images.size();

    // Per-image loops mirror classify_active_fault: same image order, same
    // decision expressions, and inferences_ advances by the live lane count
    // per step — a lane decided at image k consumed images 0..k, exactly
    // like the per-fault early exit.
    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction: {
            for (std::size_t k = 0; k < count && !active_.empty(); ++k) {
                const std::size_t i = golden_.correct_order[k];
                if (golden_.preds[i] != golden_.labels[i])
                    break;  // incorrect tail
                const Tensor& logits = ensemble_weight_step(faults, node, i);
                inferences_ += active_.size();
                std::size_t w = 0;
                for (std::size_t l = 0; l < active_.size(); ++l) {
                    if (predict_row(logits, static_cast<std::int64_t>(l)) !=
                        golden_.labels[i])
                        out[active_[l]] = FaultOutcome::Critical;
                    else
                        active_[w++] = active_[l];
                }
                active_.resize(w);
            }
            break;
        }
        case ClassificationPolicy::GoldenMismatch: {
            for (std::size_t i = 0; i < count && !active_.empty(); ++i) {
                const Tensor& logits = ensemble_weight_step(faults, node, i);
                inferences_ += active_.size();
                std::size_t w = 0;
                for (std::size_t l = 0; l < active_.size(); ++l) {
                    if (predict_row(logits, static_cast<std::int64_t>(l)) !=
                        golden_.preds[i])
                        out[active_[l]] = FaultOutcome::Critical;
                    else
                        active_[w++] = active_[l];
                }
                active_.resize(w);
            }
            break;
        }
        case ClassificationPolicy::AccuracyDrop: {
            const double threshold =
                config_.accuracy_drop_threshold * static_cast<double>(count);
            lane_correct_.assign(active_.size(), 0);
            for (std::size_t i = 0; i < count && !active_.empty(); ++i) {
                const Tensor& logits = ensemble_weight_step(faults, node, i);
                inferences_ += active_.size();
                std::size_t w = 0;
                for (std::size_t l = 0; l < active_.size(); ++l) {
                    if (predict_row(logits, static_cast<std::int64_t>(l)) ==
                        golden_.labels[i])
                        ++lane_correct_[l];
                    const std::uint64_t remaining = count - 1 - i;
                    const double best_case =
                        static_cast<double>(golden_.correct) -
                        static_cast<double>(lane_correct_[l] + remaining);
                    if (best_case > threshold) {
                        out[active_[l]] = FaultOutcome::Critical;
                    } else {
                        active_[w] = active_[l];
                        lane_correct_[w] = lane_correct_[l];
                        ++w;
                    }
                }
                active_.resize(w);
                lane_correct_.resize(w);
            }
            for (std::size_t l = 0; l < active_.size(); ++l) {
                const double drop = static_cast<double>(golden_.correct) -
                                    static_cast<double>(lane_correct_[l]);
                out[active_[l]] = drop > threshold ? FaultOutcome::Critical
                                                   : FaultOutcome::NonCritical;
            }
            return;
        }
    }
    for (const std::size_t f : active_) out[f] = FaultOutcome::NonCritical;
}

void ClassificationCore::evaluate_activation_group(
    std::span<const fault::Fault> faults, FaultOutcome* out) {
    const std::size_t F = faults.size();
    const std::size_t images = golden_.images.size();
    const int node = faults.front().layer;
    const auto d = static_cast<std::size_t>(node);

    // Each lane's target image is a pure function of its fault (see
    // evaluate_activation), so lanes in one group generally corrupt
    // DIFFERENT images: suffix dependencies and the input are gathered per
    // lane rather than replicated.
    lane_images_.resize(F);
    const Tensor& shape_ref = golden_.acts[0][d];
    const std::size_t lane_sz = shape_ref.numel();
    Tensor& frontier = ensemble_golden_[d];
    nn::ensure_shape(frontier, lane_shape(shape_ref.shape(), F));
    for (std::size_t l = 0; l < F; ++l) {
        const fault::Fault& fault = faults[l];
        const auto i = static_cast<std::size_t>(
            (fault.weight_index + static_cast<std::uint64_t>(fault.bit)) %
            images);
        lane_images_[l] = i;
        const Tensor& act = golden_.acts[i][d];
        if (fault.weight_index >= static_cast<std::uint64_t>(act.numel()))
            throw std::out_of_range(
                "ClassificationCore: activation element index out of range");
        // Lane = post-hook golden activation with one element flipped. No
        // re-clamp: the per-fault path corrupts the cached (already
        // clipped) activation and re-runs only nodes after it.
        float* lane = frontier.data() + l * lane_sz;
        std::memcpy(lane, act.data(), lane_sz * sizeof(float));
        const auto element = static_cast<std::size_t>(fault.weight_index);
        lane[element] =
            fault::apply_bit_flip(lane[element], fault.bit, config_.dtype);
    }

    for (int p : suffix_deps_[d]) {
        const auto ps = static_cast<std::size_t>(p);
        const Tensor& ref = golden_.acts[0][ps];
        const std::size_t sz = ref.numel();
        Tensor& dst = ensemble_golden_[ps];
        nn::ensure_shape(dst, lane_shape(ref.shape(), F));
        for (std::size_t l = 0; l < F; ++l)
            std::memcpy(dst.data() + l * sz,
                        golden_.acts[lane_images_[l]][ps].data(),
                        sz * sizeof(float));
    }
    if (suffix_needs_input_[d]) {
        const std::size_t sz = golden_.images[0].numel();
        nn::ensure_shape(ensemble_input_,
                         lane_shape(golden_.images[0].shape(), F));
        for (std::size_t l = 0; l < F; ++l)
            std::memcpy(ensemble_input_.data() + l * sz,
                        golden_.images[lane_images_[l]].data(),
                        sz * sizeof(float));
    }

    const Tensor& logits =
        node + 1 >= net_->node_count()
            ? frontier
            : net_->forward_ensemble(node + 1, ensemble_input_,
                                     ensemble_golden_, ensemble_scratch_);
    inferences_ += F;

    for (std::size_t l = 0; l < F; ++l) {
        const std::size_t i = lane_images_[l];
        const int prediction =
            predict_row(logits, static_cast<std::int64_t>(l));
        switch (config_.policy) {
            case ClassificationPolicy::AnyMisprediction:
                out[l] = (golden_.preds[i] == golden_.labels[i] &&
                          prediction != golden_.labels[i])
                             ? FaultOutcome::Critical
                             : FaultOutcome::NonCritical;
                break;
            case ClassificationPolicy::GoldenMismatch:
            case ClassificationPolicy::AccuracyDrop:  // single-inference
                                                      // fault: drop == flip
                out[l] = prediction != golden_.preds[i]
                             ? FaultOutcome::Critical
                             : FaultOutcome::NonCritical;
                break;
        }
    }
}

std::size_t ClassificationCore::ensemble_bytes() const noexcept {
    std::size_t floats = lane_buf_.numel() + ensemble_input_.numel();
    for (const auto& t : ensemble_golden_) floats += t.numel();
    for (const auto& t : ensemble_scratch_) floats += t.numel();
    for (const auto& per_node : row_cache_)
        for (const auto& t : per_node) floats += t.numel();
    return floats * sizeof(float);
}

CampaignFingerprint ClassificationCore::fingerprint(
    const fault::FaultUniverse& universe, std::string model_id) const {
    CampaignFingerprint fp;
    fp.model_id = std::move(model_id);
    fp.universe_size = universe.total();
    fp.dtype = static_cast<std::uint8_t>(config_.dtype);
    fp.policy = static_cast<std::uint8_t>(config_.policy);
    fp.accuracy_drop_threshold = config_.accuracy_drop_threshold;

    io::Crc32 eval;
    for (const auto& image : golden_.images)
        eval.update(image.data(), image.numel() * sizeof(float));
    for (const int label : golden_.labels) eval.update(&label, sizeof(label));
    fp.eval_hash = eval.value();

    io::Crc32 weights;
    for (const auto& ref : net_->weight_layers())
        weights.update(ref.weight->data(), ref.weight->numel() * sizeof(float));
    fp.weights_hash = weights.value();

    fp.fault_model = static_cast<std::uint8_t>(universe.kind());
    fp.mbu_k = static_cast<std::uint8_t>(universe.mbu_k());
    fp.mitigation_hash = config_.mitigation.descriptor_hash();
    return fp;
}

}  // namespace statfi::core

#include "core/classification_core.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "io/checksum.hpp"

namespace statfi::core {

GoldenCache build_golden_cache(const nn::Network& net,
                               const data::Dataset& eval) {
    const std::int64_t count = eval.size();
    if (count == 0)
        throw std::invalid_argument(
            "ClassificationCore: empty evaluation set");
    GoldenCache golden;
    golden.labels = eval.labels;

    // One batched pass over the whole eval tensor, then split each node's
    // (N, ...) output back into per-image rows. Every layer computes batch
    // rows independently, so the rows are bit-identical to N single-image
    // passes — while the batched pass amortizes per-call overhead and
    // im2col/workspace setup N-fold.
    std::vector<Tensor> batched;
    net.forward_all(eval.images, batched);

    golden.images.reserve(static_cast<std::size_t>(count));
    golden.acts.resize(static_cast<std::size_t>(count));
    golden.preds.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::size_t>(i);
        golden.images.push_back(eval.image(i));
        auto& acts = golden.acts[s];
        acts.reserve(batched.size());
        for (const Tensor& node_out : batched)
            acts.push_back(node_out.slice_row(i));
        golden.preds[s] = nn::argmax_row(acts.back(), 0);
        if (golden.preds[s] == golden.labels[s]) ++golden.correct;
    }
    golden.accuracy =
        static_cast<double>(golden.correct) / static_cast<double>(count);

    golden.correct_order.resize(static_cast<std::size_t>(count));
    std::iota(golden.correct_order.begin(), golden.correct_order.end(), 0);
    std::stable_partition(golden.correct_order.begin(),
                          golden.correct_order.end(), [&](std::size_t i) {
                              return golden.preds[i] == golden.labels[i];
                          });
    return golden;
}

namespace {
/// Resolve the mitigation config against the graph and deploy it: clip
/// rules install a node hook clamping protected outputs, so every forward
/// pass from here on (the golden pass included) runs the hardened network.
fault::ResolvedMitigation deploy_mitigation(
    const fault::MitigationConfig& config, nn::Network& net) {
    auto resolved = fault::resolve_mitigation(config, net);
    if (resolved.any_clip) {
        net.set_node_hook(
            [clips = resolved.node_clips](int id, Tensor& out) {
                const auto& range = clips[static_cast<std::size_t>(id)];
                if (!range) return;
                const float lo = range->first, hi = range->second;
                float* data = out.data();
                const std::int64_t n = out.numel();
                // NaN passes through (clamp circuits bound magnitude, they
                // do not repair invalid encodings).
                for (std::int64_t e = 0; e < n; ++e)
                    data[e] = std::clamp(data[e], lo, hi);
            });
    }
    return resolved;
}
}  // namespace

ClassificationCore::ClassificationCore(nn::Network& net,
                                       const data::Dataset& eval,
                                       ExecutorConfig config)
    : net_(&net), config_(std::move(config)),
      mitigation_(deploy_mitigation(config_.mitigation, net)),
      injector_(net, config_.dtype),
      golden_(build_golden_cache(net, eval)) {
    // Warm the scratch arena (and each conv's im2col workspace) at
    // single-image shapes so the hot loop never allocates. Not an injected
    // inference, so it stays out of inference_count().
    net_->forward_from(0, golden_.images[0], golden_.acts[0], scratch_);
}

namespace {
/// Top-1 prediction; -1 when the winning logit is not finite (numerically
/// exploded network counts as a misprediction).
int predict(const Tensor& logits) {
    const int best = nn::argmax_row(logits, 0);
    const float v = logits[static_cast<std::size_t>(best)];
    if (!std::isfinite(v)) return -1;
    return best;
}
}  // namespace

FaultOutcome ClassificationCore::classify_active_fault(int first_dirty_node) {
    const auto count = golden_.images.size();
    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction: {
            for (std::size_t k = 0; k < count; ++k) {
                const std::size_t i = golden_.correct_order[k];
                if (golden_.preds[i] != golden_.labels[i])
                    break;  // incorrect tail
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_.labels[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::GoldenMismatch: {
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_.preds[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::AccuracyDrop: {
            const double threshold =
                config_.accuracy_drop_threshold * static_cast<double>(count);
            std::uint64_t faulty_correct = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits =
                    net_->forward_from(first_dirty_node, golden_.images[i],
                                       golden_.acts[i], scratch_);
                ++inferences_;
                if (predict(logits) == golden_.labels[i]) ++faulty_correct;
                // Even if every remaining image is correct, is the drop
                // already unavoidable?
                const std::uint64_t remaining = count - 1 - i;
                const double best_case =
                    static_cast<double>(golden_.correct) -
                    static_cast<double>(faulty_correct + remaining);
                if (best_case > threshold) return FaultOutcome::Critical;
            }
            const double drop = static_cast<double>(golden_.correct) -
                                static_cast<double>(faulty_correct);
            return drop > threshold ? FaultOutcome::Critical
                                    : FaultOutcome::NonCritical;
        }
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome ClassificationCore::evaluate_activation(const fault::Fault& fault) {
    // A transient fault lives in ONE inference: pick the target image,
    // corrupt one element of one node's golden activation, re-run only the
    // downstream sub-graph, restore. fault.layer is the graph-node id and
    // fault.weight_index the element within its batch-1 output.
    const std::size_t images = golden_.images.size();
    const auto i = static_cast<std::size_t>(
        (fault.weight_index + static_cast<std::uint64_t>(fault.bit)) % images);
    auto& acts = golden_.acts[i];
    Tensor& act = acts.at(static_cast<std::size_t>(fault.layer));
    if (fault.weight_index >= static_cast<std::uint64_t>(act.numel()))
        throw std::out_of_range(
            "ClassificationCore: activation element index out of range");
    const auto element = static_cast<std::size_t>(fault.weight_index);
    const float saved = act[element];
    act[element] = fault::apply_bit_flip(saved, fault.bit, config_.dtype);
    // Only nodes AFTER the corrupted one re-run; when the corrupted node is
    // the last one, forward_from returns the (corrupted) golden output.
    const Tensor& logits =
        net_->forward_from(fault.layer + 1, golden_.images[i], acts, scratch_);
    ++inferences_;
    const int prediction = predict(logits);
    act[element] = saved;

    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction:
            return (golden_.preds[i] == golden_.labels[i] &&
                    prediction != golden_.labels[i])
                       ? FaultOutcome::Critical
                       : FaultOutcome::NonCritical;
        case ClassificationPolicy::GoldenMismatch:
        case ClassificationPolicy::AccuracyDrop:  // single-inference fault:
                                                  // drop == one flip
            return prediction != golden_.preds[i] ? FaultOutcome::Critical
                                                  : FaultOutcome::NonCritical;
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome ClassificationCore::evaluate(const fault::Fault& fault) {
    if (!telemetry_) {
        if (fault.model == fault::FaultModel::ActivationFlip)
            return evaluate_activation(fault);
        if (mitigation_.tmr_protects(fault.layer) || injector_.masked(fault))
            return FaultOutcome::Masked;
        fault::WeightInjector::Scoped guard(injector_, fault);
        return classify_active_fault(injector_.node_of_layer(fault.layer));
    }
    return evaluate_instrumented(fault);
}

FaultOutcome ClassificationCore::evaluate_instrumented(
    const fault::Fault& fault) {
    using clock = std::chrono::steady_clock;
    const auto ns_between = [](clock::time_point a, clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };
    auto& reg = telemetry_->metrics();
    const telemetry::MetricIds& ids = telemetry_->ids();
    const std::uint64_t inferences_before = inferences_;
    const auto t0 = clock::now();

    FaultOutcome outcome;
    if (fault.model == fault::FaultModel::ActivationFlip) {
        outcome = evaluate_activation(fault);
        // One corrupted inference: the whole evaluation is forward time.
        reg.inc(worker_, ids.forward_ns_total, ns_between(t0, clock::now()));
    } else if (mitigation_.tmr_protects(fault.layer) ||
               injector_.masked(fault)) {
        outcome = FaultOutcome::Masked;
        reg.inc(worker_, ids.masked_total);
    } else {
        clock::time_point applied, classified;
        {
            fault::WeightInjector::Scoped guard(injector_, fault);
            applied = clock::now();
            outcome =
                classify_active_fault(injector_.node_of_layer(fault.layer));
            classified = clock::now();
        }
        const auto restored = clock::now();
        reg.inc(worker_, ids.inject_ns_total, ns_between(t0, applied));
        reg.inc(worker_, ids.forward_ns_total, ns_between(applied, classified));
        reg.inc(worker_, ids.restore_ns_total,
                ns_between(classified, restored));
    }
    reg.inc(worker_, ids.faults_total);
    if (outcome == FaultOutcome::Critical)
        reg.inc(worker_, ids.critical_total);
    reg.inc(worker_, ids.inferences_total, inferences_ - inferences_before);
    reg.observe(worker_, ids.evaluate_seconds,
                std::chrono::duration<double>(clock::now() - t0).count());
    return outcome;
}

CampaignFingerprint ClassificationCore::fingerprint(
    const fault::FaultUniverse& universe, std::string model_id) const {
    CampaignFingerprint fp;
    fp.model_id = std::move(model_id);
    fp.universe_size = universe.total();
    fp.dtype = static_cast<std::uint8_t>(config_.dtype);
    fp.policy = static_cast<std::uint8_t>(config_.policy);
    fp.accuracy_drop_threshold = config_.accuracy_drop_threshold;

    io::Crc32 eval;
    for (const auto& image : golden_.images)
        eval.update(image.data(), image.numel() * sizeof(float));
    for (const int label : golden_.labels) eval.update(&label, sizeof(label));
    fp.eval_hash = eval.value();

    io::Crc32 weights;
    for (const auto& ref : net_->weight_layers())
        weights.update(ref.weight->data(), ref.weight->numel() * sizeof(float));
    fp.weights_hash = weights.value();

    fp.fault_model = static_cast<std::uint8_t>(universe.kind());
    fp.mbu_k = static_cast<std::uint8_t>(universe.mbu_k());
    fp.mitigation_hash = config_.mitigation.descriptor_hash();
    return fp;
}

}  // namespace statfi::core

#pragma once
// ClassificationCore: the fault -> outcome kernel. One core = one network's
// weight storage + one golden-activation cache + one scratch arena; the
// CampaignEngine owns one core per worker and everything above this layer
// (sampling, journaling, progress, fan-out) is core-count agnostic.
//
// Performance model (what makes exhaustive validation feasible on a CPU):
//  * the golden activations of every node are cached once, via a SINGLE
//    batched forward_all over the whole (N,C,H,W) evaluation tensor, then
//    split back into per-image rows (bit-identical to per-image passes:
//    every layer computes batch rows independently — see nn/gemm.hpp);
//  * a weight fault in graph node k only dirties nodes >= k, so each faulty
//    inference re-runs only the downstream sub-graph (Network::forward_from);
//  * a stuck-at equal to the golden bit is masked by construction and is
//    classified Non-critical without any inference (half of a stuck-at
//    universe on average);
//  * per-image early exit: a fault is Critical as soon as one image trips
//    the policy, so critical faults rarely scan the whole evaluation set;
//  * the scratch arena (and each Conv2d's im2col workspace) is preallocated
//    by a warm-up pass, so the ~10^5-fault hot loop never allocates.

#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "data/synthetic.hpp"
#include "fault/injector.hpp"
#include "telemetry/session.hpp"

namespace statfi::core {

/// Golden forward-pass state shared by the weight-fault core and the
/// activation-fault campaign: per-image inputs, per-node activations,
/// top-1 predictions, and the evaluation order that makes early exit pay.
struct GoldenCache {
    std::vector<Tensor> images;             ///< (1, C, H, W) each
    std::vector<int> labels;
    std::vector<std::vector<Tensor>> acts;  ///< per image, per node
    std::vector<int> preds;                 ///< golden top-1 per image
    /// Golden-correct images first: under AnyMisprediction only they can
    /// flip a fault to Critical, and early exit hits sooner when they lead.
    std::vector<std::size_t> correct_order;
    std::uint64_t correct = 0;  ///< images the golden network gets right
    double accuracy = 0.0;
};

/// Build the cache with one batched forward_all over eval.images.
/// @throws std::invalid_argument on an empty evaluation set.
GoldenCache build_golden_cache(const nn::Network& net,
                               const data::Dataset& eval);

class ClassificationCore {
public:
    /// Clones nothing: operates directly on @p net's weights (restoring
    /// them after every fault). Resolves and deploys the config's
    /// mitigations on @p net (clip rules install a node hook, so the golden
    /// pass measures the hardened network), caches golden activations, and
    /// warms the scratch arena with one (uncounted) full-depth forward_from.
    ClassificationCore(nn::Network& net, const data::Dataset& eval,
                       ExecutorConfig config = {});

    [[nodiscard]] const ExecutorConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] double golden_accuracy() const noexcept {
        return golden_.accuracy;
    }
    [[nodiscard]] const std::vector<int>& golden_predictions() const noexcept {
        return golden_.preds;
    }
    /// Total faulty inferences (image evaluations) performed so far.
    [[nodiscard]] std::uint64_t inference_count() const noexcept {
        return inferences_;
    }

    /// Classify one fault (weights or activations are corrupted and
    /// restored internally). Dispatches on fault.model: weight faults
    /// corrupt stored weight words and re-run the downstream sub-graph per
    /// image; ActivationFlip faults corrupt one element of one node's
    /// golden activation during ONE inference whose image is a pure
    /// function of the fault — (element + bit) mod |eval| — so transient
    /// campaigns stay bit-identical across worker counts, shard splits, and
    /// interrupt/resume points. Weight/multi-bit faults in a TMR-protected
    /// layer are outvoted and Masked without inference.
    FaultOutcome evaluate(const fault::Fault& fault);

    /// Attach telemetry: this core reports into @p session's per-worker
    /// slot @p worker (each engine worker owns exactly one slot — the
    /// lock-free single-writer contract). nullptr detaches; the detached
    /// hot path costs one pointer compare and never reads a clock, and
    /// outcomes are identical either way (telemetry only observes).
    void set_telemetry(telemetry::Session* session,
                       std::size_t worker) noexcept {
        telemetry_ = session;
        worker_ = worker;
    }

    /// Campaign identity for journals/caches: universe size, dtype, policy,
    /// plus CRC32 hashes of the evaluation set and the golden weights. A
    /// retrained model or different eval set fingerprints differently.
    /// Worker count never enters the fingerprint: it cannot change outcomes.
    [[nodiscard]] CampaignFingerprint fingerprint(
        const fault::FaultUniverse& universe, std::string model_id) const;

private:
    FaultOutcome classify_active_fault(int first_dirty_node);
    FaultOutcome evaluate_activation(const fault::Fault& fault);
    FaultOutcome evaluate_instrumented(const fault::Fault& fault);

    nn::Network* net_;
    ExecutorConfig config_;
    /// Resolved before injector_/golden_: construction installs the clip
    /// hook on net_, and the golden cache below must see it.
    fault::ResolvedMitigation mitigation_;
    fault::WeightInjector injector_;
    GoldenCache golden_;
    std::uint64_t inferences_ = 0;
    std::vector<Tensor> scratch_;
    telemetry::Session* telemetry_ = nullptr;
    std::size_t worker_ = 0;
};

}  // namespace statfi::core

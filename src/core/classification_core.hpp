#pragma once
// ClassificationCore: the fault -> outcome kernel. One core = one network's
// weight storage + one golden-activation cache + one scratch arena; the
// CampaignEngine owns one core per worker and everything above this layer
// (sampling, journaling, progress, fan-out) is core-count agnostic.
//
// Performance model (what makes exhaustive validation feasible on a CPU):
//  * the golden activations of every node are cached once, via a SINGLE
//    batched forward_all over the whole (N,C,H,W) evaluation tensor, then
//    split back into per-image rows (bit-identical to per-image passes:
//    every layer computes batch rows independently — see nn/gemm.hpp);
//  * a weight fault in graph node k only dirties nodes >= k, so each faulty
//    inference re-runs only the downstream sub-graph (Network::forward_from);
//  * a stuck-at equal to the golden bit is masked by construction and is
//    classified Non-critical without any inference (half of a stuck-at
//    universe on average);
//  * per-image early exit: a fault is Critical as soon as one image trips
//    the policy, so critical faults rarely scan the whole evaluation set;
//  * the scratch arena (and each Conv2d's im2col workspace) is preallocated
//    by a warm-up pass, so the ~10^5-fault hot loop never allocates.

#include <span>
#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "data/synthetic.hpp"
#include "fault/injector.hpp"
#include "telemetry/session.hpp"

namespace statfi::core {

/// Golden forward-pass state shared by the weight-fault core and the
/// activation-fault campaign: per-image inputs, per-node activations,
/// top-1 predictions, and the evaluation order that makes early exit pay.
struct GoldenCache {
    std::vector<Tensor> images;             ///< (1, C, H, W) each
    std::vector<int> labels;
    std::vector<std::vector<Tensor>> acts;  ///< per image, per node
    std::vector<int> preds;                 ///< golden top-1 per image
    /// Golden-correct images first: under AnyMisprediction only they can
    /// flip a fault to Critical, and early exit hits sooner when they lead.
    std::vector<std::size_t> correct_order;
    std::uint64_t correct = 0;  ///< images the golden network gets right
    double accuracy = 0.0;
};

/// Build the cache with one batched forward_all over eval.images.
/// @throws std::invalid_argument on an empty evaluation set.
GoldenCache build_golden_cache(const nn::Network& net,
                               const data::Dataset& eval);

class ClassificationCore {
public:
    /// Clones nothing: operates directly on @p net's weights (restoring
    /// them after every fault). Resolves and deploys the config's
    /// mitigations on @p net (clip rules install a node hook, so the golden
    /// pass measures the hardened network), caches golden activations, and
    /// warms the scratch arena with one (uncounted) full-depth forward_from.
    ClassificationCore(nn::Network& net, const data::Dataset& eval,
                       ExecutorConfig config = {});

    [[nodiscard]] const ExecutorConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] double golden_accuracy() const noexcept {
        return golden_.accuracy;
    }
    [[nodiscard]] const std::vector<int>& golden_predictions() const noexcept {
        return golden_.preds;
    }
    /// Total faulty inferences (image evaluations) performed so far.
    [[nodiscard]] std::uint64_t inference_count() const noexcept {
        return inferences_;
    }

    /// Classify one fault (weights or activations are corrupted and
    /// restored internally). Dispatches on fault.model: weight faults
    /// corrupt stored weight words and re-run the downstream sub-graph per
    /// image; ActivationFlip faults corrupt one element of one node's
    /// golden activation during ONE inference whose image is a pure
    /// function of the fault — (element + bit) mod |eval| — so transient
    /// campaigns stay bit-identical across worker counts, shard splits, and
    /// interrupt/resume points. Weight/multi-bit faults in a TMR-protected
    /// layer are outvoted and Masked without inference.
    FaultOutcome evaluate(const fault::Fault& fault);

    /// Classify a batch of faults sharing one layer and one ensemble family
    /// (fault::same_ensemble_family — weight-resident models mix freely, a
    /// lane applies its own corruption; activation faults group apart) in a
    /// single blocked pass, writing one outcome per fault into @p out. Each
    /// fault becomes a "lane": its dirty node's output is reconstructed by
    /// copying the golden activation and recomputing only the one output row
    /// the corrupted weight word feeds (Layer::forward_row), then all lanes
    /// run the downstream sub-graph together as one fault-batched ensemble
    /// forward (Network::forward_ensemble). Outcomes and inference counts
    /// are bit-identical to calling evaluate() per fault — grouping is a
    /// throughput knob, like the worker count, never a semantic one.
    /// @throws std::invalid_argument when faults mix layers or families.
    void evaluate_group(std::span<const fault::Fault> faults,
                        FaultOutcome* out);

    /// Ensemble workspace footprint in bytes (diagnostics for bench_perf).
    [[nodiscard]] std::size_t ensemble_bytes() const noexcept;

    /// Attach telemetry: this core reports into @p session's per-worker
    /// slot @p worker (each engine worker owns exactly one slot — the
    /// lock-free single-writer contract). nullptr detaches; the detached
    /// hot path costs one pointer compare and never reads a clock, and
    /// outcomes are identical either way (telemetry only observes).
    void set_telemetry(telemetry::Session* session,
                       std::size_t worker) noexcept {
        telemetry_ = session;
        worker_ = worker;
    }

    /// Campaign identity for journals/caches: universe size, dtype, policy,
    /// plus CRC32 hashes of the evaluation set and the golden weights. A
    /// retrained model or different eval set fingerprints differently.
    /// Worker count never enters the fingerprint: it cannot change outcomes.
    [[nodiscard]] CampaignFingerprint fingerprint(
        const fault::FaultUniverse& universe, std::string model_id) const;

private:
    FaultOutcome classify_active_fault(int first_dirty_node);
    FaultOutcome evaluate_activation(const fault::Fault& fault);
    FaultOutcome evaluate_instrumented(const fault::Fault& fault);

    void evaluate_group_plain(std::span<const fault::Fault> faults,
                              FaultOutcome* out);
    void evaluate_weight_group(std::span<const fault::Fault> faults,
                               FaultOutcome* out);
    void evaluate_activation_group(std::span<const fault::Fault> faults,
                                   FaultOutcome* out);
    /// Build the lane-stacked frontier (node @p node outputs for image
    /// @p image, one lane per active fault) plus the replicated suffix
    /// dependencies, then run the ensemble suffix. Returns the lane-stacked
    /// logits ((F, classes) — row l belongs to active_[l]).
    const Tensor& ensemble_weight_step(std::span<const fault::Fault> faults,
                                       int node, std::size_t image);

    nn::Network* net_;
    ExecutorConfig config_;
    /// Resolved before injector_/golden_: construction installs the clip
    /// hook on net_, and the golden cache below must see it.
    fault::ResolvedMitigation mitigation_;
    fault::WeightInjector injector_;
    GoldenCache golden_;
    std::uint64_t inferences_ = 0;
    std::vector<Tensor> scratch_;
    telemetry::Session* telemetry_ = nullptr;
    std::size_t worker_ = 0;

    // -- fault-batched ensemble state (grow-only, reused across groups) ----
    /// Lane-stacked stand-in for the golden cache: entry [node] holds the
    /// frontier, entries listed in suffix_deps_ hold replicated golden acts.
    std::vector<Tensor> ensemble_golden_;
    std::vector<Tensor> ensemble_scratch_;
    Tensor ensemble_input_;  ///< lane-stacked network input, when referenced
    Tensor lane_buf_;        ///< single-lane frontier reconstruction buffer
    std::vector<const Tensor*> lane_inputs_;
    /// row_cache_[node][image]: input-derived scratch a layer keeps across
    /// forward_row_cached calls (a conv's golden im2col matrix). Valid for
    /// the life of the core — frontier inputs are golden activations, which
    /// never change after construction.
    std::vector<std::vector<Tensor>> row_cache_;
    /// suffix_deps_[d]: producers p < d that some node > d reads — exactly
    /// the golden entries forward_from(d + 1) dereferences besides d itself.
    std::vector<std::vector<int>> suffix_deps_;
    std::vector<char> suffix_needs_input_;
    std::vector<std::size_t> active_;       ///< undecided lanes (fault index)
    std::vector<std::uint64_t> lane_correct_;  ///< AccuracyDrop per-lane hits
    std::vector<std::size_t> lane_images_;  ///< activation-group target image
};

}  // namespace statfi::core

#include "core/convergence.hpp"

#include <sstream>

#include "report/json.hpp"
#include "stats/intervals.hpp"

namespace statfi::core {

using telemetry::Event;
using telemetry::EventLog;

void emit_campaign_header(EventLog& log, const CampaignHeaderInfo& info) {
    log.emit(Event("campaign_header")
                 .field("schema", EventLog::kSchemaName)
                 .field("command", info.command)
                 .field("model", info.model)
                 .field("approach", info.approach)
                 .field("dtype", info.dtype)
                 // `format` mirrors dtype under the name the format
                 // subsystem speaks; readers prefer it and fall back to
                 // dtype for pre-format logs.
                 .field("format", info.dtype)
                 .field("policy", info.policy)
                 .field("seed", info.seed)
                 .field("images", info.images)
                 .field("confidence", info.confidence)
                 .field("error_margin", info.error_margin)
                 .field("fault_model", info.fault_model)
                 .field("mitigation", info.mitigation)
                 .field("kernels", info.kernels));
}

namespace {

/// The layer table every `plan` event carries: the report keys heatmap rows
/// and per-layer tallies on it.
/// Canonical fault-model spelling of a universe ("stuck-at", "mbu-k2", ...).
std::string universe_fault_model(const fault::FaultUniverse& universe) {
    return fault::FaultModelSpec{universe.kind(), universe.mbu_k()}.describe();
}

std::string layers_json(const fault::FaultUniverse& universe) {
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_array();
    for (int l = 0; l < universe.layer_count(); ++l) {
        json.begin_object();
        json.field("layer", static_cast<std::int64_t>(l));
        json.field("name", universe.layer(l).name);
        json.field("population", universe.layer_population(l));
        json.end_object();
    }
    json.end_array();
    json.finish();
    std::string text = out.str();
    // finish() appends the document-terminating newline; embedded in an
    // event line it would break the one-event-per-line invariant.
    while (!text.empty() && (text.back() == '\n' || text.back() == ' '))
        text.pop_back();
    return text;
}

}  // namespace

void emit_plan_event(EventLog& log, const fault::FaultUniverse& universe,
                     const CampaignPlan& plan) {
    log.emit(Event("plan")
                 .field("approach", to_string(plan.approach))
                 .field("fault_model", universe_fault_model(universe))
                 .field("universe", universe.total())
                 .field("planned", plan.total_sample_size())
                 .field("strata",
                        static_cast<std::uint64_t>(plan.subpops.size()))
                 .field("bits", universe.bits())
                 .raw("layers", layers_json(universe)));
}

void emit_plan_event_census(EventLog& log,
                            const fault::FaultUniverse& universe) {
    const std::uint64_t strata =
        static_cast<std::uint64_t>(universe.layer_count()) *
        static_cast<std::uint64_t>(universe.bits());
    log.emit(Event("plan")
                 .field("approach", "exhaustive")
                 .field("fault_model", universe_fault_model(universe))
                 .field("universe", universe.total())
                 .field("planned", universe.total())
                 .field("strata", strata)
                 .field("bits", universe.bits())
                 .raw("layers", layers_json(universe)));
}

namespace {

void emit_stratum(EventLog& log, std::uint64_t stratum, int layer, int bit,
                  std::uint64_t population, std::uint64_t planned,
                  std::uint64_t done, std::uint64_t critical,
                  double confidence) {
    const double p_hat =
        done ? static_cast<double>(critical) / static_cast<double>(done)
             : 0.0;
    stats::Interval wilson{0.0, 1.0};
    stats::Interval wald{0.0, 1.0};
    if (done) {
        wilson = stats::wilson_interval(critical, done, confidence);
        wald = stats::wald_interval_fpc(critical, done, population,
                                        confidence);
    }
    log.emit(Event("stratum_update")
                 .field("stratum", stratum)
                 .field("layer", layer)
                 .field("bit", bit)
                 .field("population", population)
                 .field("planned", planned)
                 .field("done", done)
                 .field("critical", critical)
                 .field("p_hat", p_hat)
                 .field("wilson_lo", wilson.lo)
                 .field("wilson_hi", wilson.hi)
                 .field("wald_lo", wald.lo)
                 .field("wald_hi", wald.hi));
}

}  // namespace

void emit_stratum_update(EventLog& log, std::uint64_t stratum,
                         const SubpopPlan& plan, std::uint64_t done,
                         std::uint64_t critical, double confidence) {
    emit_stratum(log, stratum, plan.layer, plan.bit, plan.population,
                 plan.sample_size, done, critical, confidence);
}

void emit_final_strata(EventLog& log, const CampaignResult& result) {
    for (std::size_t i = 0; i < result.subpops.size(); ++i) {
        const SubpopResult& sub = result.subpops[i];
        emit_stratum_update(log, static_cast<std::uint64_t>(i), sub.plan,
                            sub.injected, sub.critical,
                            result.spec.confidence);
    }
}

void emit_census_strata(EventLog& log, const fault::FaultUniverse& universe,
                        const ExhaustiveOutcomes& outcomes,
                        double confidence) {
    const int bits = universe.bits();
    for (int l = 0; l < universe.layer_count(); ++l) {
        const std::uint64_t population = universe.bit_population(l);
        for (int bit = 0; bit < bits; ++bit) {
            const std::uint64_t offset = universe.subpop_offset(l, bit);
            const std::uint64_t critical =
                outcomes.critical_count(offset, offset + population);
            const std::uint64_t stratum =
                static_cast<std::uint64_t>(l) *
                    static_cast<std::uint64_t>(bits) +
                static_cast<std::uint64_t>(bit);
            emit_stratum(log, stratum, l, bit, population, population,
                         population, critical, confidence);
        }
    }
}

void emit_campaign_end(EventLog& log, bool complete, std::uint64_t injected,
                       std::uint64_t critical, double wall_seconds) {
    log.emit(Event("campaign_end")
                 .field("outcome", complete ? "complete" : "interrupted")
                 .field("injected", injected)
                 .field("critical", critical)
                 .field("wall_seconds", wall_seconds));
}

}  // namespace statfi::core

#pragma once
// Observatory event emission for campaigns (DESIGN.md §5.13): the helpers
// that turn core/fault state into the frozen statfi.eventlog.v1 schema.
//
// They live in core (not telemetry) because they read CampaignPlan,
// CampaignResult, ExhaustiveOutcomes and FaultUniverse — telemetry sits
// below core in the link order and stays type-agnostic. Every helper is a
// no-op-free pure writer: callers guard with `if (session && session->events())`
// so disabled telemetry never constructs an event.
//
// Emission protocol (who writes what):
//   CLI / shard runner   campaign_header (before any PhaseScope opens),
//                        campaign_end
//   CLI / shard runner   plan (once the fixture + plan exist)
//   CampaignEngine       stratum_update during the deterministic serial
//                        accumulation loop (per-stratum powers-of-two
//                        cadence + the final point), resume, and the
//                        census strata of a complete exhaustive run
//   shard runner         shard_begin / shard_end
//   shard merger         merge_artifact (per validated artifact)
//
// Determinism: everything emitted here is a function of (recipe, seed,
// plan, outcomes) — never of worker count, wall clock, or scheduling — so
// two runs of the same campaign produce byte-identical logs modulo the
// envelope `ts` and the measured `seconds`/`wall_seconds` durations
// (asserted in tests/telemetry/eventlog_test.cpp).

#include <cstdint>
#include <string>

#include "core/outcome.hpp"
#include "core/planner.hpp"
#include "fault/universe.hpp"
#include "telemetry/eventlog.hpp"

namespace statfi::core {

/// Recipe-level identity of a campaign, known before any fixture is built.
/// Field strings use the canonical to_string() spellings so logs join
/// cleanly with manifests and CLI flags.
struct CampaignHeaderInfo {
    std::string command;   ///< "campaign", "exhaustive", "shard-run", ...
    std::string model;
    std::string approach;
    std::string dtype;
    std::string policy;
    std::uint64_t seed = 0;
    std::int64_t images = 0;
    double confidence = 0.99;
    double error_margin = 0.01;
    /// FaultModelSpec::describe() spelling ("stuck-at", "flip", "mbu-k2",
    /// "activation") and MitigationConfig::describe() ("none" when empty).
    std::string fault_model = "stuck-at";
    std::string mitigation = "none";
    /// kernels::active().name at campaign start ("generic", "avx2") — which
    /// compute backend produced the outcomes. Informational: backends are
    /// bit-identical, so it never enters fingerprints.
    std::string kernels = "generic";
};

/// Emit the mandatory first event (schema name + recipe identity).
void emit_campaign_header(telemetry::EventLog& log,
                          const CampaignHeaderInfo& info);

/// Emit the `plan` event for a statistical campaign: universe size, planned
/// injections, stratum count, bit width, and the layer table (name +
/// population per layer) the report keys its heatmap rows on.
void emit_plan_event(telemetry::EventLog& log,
                     const fault::FaultUniverse& universe,
                     const CampaignPlan& plan);

/// Emit the `plan` event for an exhaustive census: planned == universe,
/// one stratum per (layer, bit) cell.
void emit_plan_event_census(telemetry::EventLog& log,
                            const fault::FaultUniverse& universe);

/// Emit one estimator update for stratum @p stratum: running p_hat plus the
/// Wilson and Wald-FPC intervals at @p confidence, given @p done injections
/// and @p critical observed criticals against @p plan.
void emit_stratum_update(telemetry::EventLog& log, std::uint64_t stratum,
                         const SubpopPlan& plan, std::uint64_t done,
                         std::uint64_t critical, double confidence);

/// Emit the final stratum_update for every subpopulation of a finished (or
/// interrupted) statistical campaign — the path the shard merger uses,
/// where no per-item accumulation stream exists.
void emit_final_strata(telemetry::EventLog& log, const CampaignResult& result);

/// Emit one exact stratum_update per (layer, bit) cell of a complete
/// census: done == planned == population, so both intervals collapse to
/// zero width under the finite-population correction.
void emit_census_strata(telemetry::EventLog& log,
                        const fault::FaultUniverse& universe,
                        const ExhaustiveOutcomes& outcomes,
                        double confidence);

/// Emit the terminal event. @p complete false records an interruption.
void emit_campaign_end(telemetry::EventLog& log, bool complete,
                       std::uint64_t injected, std::uint64_t critical,
                       double wall_seconds);

}  // namespace statfi::core

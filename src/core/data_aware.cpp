#include "core/data_aware.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace statfi::core {

const char* to_string(NormalizationRule rule) noexcept {
    switch (rule) {
        case NormalizationRule::GlobalRange: return "global-range";
        case NormalizationRule::InlierRange: return "inlier-range";
        case NormalizationRule::LogInlierRange: return "log-inlier-range";
    }
    return "?";
}

BitCriticality analyze_weights(std::span<const float> weights,
                               const DataAwareConfig& config) {
    if (weights.empty())
        throw std::invalid_argument("analyze_weights: empty weight set");
    const int bits = fault::bit_width(config.dtype);

    BitCriticality crit;
    crit.f0.assign(static_cast<std::size_t>(bits), 0.0);
    crit.f1.assign(static_cast<std::size_t>(bits), 0.0);
    crit.d01.assign(static_cast<std::size_t>(bits), 0.0);
    crit.d10.assign(static_cast<std::size_t>(bits), 0.0);
    crit.davg.assign(static_cast<std::size_t>(bits), 0.0);

    std::vector<std::uint64_t> ones(static_cast<std::size_t>(bits), 0);
    std::vector<double> dist0(static_cast<std::size_t>(bits), 0.0);  // 0->1
    std::vector<double> dist1(static_cast<std::size_t>(bits), 0.0);  // 1->0

    for (float w : weights) {
        const std::uint32_t word = fault::encode(w, config.dtype, config.quant);
        for (int i = 0; i < bits; ++i) {
            const double d =
                fault::bit_flip_distance(w, i, config.dtype, config.quant);
            if ((word >> i) & 1u) {
                ++ones[static_cast<std::size_t>(i)];
                dist1[static_cast<std::size_t>(i)] += d;
            } else {
                dist0[static_cast<std::size_t>(i)] += d;
            }
        }
    }

    const auto count = static_cast<double>(weights.size());
    for (int i = 0; i < bits; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const double n1 = static_cast<double>(ones[idx]);
        const double n0 = count - n1;
        crit.f1[idx] = n1 / count;
        crit.f0[idx] = n0 / count;
        crit.d01[idx] = n0 > 0.0 ? dist0[idx] / n0 : 0.0;
        crit.d10[idx] = n1 > 0.0 ? dist1[idx] / n1 : 0.0;
        // Eq. 4: expected flip distance weighting each direction by how often
        // the bit actually holds the corresponding golden value.
        crit.davg[idx] = crit.d01[idx] * crit.f0[idx] + crit.d10[idx] * crit.f1[idx];
    }

    // Eq. 5: min-max normalize Davg into [a, b] under the configured rule.
    switch (config.rule) {
        case NormalizationRule::GlobalRange:
            crit.p = stats::minmax_normalize(crit.davg, config.p_min,
                                             config.p_max);
            break;
        case NormalizationRule::InlierRange:
            crit.p = stats::minmax_normalize_robust(crit.davg, config.p_min,
                                                    config.p_max, config.tukey_k);
            break;
        case NormalizationRule::LogInlierRange: {
            std::vector<double> logs(crit.davg.size());
            for (std::size_t i = 0; i < logs.size(); ++i)
                logs[i] = std::log10(crit.davg[i] + 1e-300);
            crit.p = stats::minmax_normalize_robust(logs, config.p_min,
                                                    config.p_max, config.tukey_k);
            break;
        }
    }
    if (config.p_floor > 0.0)
        for (auto& p : crit.p)
            p = std::max(p, std::min(config.p_floor, config.p_max));
    return crit;
}

BitCriticality analyze_network(nn::Network& net, const DataAwareConfig& config) {
    std::vector<float> all;
    for (auto& ref : net.weight_layers())
        all.insert(all.end(), ref.weight->data(),
                   ref.weight->data() + ref.weight->numel());
    return analyze_weights(all, config);
}

}  // namespace statfi::core

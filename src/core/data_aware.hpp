#pragma once
// Data-aware bit-criticality analysis (paper §III-B).
//
// From the *golden* weight distribution alone — no injections — derive a
// per-bit-position probability p(i) that a fault in bit i becomes a critical
// failure:
//   f0(i), f1(i): fraction of weights whose stored bit i is 0 / 1  (Fig. 3)
//   D01(i), D10(i): mean |delta| a 0->1 / 1->0 flip of bit i causes (Fig. 2)
//   Davg(i) = D01(i) * f0(i) + D10(i) * f1(i)                       (Eq. 4)
//   p(i)    = minmax-normalize Davg into [0, 0.5], outliers clamped (Eq. 5)
// The paper excludes outliers from the min/max and assigns them the highest
// criticality; we detect them with Tukey fences (k configurable) and clamp.

#include <span>
#include <vector>

#include "fault/codec.hpp"
#include "nn/network.hpp"

namespace statfi::core {

/// How Eq. 5 maps Davg onto [a, b]. The paper's text ("min-max ... without
/// considering the outliers") under-determines the rule; GlobalRange is the
/// one consistent with the paper's published sample sizes: the exponent-MSB
/// Davg is astronomically larger than every other bit's, so normalizing by
/// the full range drives every non-extreme bit to p ~ 0 — exactly the
/// published data-aware totals (one near-0.5 bit per layer plus a small
/// tail). The alternatives are kept for the ablation bench.
enum class NormalizationRule : std::uint8_t {
    /// p = (Davg - min) / (max - min) * (b-a) + a over ALL bits (default).
    GlobalRange,
    /// Min/max over Tukey inliers only; outliers clamped to the extremes.
    InlierRange,
    /// As InlierRange but min-max on log10(Davg) — spreads the geometric
    /// mantissa decay linearly.
    LogInlierRange,
};

const char* to_string(NormalizationRule rule) noexcept;

struct DataAwareConfig {
    fault::DataType dtype = fault::DataType::Float32;
    fault::QuantParams quant;  ///< used by the INT8 codec only
    double p_min = 0.0;        ///< Eq. 5 "a"
    double p_max = 0.5;        ///< Eq. 5 "b"
    double tukey_k = 1.5;      ///< outlier fence multiplier (inlier rules)
    NormalizationRule rule = NormalizationRule::GlobalRange;
    /// Post-normalization floor on p(i). Under GlobalRange the exponent-MSB
    /// Davg drives every other bit's p to ~1e-38, i.e. n = 1 — statistically
    /// blind subpopulations. A floor of 1e-3 keeps every subpopulation
    /// observable (~60 samples at the paper's N) and is the value implied by
    /// the paper's published per-layer data-aware counts (e.g. ResNet-20
    /// layer 0: 821 + 31x62 = 2,743 vs the published 2,732).
    double p_floor = 1e-3;
};

/// Per-bit criticality profile of a weight distribution.
struct BitCriticality {
    std::vector<double> f0;    ///< fraction of weights with bit i == 0
    std::vector<double> f1;    ///< fraction of weights with bit i == 1
    std::vector<double> d01;   ///< mean distance of 0->1 flips at bit i
    std::vector<double> d10;   ///< mean distance of 1->0 flips at bit i
    std::vector<double> davg;  ///< Eq. 4
    std::vector<double> p;     ///< Eq. 5, in [p_min, p_max]

    [[nodiscard]] int bits() const { return static_cast<int>(p.size()); }
};

/// Analyze one weight vector (e.g. a single layer).
/// @throws std::invalid_argument on empty input.
BitCriticality analyze_weights(std::span<const float> weights,
                               const DataAwareConfig& config = {});

/// Analyze all injectable weights of a network as one distribution — the
/// paper computes a single p(i) profile per CNN (Fig. 4).
BitCriticality analyze_network(nn::Network& net,
                               const DataAwareConfig& config = {});

}  // namespace statfi::core

#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "core/convergence.hpp"
#include "stats/sampling.hpp"

namespace statfi::core {

/// One worker: a private network clone and a per-clone classification core.
struct CampaignEngine::Worker {
    nn::Network net;
    ClassificationCore core;

    Worker(const nn::Network& source, const data::Dataset& eval,
           const ExecutorConfig& config)
        : net(source.clone()), core(net, eval, config) {}
};

CampaignEngine::CampaignEngine(const nn::Network& net,
                               const data::Dataset& eval,
                               ExecutorConfig config, std::size_t threads,
                               telemetry::Session* telemetry)
    : telemetry_(telemetry) {
    if (threads == 0)
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (telemetry_) telemetry_->bind_workers(threads);
    {
        // Worker construction runs the golden forward pass once per clone —
        // the dominant startup cost, so it gets its own phase span.
        telemetry::PhaseScope scope(telemetry_, "golden_pass");
        workers_.reserve(threads);
        for (std::size_t w = 0; w < threads; ++w) {
            workers_.push_back(std::make_unique<Worker>(net, eval, config));
            workers_.back()->core.set_telemetry(telemetry_, w);
        }
    }
    if (telemetry_) {
        auto& reg = telemetry_->metrics();
        reg.set_gauge(telemetry_->ids().worker_count,
                      static_cast<double>(threads));
        reg.set_gauge(telemetry_->ids().golden_accuracy, golden_accuracy());
    }
}

CampaignEngine::~CampaignEngine() = default;
CampaignEngine::CampaignEngine(CampaignEngine&&) noexcept = default;
CampaignEngine& CampaignEngine::operator=(CampaignEngine&&) noexcept = default;

std::size_t CampaignEngine::worker_count() const noexcept {
    return workers_.size();
}

const ExecutorConfig& CampaignEngine::config() const noexcept {
    return workers_.front()->core.config();
}

double CampaignEngine::golden_accuracy() const {
    return workers_.front()->core.golden_accuracy();
}

const std::vector<int>& CampaignEngine::golden_predictions() const {
    return workers_.front()->core.golden_predictions();
}

std::uint64_t CampaignEngine::inference_count() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) total += w->core.inference_count();
    return total;
}

ClassificationCore& CampaignEngine::core(std::size_t worker) {
    return workers_.at(worker)->core;
}

FaultOutcome CampaignEngine::evaluate(const fault::Fault& fault) {
    return workers_.front()->core.evaluate(fault);
}

CampaignFingerprint CampaignEngine::fingerprint(
    const fault::FaultUniverse& universe, std::string model_id) const {
    return workers_.front()->core.fingerprint(universe, std::move(model_id));
}

CampaignPlan CampaignEngine::plan(const fault::FaultUniverse& universe,
                                  const CampaignSpec& spec) {
    telemetry::PhaseScope scope(telemetry_, "plan");
    switch (spec.approach) {
        case Approach::Exhaustive: return plan_exhaustive(universe);
        case Approach::NetworkWise:
            return plan_network_wise(universe, spec.sample);
        case Approach::LayerWise:
            return plan_layer_wise(universe, spec.sample);
        case Approach::DataUnaware:
            return plan_data_unaware(universe, spec.sample);
        case Approach::DataAware: {
            // Data-aware p(i) comes from per-bit weight criticality; combo
            // ranks and activation elements have no such profile.
            if (universe.kind() != fault::FaultModelKind::WeightStuckAt &&
                universe.kind() != fault::FaultModelKind::WeightBitFlip)
                throw std::invalid_argument(
                    "CampaignEngine::plan: data-aware planning needs "
                    "single-bit weight strata; fault model '" +
                    std::string(fault::to_string(universe.kind())) +
                    "' has none — use layer-wise or data-unaware instead");
            DataAwareConfig analysis = spec.analysis;
            analysis.dtype = config().dtype;
            nn::Network& net = workers_.front()->net;
            if (analysis.dtype == fault::DataType::Int8) {
                // Symmetric per-network scheme. When the fixture deployed a
                // QuantizedStore its per-layer scales are authoritative (the
                // weights are already quantized; re-deriving would drift) —
                // the network-wide analysis scale is their maximum. Otherwise
                // fall back to the golden weights, the same storage view the
                // injector corrupts.
                if (!config().layer_quant.empty()) {
                    float scale = 0.0f;
                    for (const auto& qp : config().layer_quant)
                        scale = std::max(scale, qp.scale);
                    analysis.quant.scale = scale > 0 ? scale : 1.0f;
                } else {
                    float max_abs = 0.0f;
                    for (auto& ref : net.weight_layers())
                        max_abs = std::max(max_abs, ref.weight->max_abs());
                    analysis.quant.scale =
                        max_abs > 0 ? max_abs / 127.0f : 1.0f;
                }
            }
            return plan_data_aware(universe, spec.sample,
                                   analyze_network(net, analysis));
        }
    }
    throw std::invalid_argument("CampaignEngine::plan: unknown approach");
}

std::vector<DrawnFault> draw_plan(const fault::FaultUniverse& universe,
                                  const CampaignPlan& plan, stats::Rng rng) {
    // Draw every sample up front, one forked stream per subpopulation, so
    // the drawn faults are a function of (plan, rng) alone — never of the
    // worker count or the partitioning.
    std::vector<DrawnFault> items;
    std::uint64_t subpop_index = 0;
    for (std::size_t s = 0; s < plan.subpops.size(); ++s) {
        const auto& sp = plan.subpops[s];
        auto stream = rng.fork(subpop_index++);
        for (const std::uint64_t local :
             stats::sample_indices(sp.population, sp.sample_size, stream)) {
            fault::Fault fault;
            if (sp.layer >= 0 && sp.bit >= 0)
                fault = universe.decode_in_subpop(sp.layer, sp.bit, local);
            else if (sp.layer >= 0)
                fault = universe.decode(universe.subpop_offset(sp.layer, 0) +
                                        local);
            else
                fault = universe.decode(local);
            items.push_back(DrawnFault{s, fault});
        }
    }
    return items;
}

CampaignResult CampaignEngine::run(const fault::FaultUniverse& universe,
                                   const CampaignPlan& plan, stats::Rng rng,
                                   const CancellationToken* cancel) {
    telemetry::PhaseScope scope(telemetry_, "classify");
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result = make_empty_result(
        static_cast<std::size_t>(universe.layer_count()), plan);
    const std::vector<DrawnFault> items =
        draw_plan(universe, plan, std::move(rng));

    // Classify; outcomes are deterministic per fault AND per group (the
    // ensemble forward is bit-identical to the per-fault loop), so neither
    // the partitioning nor the grouping can change the tallies.
    std::vector<std::uint8_t> outcomes(items.size());
    std::vector<std::uint8_t> evaluated(items.size(), 0);
    const std::size_t workers = workers_.size();
    const std::size_t width = std::max<std::size_t>(1, config().ensemble_width);

    // Group boundaries: runs of consecutive items sharing (layer, model),
    // capped at ensemble_width. draw_plan emits subpopulations in plan
    // order, so same-layer items are adjacent and groups fill naturally.
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    {
        std::size_t i = 0;
        while (i < items.size()) {
            std::size_t j = i + 1;
            while (j < items.size() && j - i < width &&
                   items[j].fault.layer == items[i].fault.layer &&
                   fault::same_ensemble_family(items[j].fault.model,
                                               items[i].fault.model))
                ++j;
            groups.emplace_back(i, j);
            i = j;
        }
    }

    const auto work = [&](std::size_t w) {
        std::vector<fault::Fault> batch;
        std::vector<FaultOutcome> outs;
        for (std::size_t g = w; g < groups.size(); g += workers) {
            if (cancel && cancel->stop_requested()) return;
            const auto [lo, hi] = groups[g];
            batch.clear();
            for (std::size_t i = lo; i < hi; ++i)
                batch.push_back(items[i].fault);
            outs.assign(batch.size(), FaultOutcome::NonCritical);
            workers_[w]->core.evaluate_group(batch, outs.data());
            for (std::size_t i = lo; i < hi; ++i) {
                outcomes[i] = static_cast<std::uint8_t>(outs[i - lo]);
                evaluated[i] = 1;
            }
        }
    };
    if (workers == 1) {
        work(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
        for (auto& t : threads) t.join();
    }

    // The accumulation loop runs serially in canonical item order, so the
    // estimator updates emitted here are a function of (plan, rng, model)
    // alone — byte-identical across worker counts. Cadence: one update per
    // stratum at each power-of-two done count, plus the final point below.
    telemetry::EventLog* log = telemetry_ ? telemetry_->events() : nullptr;
    std::vector<std::uint64_t> last_emit;
    if (log)
        last_emit.assign(plan.subpops.size(),
                         std::numeric_limits<std::uint64_t>::max());
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (!evaluated[i]) {
            result.interrupted = true;
            continue;
        }
        const std::size_t s = items[i].subpop;
        SubpopResult& tally = result.subpops[s];
        accumulate_outcome(tally, items[i].fault.layer,
                           static_cast<FaultOutcome>(outcomes[i]));
        if (log && (tally.injected & (tally.injected - 1)) == 0) {
            emit_stratum_update(*log, s, tally.plan, tally.injected,
                                tally.critical, plan.spec.confidence);
            last_emit[s] = tally.injected;
        }
    }
    if (log) {
        // Final point per stratum — also the only point for strata an
        // interruption left untouched (done = 0).
        for (std::size_t s = 0; s < result.subpops.size(); ++s) {
            const SubpopResult& sub = result.subpops[s];
            if (last_emit[s] != sub.injected)
                emit_stratum_update(*log, s, sub.plan, sub.injected,
                                    sub.critical, plan.spec.confidence);
        }
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

CampaignFingerprint item_space_fingerprint(CampaignFingerprint fp,
                                           std::uint64_t item_count) {
    fp.universe_size = item_count;
    fp.model_id += "#items";
    return fp;
}

StatisticalRun CampaignEngine::run_durable(const fault::FaultUniverse& universe,
                                           const CampaignPlan& plan,
                                           const std::vector<DrawnFault>& items,
                                           const DurabilityOptions& options,
                                           const ProgressFn& progress) {
    telemetry::PhaseScope scope(telemetry_, "classify");
    const auto start = std::chrono::steady_clock::now();
    StatisticalRun run;
    const auto total = static_cast<std::uint64_t>(items.size());
    const std::uint64_t lo_all = options.range_begin;
    const std::uint64_t hi_all =
        options.range_end == 0 ? total : options.range_end;
    if (lo_all >= hi_all || hi_all > total)
        throw std::invalid_argument(
            "run_durable: item range [" + std::to_string(lo_all) + ", " +
            std::to_string(hi_all) + ") is empty or exceeds the " +
            std::to_string(total) + "-item sample");
    const std::uint64_t span = hi_all - lo_all;
    run.outcomes.assign(span, 0);
    // done[i] == 1: the outcome of item lo_all + i is known (journal replay
    // or fresh classification). Each slot is owned by exactly one worker.
    std::vector<std::uint8_t> done(span, 0);

    std::optional<CampaignJournal> journal;
    if (!options.journal_path.empty()) {
        telemetry::PhaseScope replay_scope(telemetry_, "resume_replay");
        const CampaignFingerprint fp = item_space_fingerprint(
            fingerprint(universe, options.model_id), total);
        auto recovery = CampaignJournal::recover(options.journal_path, fp);
        if (!recovery.note.empty())
            std::cerr << "statfi: " << recovery.note << "\n";
        for (const JournalRecord& rec : recovery.records) {
            if (rec.fault_index < lo_all || rec.fault_index >= hi_all) continue;
            const std::uint64_t local = rec.fault_index - lo_all;
            run.outcomes[local] = rec.outcome;
            if (!done[local]) {
                done[local] = 1;
                ++run.resumed;
            }
        }
        journal.emplace(CampaignJournal::open(options.journal_path, fp,
                                              recovery.valid_bytes));
        if (telemetry_) {
            telemetry_->metrics().inc(
                0, telemetry_->ids().journal_resumed_total, run.resumed);
            if (run.resumed && telemetry_->events())
                telemetry_->events()->emit(
                    telemetry::Event("resume").field("replayed", run.resumed));
        }
    }

    const telemetry::MetricIds* ids = telemetry_ ? &telemetry_->ids() : nullptr;
    // Statistical samples are often a few hundred items — far below the
    // census default stride of 4096 — so scale the heartbeat to ~64 beats
    // per run (stride must stay a power of two).
    std::uint64_t stride = 1;
    while (stride * 64 < span) stride <<= 1;
    telemetry::ProgressReporter reporter(progress, span, run.resumed, stride);
    std::atomic<std::uint64_t> classified{0};
    std::atomic<bool> cancelled{false};
    std::mutex sink_mutex;  // guards journal appends + progress callback
    std::uint64_t since_flush = 0;

    const std::size_t workers = workers_.size();
    const std::uint64_t chunk = (span + workers - 1) / workers;
    const std::size_t width = std::max<std::size_t>(1, config().ensemble_width);
    const auto work = [&](std::size_t w) {
        const std::uint64_t lo = w * chunk;
        const std::uint64_t hi = std::min(lo + chunk, span);
        std::vector<fault::Fault> batch;
        std::vector<std::uint64_t> idx;  // local item index per batch member
        std::vector<FaultOutcome> outs;
        std::uint64_t i = lo;
        while (i < hi) {
            if (done[i]) {
                ++i;
                continue;
            }
            if (cancelled.load(std::memory_order_relaxed)) return;
            if (options.cancel && options.cancel->stop_requested()) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            // Gather consecutive pending items sharing (layer, model) —
            // resumed (done) items inside the window are stepped over, they
            // cost nothing either way.
            batch.clear();
            idx.clear();
            const fault::Fault& first = items[lo_all + i].fault;
            std::uint64_t j = i;
            while (j < hi && batch.size() < width) {
                if (done[j]) {
                    ++j;
                    continue;
                }
                const fault::Fault& f = items[lo_all + j].fault;
                if (f.layer != first.layer ||
                    !fault::same_ensemble_family(f.model, first.model))
                    break;
                batch.push_back(f);
                idx.push_back(j);
                ++j;
            }
            i = j;
            outs.assign(batch.size(), FaultOutcome::NonCritical);
            workers_[w]->core.evaluate_group(batch, outs.data());
            for (std::size_t b = 0; b < batch.size(); ++b) {
                run.outcomes[idx[b]] = static_cast<std::uint8_t>(outs[b]);
                done[idx[b]] = 1;
            }
            const std::uint64_t n =
                classified.fetch_add(batch.size(),
                                     std::memory_order_relaxed) +
                batch.size();
            // A group advances the count by its size, so a heartbeat is due
            // when any stride boundary inside the jump was crossed.
            bool beat = false;
            for (std::uint64_t m = n - batch.size() + 1;
                 m <= n && !beat; ++m)
                beat = reporter.due(run.resumed + m);
            if (journal || beat) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                if (journal) {
                    for (std::size_t b = 0; b < batch.size(); ++b) {
                        journal->append(lo_all + idx[b],
                                        static_cast<std::uint8_t>(outs[b]));
                        if (telemetry_)
                            telemetry_->metrics().inc(
                                0, ids->journal_records_total);
                        if (++since_flush >= options.flush_interval) {
                            journal->flush();
                            if (telemetry_)
                                telemetry_->metrics().inc(
                                    0, ids->checkpoint_flushes_total);
                            since_flush = 0;
                        }
                    }
                }
                if (beat) reporter.report(run.resumed + n);
            }
        }
    };
    if (workers == 1) {
        work(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
        for (auto& t : threads) t.join();
    }

    run.classified = classified.load();
    run.complete = !cancelled.load();
    if (journal) {
        journal->flush();
        if (telemetry_)
            telemetry_->metrics().inc(0, ids->checkpoint_flushes_total);
    }
    if (run.complete) reporter.finish(run.classified);

    // Serial accumulation in canonical item order — identical to run()'s,
    // so resumed/sharded tallies are byte-identical to an uninterrupted
    // single-process run. Only full-range runs emit estimator updates: a
    // shard's slice is not a population.
    run.result = make_empty_result(
        static_cast<std::size_t>(universe.layer_count()), plan);
    run.result.interrupted = !run.complete;
    const bool full_range = lo_all == 0 && hi_all == total;
    telemetry::EventLog* log =
        (telemetry_ && full_range) ? telemetry_->events() : nullptr;
    std::vector<std::uint64_t> last_emit;
    if (log)
        last_emit.assign(plan.subpops.size(),
                         std::numeric_limits<std::uint64_t>::max());
    for (std::uint64_t i = lo_all; i < hi_all; ++i) {
        if (!done[i - lo_all]) continue;
        const std::size_t s = items[i].subpop;
        SubpopResult& tally = run.result.subpops[s];
        accumulate_outcome(tally, items[i].fault.layer,
                           static_cast<FaultOutcome>(run.outcomes[i - lo_all]));
        if (log && (tally.injected & (tally.injected - 1)) == 0) {
            emit_stratum_update(*log, s, tally.plan, tally.injected,
                                tally.critical, plan.spec.confidence);
            last_emit[s] = tally.injected;
        }
    }
    if (log) {
        for (std::size_t s = 0; s < run.result.subpops.size(); ++s) {
            const SubpopResult& sub = run.result.subpops[s];
            if (last_emit[s] != sub.injected)
                emit_stratum_update(*log, s, sub.plan, sub.injected,
                                    sub.critical, plan.spec.confidence);
        }
    }
    run.result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return run;
}

CampaignResult CampaignEngine::run_campaign(const fault::FaultUniverse& universe,
                                            const CampaignSpec& spec,
                                            stats::Rng rng,
                                            const CancellationToken* cancel) {
    return run(universe, plan(universe, spec), rng, cancel);
}

ExhaustiveOutcomes CampaignEngine::run_exhaustive(
    const fault::FaultUniverse& universe, const ProgressFn& progress) {
    return run_exhaustive_durable(universe, DurabilityOptions{}, progress)
        .outcomes;
}

ExhaustiveRun CampaignEngine::run_exhaustive_durable(
    const fault::FaultUniverse& universe, const DurabilityOptions& options,
    const ProgressFn& progress) {
    telemetry::PhaseScope census_scope(telemetry_, "census");
    ExhaustiveRun run;
    run.outcomes = ExhaustiveOutcomes(universe.total());
    const std::uint64_t total = universe.total();
    // Range restriction (shard runner hook): the run covers [lo_all, hi_all)
    // and every count/heartbeat below is relative to that span.
    const std::uint64_t lo_all = options.range_begin;
    const std::uint64_t hi_all =
        options.range_end == 0 ? total : options.range_end;
    if (lo_all >= hi_all || hi_all > total)
        throw std::invalid_argument(
            "run_exhaustive_durable: fault range [" + std::to_string(lo_all) +
            ", " + std::to_string(hi_all) + ") is empty or exceeds the " +
            std::to_string(total) + "-fault universe");
    const std::uint64_t span = hi_all - lo_all;

    // Resume: replay every journaled record, then classify the remainder.
    std::vector<std::uint8_t> already_done;
    std::optional<CampaignJournal> journal;
    if (!options.journal_path.empty()) {
        telemetry::PhaseScope replay_scope(telemetry_, "resume_replay");
        const CampaignFingerprint fp = fingerprint(universe, options.model_id);
        auto recovery = CampaignJournal::recover(options.journal_path, fp);
        if (!recovery.note.empty())
            std::cerr << "statfi: " << recovery.note << "\n";
        already_done.assign(total, 0);
        for (const JournalRecord& rec : recovery.records) {
            // Out-of-range records are defensive no-ops: a universe-sized
            // index would be corruption (CRC passed, so unlikely), one
            // outside [lo_all, hi_all) a journal shared across shards.
            if (rec.fault_index < lo_all || rec.fault_index >= hi_all) continue;
            run.outcomes.set(rec.fault_index,
                             static_cast<FaultOutcome>(rec.outcome));
            if (!already_done[rec.fault_index]) {
                already_done[rec.fault_index] = 1;
                ++run.resumed;
            }
        }
        journal.emplace(CampaignJournal::open(options.journal_path, fp,
                                              recovery.valid_bytes));
        if (telemetry_) {
            telemetry_->metrics().inc(
                0, telemetry_->ids().journal_resumed_total, run.resumed);
            if (run.resumed && telemetry_->events())
                telemetry_->events()->emit(
                    telemetry::Event("resume").field("replayed", run.resumed));
        }
    }

    // Sink-side telemetry (journal appends, flushes) happens under
    // sink_mutex, so it is serialized into worker 0's slot regardless of
    // which worker reached the sink — the mutex provides the single-writer
    // guarantee the registry's relaxed load+store increments need.
    const telemetry::MetricIds* ids =
        telemetry_ ? &telemetry_->ids() : nullptr;
    telemetry::ProgressReporter reporter(progress, span, run.resumed);
    std::atomic<std::uint64_t> classified{0};
    std::atomic<bool> cancelled{false};
    std::mutex sink_mutex;  // guards journal appends + progress callback
    std::uint64_t since_flush = 0;

    // Per-worker contiguous global-index ranges; ascending index order
    // within a chunk matches the universe's nested (layer, bit, local)
    // enumeration, and each table slot is written by exactly one worker,
    // so only the journal/progress sink needs the lock.
    const std::size_t workers = workers_.size();
    const std::uint64_t chunk = (span + workers - 1) / workers;
    const std::size_t width = std::max<std::size_t>(1, config().ensemble_width);
    const auto work = [&](std::size_t w) {
        const std::uint64_t lo = lo_all + w * chunk;
        const std::uint64_t hi = std::min(lo + chunk, hi_all);
        std::vector<fault::Fault> batch;
        std::vector<std::uint64_t> idx;  // global fault index per member
        std::vector<FaultOutcome> outs;
        std::uint64_t i = lo;
        while (i < hi) {
            if (!already_done.empty() && already_done[i]) {
                ++i;
                continue;
            }
            if (cancelled.load(std::memory_order_relaxed)) return;
            if (options.cancel && options.cancel->stop_requested()) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            // Gather consecutive pending indices sharing (layer, model).
            // The universe enumerates layer-slowest, so whole-width groups
            // are the common case; layer boundaries just end a group early.
            batch.clear();
            idx.clear();
            std::uint64_t j = i;
            while (j < hi && batch.size() < width) {
                if (!already_done.empty() && already_done[j]) {
                    ++j;
                    continue;
                }
                const fault::Fault f = universe.decode(j);
                if (!batch.empty() &&
                    (f.layer != batch.front().layer ||
                     !fault::same_ensemble_family(f.model, batch.front().model)))
                    break;
                batch.push_back(f);
                idx.push_back(j);
                ++j;
            }
            i = j;
            outs.assign(batch.size(), FaultOutcome::NonCritical);
            workers_[w]->core.evaluate_group(batch, outs.data());
            for (std::size_t b = 0; b < batch.size(); ++b)
                run.outcomes.set(idx[b], outs[b]);
            const std::uint64_t n =
                classified.fetch_add(batch.size(),
                                     std::memory_order_relaxed) +
                batch.size();
            bool beat = false;
            for (std::uint64_t m = n - batch.size() + 1;
                 m <= n && !beat; ++m)
                beat = reporter.due(run.resumed + m);
            if (journal || beat) {
                std::lock_guard<std::mutex> lock(sink_mutex);
                if (journal) {
                    for (std::size_t b = 0; b < batch.size(); ++b) {
                        journal->append(idx[b],
                                        static_cast<std::uint8_t>(outs[b]));
                        if (telemetry_)
                            telemetry_->metrics().inc(
                                0, ids->journal_records_total);
                        if (++since_flush >= options.flush_interval) {
                            if (telemetry_) {
                                const auto t0 =
                                    std::chrono::steady_clock::now();
                                journal->flush();
                                telemetry_->metrics().observe(
                                    0, ids->flush_seconds,
                                    std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
                                telemetry_->metrics().inc(
                                    0, ids->checkpoint_flushes_total);
                            } else {
                                journal->flush();
                            }
                            since_flush = 0;
                        }
                    }
                }
                if (beat) reporter.report(run.resumed + n);
            }
        }
    };
    if (workers == 1) {
        work(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
        for (auto& t : threads) t.join();
    }

    run.classified = classified.load();
    run.complete = !cancelled.load();
    if (journal) {
        journal->flush();
        if (telemetry_)
            telemetry_->metrics().inc(0, ids->checkpoint_flushes_total);
    }
    if (run.complete) reporter.finish(run.classified);
    if (telemetry_ && telemetry_->events() && run.complete && lo_all == 0 &&
        hi_all == total) {
        // Exact per-(layer, bit) strata of a full census. Range-restricted
        // (shard) runs skip this — their slice is not a population, the
        // merger emits strata once all shards are pooled.
        emit_census_strata(*telemetry_->events(), universe, run.outcomes,
                           0.99);
    }
    return run;
}

}  // namespace statfi::core

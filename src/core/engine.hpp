#pragma once
// CampaignEngine: the single execution facade for fault-injection
// campaigns. CampaignSpec -> plan -> execute -> CampaignResult, with the
// worker count a runtime knob instead of a class choice — serial execution
// is simply the 1-worker case, so the statistical `run`, the durable
// census, cancellation, and progress/ETA logic each exist exactly once.
//
// Determinism contract: results are bit-identical across worker counts and
// across interrupt/resume points.
//  * Statistical runs draw every sample up front with the same per-subpop
//    RNG stream layout regardless of workers; classification of a fault is
//    a deterministic function of (network, eval set, fault), so the
//    work partitioning cannot change the tallies.
//  * The census walks global fault indices in ascending order (contiguous
//    per-worker chunks); each table slot is written by exactly one worker.
//  * Worker count never enters the campaign fingerprint.
// tests/core/engine_test.cpp and durability_test.cpp assert all of this.

#include <memory>

#include "core/classification_core.hpp"
#include "core/data_aware.hpp"

namespace statfi::core {

/// What campaign to run, planner-level. dtype and policy live in
/// ExecutorConfig (they identify the campaign); the spec picks the
/// sampling approach and its statistical parameters.
struct CampaignSpec {
    Approach approach = Approach::NetworkWise;
    stats::SampleSpec sample;
    /// Data-aware analysis knobs (DataAware only). dtype/quant are derived
    /// from the engine's config and weights; the rest is honored as given.
    DataAwareConfig analysis;
};

/// One drawn statistical sample item: the subpopulation it tallies into and
/// the concrete fault.
struct DrawnFault {
    std::size_t subpop = 0;
    fault::Fault fault;
};

/// Materialize a statistical plan's full drawn sample in the canonical item
/// order (subpopulations in plan order, each subpopulation's indices
/// ascending). A pure function of (universe, plan, rng): worker count and
/// execution partitioning never enter, which is what lets a sharded run
/// classify any contiguous item range independently and still merge
/// bit-identical to an unsharded run (src/shard/).
std::vector<DrawnFault> draw_plan(const fault::FaultUniverse& universe,
                                  const CampaignPlan& plan, stats::Rng rng);

/// Identity of a statistical run's journal: the campaign fingerprint over
/// the ITEM space instead of the fault universe. Swapping the size and
/// tagging the model id guarantees a census journal never resumes into a
/// statistical run (and vice versa) even at the same path.
CampaignFingerprint item_space_fingerprint(CampaignFingerprint fp,
                                           std::uint64_t item_count);

class CampaignEngine {
public:
    /// Clones @p net once per worker, so campaign corruption never touches
    /// the caller's weights. @p threads == 0 means hardware concurrency.
    /// @p telemetry (optional, borrowed — must outlive the engine) receives
    /// phase spans, per-worker counters, and gauges; nullptr disables all
    /// instrumentation at the cost of one pointer compare per fault.
    CampaignEngine(const nn::Network& net, const data::Dataset& eval,
                   ExecutorConfig config = {}, std::size_t threads = 1,
                   telemetry::Session* telemetry = nullptr);
    ~CampaignEngine();
    CampaignEngine(CampaignEngine&&) noexcept;
    CampaignEngine& operator=(CampaignEngine&&) noexcept;

    [[nodiscard]] std::size_t worker_count() const noexcept;
    [[nodiscard]] const ExecutorConfig& config() const noexcept;
    [[nodiscard]] double golden_accuracy() const;
    [[nodiscard]] const std::vector<int>& golden_predictions() const;
    /// Total faulty inferences summed over all workers.
    [[nodiscard]] std::uint64_t inference_count() const;

    /// Direct access to a worker's kernel (worker 0 by default) — for
    /// single-fault probes and the adaptive refinement loop.
    [[nodiscard]] ClassificationCore& core(std::size_t worker = 0);

    /// Classify one fault on worker 0.
    FaultOutcome evaluate(const fault::Fault& fault);

    /// See ClassificationCore::fingerprint.
    [[nodiscard]] CampaignFingerprint fingerprint(
        const fault::FaultUniverse& universe, std::string model_id) const;

    /// Turn a spec into a concrete plan. For DataAware this runs the
    /// golden-weight bit-criticality analysis on worker 0's clone (deriving
    /// the Int8 quantization scale from the weights when needed).
    [[nodiscard]] CampaignPlan plan(const fault::FaultUniverse& universe,
                                    const CampaignSpec& spec);

    /// Execute a statistical plan: per subpopulation, draw the planned
    /// number of faults without replacement (independent sub-streams of
    /// @p rng) and classify each. @p cancel (optional) stops between
    /// faults; the partial result is marked interrupted.
    CampaignResult run(const fault::FaultUniverse& universe,
                       const CampaignPlan& plan, stats::Rng rng,
                       const CancellationToken* cancel = nullptr);

    /// plan() + run() in one call — the facade the CLI, examples, and
    /// benches use. Exhaustive specs run the whole universe through the
    /// same path (every subpopulation fully sampled).
    CampaignResult run_campaign(const fault::FaultUniverse& universe,
                                const CampaignSpec& spec, stats::Rng rng,
                                const CancellationToken* cancel = nullptr);

    /// Classify every fault in the universe. @p progress (optional) is
    /// invoked every few thousand faults with rate/ETA heartbeat.
    ExhaustiveOutcomes run_exhaustive(const fault::FaultUniverse& universe,
                                      const ProgressFn& progress = {});

    /// run() with durability — the statistical twin of
    /// run_exhaustive_durable, shared by the shard runner and the CLI's
    /// resumable campaigns. Classifies the drawn items of
    /// [options.range_begin, options.range_end) (whole sample when
    /// range_end == 0), journaling absolute ITEM indices under the
    /// item-space fingerprint. Full-range runs emit the same canonical
    /// stratum_update cadence as run(); range-restricted (shard) runs skip
    /// emission — their slice is not a population.
    StatisticalRun run_durable(const fault::FaultUniverse& universe,
                               const CampaignPlan& plan,
                               const std::vector<DrawnFault>& items,
                               const DurabilityOptions& options,
                               const ProgressFn& progress = {});

    /// run_exhaustive with durability: journaled checkpoints every record
    /// (flushed every flush_interval), resume from a matching journal, and
    /// cooperative cancellation. Resuming an interrupted run produces
    /// outcomes bit-identical to an uninterrupted one, for any interruption
    /// point and any worker count.
    ExhaustiveRun run_exhaustive_durable(const fault::FaultUniverse& universe,
                                         const DurabilityOptions& options,
                                         const ProgressFn& progress = {});

    /// The telemetry session this engine reports into (nullptr when off).
    [[nodiscard]] telemetry::Session* telemetry() const noexcept {
        return telemetry_;
    }

private:
    struct Worker;
    std::vector<std::unique_ptr<Worker>> workers_;
    telemetry::Session* telemetry_ = nullptr;
};

}  // namespace statfi::core

#include "core/estimator.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/sample_size.hpp"

namespace statfi::core {

namespace {

/// Rate used inside the variance term (see EstimatorConfig::laplace_smoothing).
double margin_rate(std::uint64_t critical, std::uint64_t injected,
                   bool laplace_smoothing) {
    if (injected == 0) return 0.5;  // no data: maximal variance
    if (laplace_smoothing && (critical == 0 || critical == injected))
        return (static_cast<double>(critical) + 1.0) /
               (static_cast<double>(injected) + 2.0);
    return static_cast<double>(critical) / static_cast<double>(injected);
}

Estimate make_estimate(std::uint64_t population, std::uint64_t injected,
                       std::uint64_t critical, const EstimatorConfig& config) {
    Estimate est;
    est.population = population;
    est.injected = injected;
    est.critical = critical;
    est.rate = injected ? static_cast<double>(critical) /
                              static_cast<double>(injected)
                        : 0.0;
    const double t =
        stats::confidence_coefficient(config.confidence, config.mode);
    if (injected == 0) {
        // Nothing observed: the interval is the whole range.
        est.margin = 1.0;
        est.interval = stats::Interval{0.0, 1.0};
        return est;
    }
    est.margin = stats::achieved_error_margin_at(
        population, injected,
        margin_rate(critical, injected, config.laplace_smoothing), t);
    est.interval = stats::Interval{std::max(0.0, est.rate - est.margin),
                                   std::min(1.0, est.rate + est.margin)};
    return est;
}

/// Compose independent stratum estimates into a population-weighted whole:
/// rate = sum(w_h * rate_h), var = sum(w_h^2 * var_h), w_h = N_h / N.
Estimate compose_strata(const std::vector<Estimate>& strata,
                        const EstimatorConfig& config) {
    Estimate out;
    double weighted_rate = 0.0;
    double weighted_var = 0.0;
    double total_pop = 0.0;
    for (const auto& s : strata) total_pop += static_cast<double>(s.population);
    if (total_pop == 0.0) return out;
    const double t =
        stats::confidence_coefficient(config.confidence, config.mode);
    for (const auto& s : strata) {
        const double w = static_cast<double>(s.population) / total_pop;
        weighted_rate += w * s.rate;
        // Back out the stratum variance from its margin: var = (e/t)^2.
        const double stratum_sd = s.margin / t;
        weighted_var += w * w * stratum_sd * stratum_sd;
        out.population += s.population;
        out.injected += s.injected;
        out.critical += s.critical;
    }
    out.rate = weighted_rate;
    out.margin = t * std::sqrt(weighted_var);
    out.interval = stats::Interval{std::max(0.0, out.rate - out.margin),
                                   std::min(1.0, out.rate + out.margin)};
    return out;
}

}  // namespace

Estimate estimate_subpop(const SubpopResult& result,
                         const EstimatorConfig& config) {
    return make_estimate(result.plan.population, result.injected,
                         result.critical, config);
}

std::vector<LayerEstimate> estimate_layers(const fault::FaultUniverse& universe,
                                           const CampaignResult& result,
                                           const EstimatorConfig& config) {
    const int L = universe.layer_count();
    std::vector<std::vector<Estimate>> strata(static_cast<std::size_t>(L));

    for (const auto& sp : result.subpops) {
        if (sp.plan.layer >= 0) {
            strata[static_cast<std::size_t>(sp.plan.layer)].push_back(
                estimate_subpop(sp, config));
        } else {
            // Spanning subpopulation: each layer's share of the sample is a
            // simple random sample of that layer.
            if (sp.layer_injected.size() != static_cast<std::size_t>(L))
                throw std::invalid_argument(
                    "estimate_layers: spanning subpopulation lacks per-layer "
                    "tallies");
            for (int l = 0; l < L; ++l)
                strata[static_cast<std::size_t>(l)].push_back(make_estimate(
                    universe.layer_population(l),
                    sp.layer_injected[static_cast<std::size_t>(l)],
                    sp.layer_critical[static_cast<std::size_t>(l)], config));
        }
    }

    std::vector<LayerEstimate> layers;
    layers.reserve(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
        LayerEstimate le;
        le.layer = l;
        auto& s = strata[static_cast<std::size_t>(l)];
        if (s.size() == 1)
            le.estimate = s.front();
        else if (!s.empty())
            le.estimate = compose_strata(s, config);
        layers.push_back(le);
    }
    return layers;
}

Estimate estimate_network(const fault::FaultUniverse& universe,
                          const CampaignResult& result,
                          const EstimatorConfig& config) {
    // Network-wise plans already are one simple random sample of the
    // network; stratified plans compose their subpopulations.
    if (result.subpops.size() == 1 && result.subpops.front().plan.layer < 0)
        return estimate_subpop(result.subpops.front(), config);
    std::vector<Estimate> strata;
    strata.reserve(result.subpops.size());
    for (const auto& sp : result.subpops)
        strata.push_back(estimate_subpop(sp, config));
    auto est = compose_strata(strata, config);
    (void)universe;
    return est;
}

double average_layer_margin(const std::vector<LayerEstimate>& layers) {
    if (layers.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& le : layers) sum += le.estimate.margin;
    return sum / static_cast<double>(layers.size());
}

Validation validate_against_exhaustive(const fault::FaultUniverse& universe,
                                       const CampaignResult& result,
                                       const ExhaustiveOutcomes& truth,
                                       const EstimatorConfig& config) {
    Validation v;
    const auto layers = estimate_layers(universe, result, config);
    v.layers_total = static_cast<int>(layers.size());
    for (const auto& le : layers) {
        const double exhaustive_rate =
            truth.layer_critical_rate(universe, le.layer);
        if (le.estimate.contains(exhaustive_rate)) ++v.layers_contained;
        v.max_layer_abs_error = std::max(
            v.max_layer_abs_error, std::fabs(le.estimate.rate - exhaustive_rate));
    }
    v.avg_layer_margin = average_layer_margin(layers);
    const auto network = estimate_network(universe, result, config);
    v.network_contained = network.contains(truth.network_critical_rate());
    return v;
}

}  // namespace statfi::core

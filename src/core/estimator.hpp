#pragma once
// Statistical estimation over campaign results: critical-rate estimates with
// finite-population error margins per subpopulation / layer / network, and
// validation against exhaustive ground truth (the paper's §V methodology:
// "if the exhaustive result falls into the error margin, the statistical
// approach is valid").
//
// Error margins are evaluated at the observed rate p_hat (the margin the
// paper reports, e.g. Table III's 0.06% for data-unaware with n ≈ 821 —
// reproducible only at p_hat, not at the planning p = 0.5). Degenerate
// observations (0 or n successes) yield a zero margin under the paper's
// construction; EstimatorConfig::laplace_smoothing optionally replaces the
// degenerate rate with (k+1)/(n+2) inside the variance term only.

#include <vector>

#include "core/outcome.hpp"
#include "stats/intervals.hpp"

namespace statfi::core {

struct EstimatorConfig {
    double confidence = 0.99;
    stats::ConfidenceCoefficient mode = stats::ConfidenceCoefficient::Table;
    /// When true, degenerate observations (0 or n successes) use the Laplace
    /// rate (k+1)/(n+2) inside the variance term instead of p_hat, so they
    /// report non-zero uncertainty. Off by default: the paper's margins are
    /// plain p_hat margins (a 0-success subpopulation contributes no margin),
    /// which is what reproduces its published "Avg Error Margin" values.
    /// The trade-off is ablated in bench_ablation_ci.
    bool laplace_smoothing = false;
};

/// A critical-rate estimate with its error margin.
struct Estimate {
    std::uint64_t population = 0;  ///< N of the estimated (sub)population
    std::uint64_t injected = 0;    ///< n
    std::uint64_t critical = 0;    ///< successes
    double rate = 0.0;             ///< p_hat = critical / injected
    double margin = 0.0;           ///< half-width e at p_hat (FPC applied)
    stats::Interval interval;      ///< [rate - margin, rate + margin] clipped

    [[nodiscard]] bool contains(double truth) const {
        return interval.contains(truth);
    }
};

/// Estimate for one subpopulation result.
Estimate estimate_subpop(const SubpopResult& result,
                         const EstimatorConfig& config = {});

struct LayerEstimate {
    int layer = 0;
    Estimate estimate;
};

/// Per-layer estimates from a campaign result.
///  * layer-wise / per-bit plans: subpopulation estimates are composed into
///    a stratified layer estimate (population-weighted rate; margin from the
///    weighted variance of the independent strata);
///  * network-wise plans: the faults that landed in each layer form a simple
///    random sample of that layer, so each layer is estimated from its own
///    (tiny) share — exactly the failure mode the paper demonstrates.
std::vector<LayerEstimate> estimate_layers(const fault::FaultUniverse& universe,
                                           const CampaignResult& result,
                                           const EstimatorConfig& config = {});

/// Whole-network estimate (strata composed across all subpopulations).
Estimate estimate_network(const fault::FaultUniverse& universe,
                          const CampaignResult& result,
                          const EstimatorConfig& config = {});

/// Mean per-layer margin — Table III's "Avg Error Margin [%]" (as a
/// fraction; multiply by 100 to print).
double average_layer_margin(const std::vector<LayerEstimate>& layers);

/// Validation verdict against exhaustive ground truth.
struct Validation {
    int layers_total = 0;
    int layers_contained = 0;  ///< exhaustive layer rate inside the interval
    bool network_contained = false;
    double avg_layer_margin = 0.0;
    double max_layer_abs_error = 0.0;  ///< max |estimate - truth| over layers
};

Validation validate_against_exhaustive(const fault::FaultUniverse& universe,
                                       const CampaignResult& result,
                                       const ExhaustiveOutcomes& truth,
                                       const EstimatorConfig& config = {});

}  // namespace statfi::core

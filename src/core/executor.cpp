#include "core/executor.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "stats/sampling.hpp"

namespace statfi::core {

const char* to_string(ClassificationPolicy policy) noexcept {
    switch (policy) {
        case ClassificationPolicy::AnyMisprediction: return "any-misprediction";
        case ClassificationPolicy::GoldenMismatch: return "golden-mismatch";
        case ClassificationPolicy::AccuracyDrop: return "accuracy-drop";
    }
    return "?";
}

std::uint64_t CampaignResult::total_injected() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.injected;
    return total;
}

std::uint64_t CampaignResult::total_critical() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.critical;
    return total;
}

double CampaignResult::critical_rate() const {
    const auto injected = total_injected();
    return injected ? static_cast<double>(total_critical()) /
                          static_cast<double>(injected)
                    : 0.0;
}

// ----------------------------------------------------- ExhaustiveOutcomes --

ExhaustiveOutcomes::ExhaustiveOutcomes(std::uint64_t universe_size)
    : outcomes_(universe_size,
                static_cast<std::uint8_t>(FaultOutcome::NonCritical)) {}

std::uint64_t ExhaustiveOutcomes::critical_count(std::uint64_t begin,
                                                 std::uint64_t end) const {
    if (begin > end || end > outcomes_.size())
        throw std::out_of_range("ExhaustiveOutcomes: bad range");
    std::uint64_t count = 0;
    for (std::uint64_t i = begin; i < end; ++i)
        if (outcomes_[i] == static_cast<std::uint8_t>(FaultOutcome::Critical))
            ++count;
    return count;
}

double ExhaustiveOutcomes::critical_rate(std::uint64_t begin,
                                         std::uint64_t end) const {
    if (begin >= end) return 0.0;
    return static_cast<double>(critical_count(begin, end)) /
           static_cast<double>(end - begin);
}

double ExhaustiveOutcomes::layer_critical_rate(const fault::FaultUniverse& u,
                                               int layer) const {
    const std::uint64_t begin = u.subpop_offset(layer, 0);
    return critical_rate(begin, begin + u.layer_population(layer));
}

double ExhaustiveOutcomes::subpop_critical_rate(const fault::FaultUniverse& u,
                                                int layer, int bit) const {
    const std::uint64_t begin = u.subpop_offset(layer, bit);
    return critical_rate(begin, begin + u.bit_population(layer));
}

double ExhaustiveOutcomes::network_critical_rate() const {
    return critical_rate(0, outcomes_.size());
}

namespace {
constexpr char kOutcomeMagic[4] = {'S', 'F', 'I', 'O'};
}

void ExhaustiveOutcomes::save(const std::string& path) const {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("ExhaustiveOutcomes::save: cannot open " + path);
    os.write(kOutcomeMagic, sizeof(kOutcomeMagic));
    const std::uint64_t size = outcomes_.size();
    os.write(reinterpret_cast<const char*>(&size), sizeof(size));
    os.write(reinterpret_cast<const char*>(outcomes_.data()),
             static_cast<std::streamsize>(outcomes_.size()));
    if (!os)
        throw std::runtime_error("ExhaustiveOutcomes::save: write failed: " + path);
}

ExhaustiveOutcomes ExhaustiveOutcomes::load(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("ExhaustiveOutcomes::load: cannot open " + path);
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::string_view(magic, 4) != std::string_view(kOutcomeMagic, 4))
        throw std::runtime_error("ExhaustiveOutcomes::load: bad magic in " + path);
    std::uint64_t size = 0;
    is.read(reinterpret_cast<char*>(&size), sizeof(size));
    ExhaustiveOutcomes out(size);
    is.read(reinterpret_cast<char*>(out.outcomes_.data()),
            static_cast<std::streamsize>(size));
    if (!is)
        throw std::runtime_error("ExhaustiveOutcomes::load: truncated: " + path);
    return out;
}

// ------------------------------------------------------- CampaignExecutor --

CampaignExecutor::CampaignExecutor(nn::Network& net, const data::Dataset& eval,
                                   ExecutorConfig config)
    : net_(&net), config_(config), injector_(net, config.dtype) {
    const std::int64_t count = eval.size();
    if (count == 0)
        throw std::invalid_argument("CampaignExecutor: empty evaluation set");
    images_.reserve(static_cast<std::size_t>(count));
    golden_acts_.resize(static_cast<std::size_t>(count));
    golden_preds_.resize(static_cast<std::size_t>(count));
    labels_ = eval.labels;

    for (std::int64_t i = 0; i < count; ++i) {
        images_.push_back(eval.image(i));
        auto& acts = golden_acts_[static_cast<std::size_t>(i)];
        net.forward_all(images_.back(), acts);
        golden_preds_[static_cast<std::size_t>(i)] =
            nn::argmax_row(acts.back(), 0);
        if (golden_preds_[static_cast<std::size_t>(i)] ==
            labels_[static_cast<std::size_t>(i)])
            ++golden_correct_;
    }
    golden_accuracy_ =
        static_cast<double>(golden_correct_) / static_cast<double>(count);

    // Golden-correct images first: under AnyMisprediction only they can flip
    // a fault to Critical, and early exit hits sooner when they lead.
    correct_order_.resize(static_cast<std::size_t>(count));
    std::iota(correct_order_.begin(), correct_order_.end(), 0);
    std::stable_partition(correct_order_.begin(), correct_order_.end(),
                          [&](std::size_t i) {
                              return golden_preds_[i] == labels_[i];
                          });
}

namespace {
/// Top-1 prediction; -1 when the winning logit is not finite (numerically
/// exploded network counts as a misprediction).
int predict(const Tensor& logits) {
    const int best = nn::argmax_row(logits, 0);
    const float v = logits[static_cast<std::size_t>(best)];
    if (!std::isfinite(v)) return -1;
    return best;
}
}  // namespace

FaultOutcome CampaignExecutor::classify_active_fault(int first_dirty_node) {
    const auto count = images_.size();
    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction: {
            for (std::size_t k = 0; k < count; ++k) {
                const std::size_t i = correct_order_[k];
                if (golden_preds_[i] != labels_[i]) break;  // incorrect tail
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) != labels_[i]) return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::GoldenMismatch: {
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_preds_[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::AccuracyDrop: {
            const double threshold =
                config_.accuracy_drop_threshold * static_cast<double>(count);
            std::uint64_t faulty_correct = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) == labels_[i]) ++faulty_correct;
                // Even if every remaining image is correct, is the drop
                // already unavoidable?
                const std::uint64_t remaining = count - 1 - i;
                const double best_case =
                    static_cast<double>(golden_correct_) -
                    static_cast<double>(faulty_correct + remaining);
                if (best_case > threshold) return FaultOutcome::Critical;
            }
            const double drop = static_cast<double>(golden_correct_) -
                                static_cast<double>(faulty_correct);
            return drop > threshold ? FaultOutcome::Critical
                                    : FaultOutcome::NonCritical;
        }
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome CampaignExecutor::evaluate(const fault::Fault& fault) {
    if (injector_.masked(fault)) return FaultOutcome::Masked;
    fault::WeightInjector::Scoped guard(injector_, fault);
    return classify_active_fault(injector_.node_of_layer(fault.layer));
}

CampaignResult CampaignExecutor::run(const fault::FaultUniverse& universe,
                                     const CampaignPlan& plan, stats::Rng rng) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.reserve(plan.subpops.size());

    std::uint64_t subpop_index = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const bool spanning = sp.layer < 0;
        if (spanning) {
            tally.layer_injected.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
            tally.layer_critical.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
        }
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        for (const std::uint64_t local : indices) {
            fault::Fault fault;
            if (sp.layer >= 0 && sp.bit >= 0) {
                fault = universe.decode_in_subpop(sp.layer, sp.bit, local);
            } else if (sp.layer >= 0) {
                fault = universe.decode(universe.subpop_offset(sp.layer, 0) +
                                        local);
            } else {
                fault = universe.decode(local);
            }
            const FaultOutcome outcome = evaluate(fault);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
            if (outcome == FaultOutcome::Masked) ++tally.masked;
            if (spanning) {
                const auto l = static_cast<std::size_t>(fault.layer);
                ++tally.layer_injected[l];
                if (outcome == FaultOutcome::Critical) ++tally.layer_critical[l];
            }
        }
        result.subpops.push_back(std::move(tally));
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

ExhaustiveOutcomes CampaignExecutor::run_exhaustive(
    const fault::FaultUniverse& universe, const Progress& progress) {
    ExhaustiveOutcomes outcomes(universe.total());
    const std::uint64_t total = universe.total();
    std::uint64_t done = 0;
    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int bit = 0; bit < universe.bits(); ++bit) {
            const std::uint64_t base = universe.subpop_offset(l, bit);
            const std::uint64_t subpop = universe.bit_population(l);
            for (std::uint64_t local = 0; local < subpop; ++local) {
                const fault::Fault fault =
                    universe.decode_in_subpop(l, bit, local);
                outcomes.set(base + local, evaluate(fault));
                if (progress && (++done & 0xFFF) == 0) progress(done, total);
            }
        }
    }
    if (progress) progress(total, total);
    return outcomes;
}

// ----------------------------------------------------------------- replay --

CampaignResult replay(const fault::FaultUniverse& universe,
                      const CampaignPlan& plan,
                      const ExhaustiveOutcomes& outcomes, stats::Rng rng) {
    if (outcomes.size() != universe.total())
        throw std::invalid_argument("replay: outcome table size mismatch");
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.reserve(plan.subpops.size());

    std::uint64_t subpop_index = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const bool spanning = sp.layer < 0;
        if (spanning) {
            tally.layer_injected.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
            tally.layer_critical.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
        }
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        std::uint64_t base = 0;
        if (sp.layer >= 0 && sp.bit >= 0)
            base = universe.subpop_offset(sp.layer, sp.bit);
        else if (sp.layer >= 0)
            base = universe.subpop_offset(sp.layer, 0);
        for (const std::uint64_t local : indices) {
            const FaultOutcome outcome = outcomes.at(base + local);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
            if (outcome == FaultOutcome::Masked) ++tally.masked;
            if (spanning) {
                const auto l = static_cast<std::size_t>(
                    universe.decode(base + local).layer);
                ++tally.layer_injected[l];
                if (outcome == FaultOutcome::Critical) ++tally.layer_critical[l];
            }
        }
        result.subpops.push_back(std::move(tally));
    }
    return result;
}

}  // namespace statfi::core

#include "core/executor.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"
#include "stats/sampling.hpp"

namespace statfi::core {

const char* to_string(ClassificationPolicy policy) noexcept {
    switch (policy) {
        case ClassificationPolicy::AnyMisprediction: return "any-misprediction";
        case ClassificationPolicy::GoldenMismatch: return "golden-mismatch";
        case ClassificationPolicy::AccuracyDrop: return "accuracy-drop";
    }
    return "?";
}

std::uint64_t CampaignResult::total_injected() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.injected;
    return total;
}

std::uint64_t CampaignResult::total_critical() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.critical;
    return total;
}

double CampaignResult::critical_rate() const {
    const auto injected = total_injected();
    return injected ? static_cast<double>(total_critical()) /
                          static_cast<double>(injected)
                    : 0.0;
}

// ----------------------------------------------------- ExhaustiveOutcomes --

ExhaustiveOutcomes::ExhaustiveOutcomes(std::uint64_t universe_size)
    : outcomes_(universe_size,
                static_cast<std::uint8_t>(FaultOutcome::NonCritical)) {}

std::uint64_t ExhaustiveOutcomes::critical_count(std::uint64_t begin,
                                                 std::uint64_t end) const {
    if (begin > end || end > outcomes_.size())
        throw std::out_of_range("ExhaustiveOutcomes: bad range");
    std::uint64_t count = 0;
    for (std::uint64_t i = begin; i < end; ++i)
        if (outcomes_[i] == static_cast<std::uint8_t>(FaultOutcome::Critical))
            ++count;
    return count;
}

double ExhaustiveOutcomes::critical_rate(std::uint64_t begin,
                                         std::uint64_t end) const {
    if (begin >= end) return 0.0;
    return static_cast<double>(critical_count(begin, end)) /
           static_cast<double>(end - begin);
}

double ExhaustiveOutcomes::layer_critical_rate(const fault::FaultUniverse& u,
                                               int layer) const {
    const std::uint64_t begin = u.subpop_offset(layer, 0);
    return critical_rate(begin, begin + u.layer_population(layer));
}

double ExhaustiveOutcomes::subpop_critical_rate(const fault::FaultUniverse& u,
                                                int layer, int bit) const {
    const std::uint64_t begin = u.subpop_offset(layer, bit);
    return critical_rate(begin, begin + u.bit_population(layer));
}

double ExhaustiveOutcomes::network_critical_rate() const {
    return critical_rate(0, outcomes_.size());
}

namespace {
constexpr char kOutcomeMagic[4] = {'S', 'F', 'I', 'O'};
// v2 adds the version word and a CRC32 trailer over the payload; v1 files
// (no version, no checksum) fail the version check and are regenerated.
constexpr std::uint32_t kOutcomeVersion = 2;
constexpr std::size_t kOutcomeHeaderSize =
    sizeof(kOutcomeMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::string hex32(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}
}  // namespace

void ExhaustiveOutcomes::save(const std::string& path) const {
    io::write_file_atomic(path, [&](std::ostream& os) {
        os.write(kOutcomeMagic, sizeof(kOutcomeMagic));
        const std::uint32_t version = kOutcomeVersion;
        os.write(reinterpret_cast<const char*>(&version), sizeof(version));
        const std::uint64_t size = outcomes_.size();
        os.write(reinterpret_cast<const char*>(&size), sizeof(size));
        os.write(reinterpret_cast<const char*>(outcomes_.data()),
                 static_cast<std::streamsize>(outcomes_.size()));
        const std::uint32_t checksum =
            io::crc32(outcomes_.data(), outcomes_.size());
        os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    });
}

ExhaustiveOutcomes ExhaustiveOutcomes::load(const std::string& path) {
    const auto fail = [&](const std::string& why) -> std::runtime_error {
        return std::runtime_error("ExhaustiveOutcomes::load: " + why + " in " +
                                  path);
    };
    std::string bytes;
    if (!io::read_file(path, bytes))
        throw std::runtime_error("ExhaustiveOutcomes::load: cannot open " + path);
    if (bytes.size() < kOutcomeHeaderSize)
        throw fail("short header (" + std::to_string(bytes.size()) +
                   " bytes, need " + std::to_string(kOutcomeHeaderSize) + ")");
    if (bytes.compare(0, sizeof(kOutcomeMagic), kOutcomeMagic,
                      sizeof(kOutcomeMagic)) != 0)
        throw fail("bad magic (want \"SFIO\")");
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kOutcomeMagic), sizeof(version));
    if (version != kOutcomeVersion)
        throw fail("unsupported version " + std::to_string(version) +
                   " (supported: " + std::to_string(kOutcomeVersion) + ")");
    std::uint64_t size = 0;
    std::memcpy(&size, bytes.data() + sizeof(kOutcomeMagic) + sizeof(version),
                sizeof(size));
    const std::uint64_t expected =
        kOutcomeHeaderSize + size + sizeof(std::uint32_t);
    if (bytes.size() != expected)
        throw fail("truncated payload (header promises " +
                   std::to_string(size) + " outcomes = " +
                   std::to_string(expected) + " bytes, file has " +
                   std::to_string(bytes.size()) + ")");
    const char* payload = bytes.data() + kOutcomeHeaderSize;
    std::uint32_t stored = 0;
    std::memcpy(&stored, payload + size, sizeof(stored));
    const std::uint32_t computed = io::crc32(payload, size);
    if (stored != computed)
        throw fail("checksum mismatch (stored " + hex32(stored) +
                   ", computed " + hex32(computed) + ")");
    ExhaustiveOutcomes out(size);
    std::memcpy(out.outcomes_.data(), payload, size);
    return out;
}

// ------------------------------------------------------- CampaignExecutor --

CampaignExecutor::CampaignExecutor(nn::Network& net, const data::Dataset& eval,
                                   ExecutorConfig config)
    : net_(&net), config_(config), injector_(net, config.dtype) {
    const std::int64_t count = eval.size();
    if (count == 0)
        throw std::invalid_argument("CampaignExecutor: empty evaluation set");
    images_.reserve(static_cast<std::size_t>(count));
    golden_acts_.resize(static_cast<std::size_t>(count));
    golden_preds_.resize(static_cast<std::size_t>(count));
    labels_ = eval.labels;

    for (std::int64_t i = 0; i < count; ++i) {
        images_.push_back(eval.image(i));
        auto& acts = golden_acts_[static_cast<std::size_t>(i)];
        net.forward_all(images_.back(), acts);
        golden_preds_[static_cast<std::size_t>(i)] =
            nn::argmax_row(acts.back(), 0);
        if (golden_preds_[static_cast<std::size_t>(i)] ==
            labels_[static_cast<std::size_t>(i)])
            ++golden_correct_;
    }
    golden_accuracy_ =
        static_cast<double>(golden_correct_) / static_cast<double>(count);

    // Golden-correct images first: under AnyMisprediction only they can flip
    // a fault to Critical, and early exit hits sooner when they lead.
    correct_order_.resize(static_cast<std::size_t>(count));
    std::iota(correct_order_.begin(), correct_order_.end(), 0);
    std::stable_partition(correct_order_.begin(), correct_order_.end(),
                          [&](std::size_t i) {
                              return golden_preds_[i] == labels_[i];
                          });
}

namespace {
/// Top-1 prediction; -1 when the winning logit is not finite (numerically
/// exploded network counts as a misprediction).
int predict(const Tensor& logits) {
    const int best = nn::argmax_row(logits, 0);
    const float v = logits[static_cast<std::size_t>(best)];
    if (!std::isfinite(v)) return -1;
    return best;
}
}  // namespace

FaultOutcome CampaignExecutor::classify_active_fault(int first_dirty_node) {
    const auto count = images_.size();
    switch (config_.policy) {
        case ClassificationPolicy::AnyMisprediction: {
            for (std::size_t k = 0; k < count; ++k) {
                const std::size_t i = correct_order_[k];
                if (golden_preds_[i] != labels_[i]) break;  // incorrect tail
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) != labels_[i]) return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::GoldenMismatch: {
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) != golden_preds_[i])
                    return FaultOutcome::Critical;
            }
            return FaultOutcome::NonCritical;
        }
        case ClassificationPolicy::AccuracyDrop: {
            const double threshold =
                config_.accuracy_drop_threshold * static_cast<double>(count);
            std::uint64_t faulty_correct = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const Tensor& logits = net_->forward_from(
                    first_dirty_node, images_[i], golden_acts_[i], scratch_);
                ++inferences_;
                if (predict(logits) == labels_[i]) ++faulty_correct;
                // Even if every remaining image is correct, is the drop
                // already unavoidable?
                const std::uint64_t remaining = count - 1 - i;
                const double best_case =
                    static_cast<double>(golden_correct_) -
                    static_cast<double>(faulty_correct + remaining);
                if (best_case > threshold) return FaultOutcome::Critical;
            }
            const double drop = static_cast<double>(golden_correct_) -
                                static_cast<double>(faulty_correct);
            return drop > threshold ? FaultOutcome::Critical
                                    : FaultOutcome::NonCritical;
        }
    }
    return FaultOutcome::NonCritical;
}

FaultOutcome CampaignExecutor::evaluate(const fault::Fault& fault) {
    if (injector_.masked(fault)) return FaultOutcome::Masked;
    fault::WeightInjector::Scoped guard(injector_, fault);
    return classify_active_fault(injector_.node_of_layer(fault.layer));
}

CampaignResult CampaignExecutor::run(const fault::FaultUniverse& universe,
                                     const CampaignPlan& plan, stats::Rng rng,
                                     const CancellationToken* cancel) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.reserve(plan.subpops.size());

    std::uint64_t subpop_index = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const bool spanning = sp.layer < 0;
        if (spanning) {
            tally.layer_injected.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
            tally.layer_critical.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
        }
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        for (const std::uint64_t local : indices) {
            if (cancel && cancel->stop_requested()) {
                result.interrupted = true;
                break;
            }
            fault::Fault fault;
            if (sp.layer >= 0 && sp.bit >= 0) {
                fault = universe.decode_in_subpop(sp.layer, sp.bit, local);
            } else if (sp.layer >= 0) {
                fault = universe.decode(universe.subpop_offset(sp.layer, 0) +
                                        local);
            } else {
                fault = universe.decode(local);
            }
            const FaultOutcome outcome = evaluate(fault);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
            if (outcome == FaultOutcome::Masked) ++tally.masked;
            if (spanning) {
                const auto l = static_cast<std::size_t>(fault.layer);
                ++tally.layer_injected[l];
                if (outcome == FaultOutcome::Critical) ++tally.layer_critical[l];
            }
        }
        result.subpops.push_back(std::move(tally));
        if (result.interrupted) break;
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

CampaignFingerprint CampaignExecutor::fingerprint(
    const fault::FaultUniverse& universe, std::string model_id) const {
    CampaignFingerprint fp;
    fp.model_id = std::move(model_id);
    fp.universe_size = universe.total();
    fp.dtype = static_cast<std::uint8_t>(config_.dtype);
    fp.policy = static_cast<std::uint8_t>(config_.policy);
    fp.accuracy_drop_threshold = config_.accuracy_drop_threshold;

    io::Crc32 eval;
    for (const auto& image : images_)
        eval.update(image.data(), image.numel() * sizeof(float));
    for (const int label : labels_) eval.update(&label, sizeof(label));
    fp.eval_hash = eval.value();

    io::Crc32 weights;
    for (const auto& ref : net_->weight_layers())
        weights.update(ref.weight->data(), ref.weight->numel() * sizeof(float));
    fp.weights_hash = weights.value();
    return fp;
}

ExhaustiveOutcomes CampaignExecutor::run_exhaustive(
    const fault::FaultUniverse& universe, const Progress& progress) {
    return run_exhaustive_durable(universe, DurabilityOptions{}, progress)
        .outcomes;
}

ExhaustiveRun CampaignExecutor::run_exhaustive_durable(
    const fault::FaultUniverse& universe, const DurabilityOptions& options,
    const Progress& progress) {
    ExhaustiveRun run;
    run.outcomes = ExhaustiveOutcomes(universe.total());
    const std::uint64_t total = universe.total();

    // Resume: replay every journaled record, then classify the remainder.
    std::vector<std::uint8_t> already_done;
    std::optional<CampaignJournal> journal;
    if (!options.journal_path.empty()) {
        const CampaignFingerprint fp = fingerprint(universe, options.model_id);
        auto recovery = CampaignJournal::recover(options.journal_path, fp);
        if (!recovery.note.empty())
            std::cerr << "statfi: " << recovery.note << "\n";
        already_done.assign(total, 0);
        for (const JournalRecord& rec : recovery.records) {
            if (rec.fault_index >= total) continue;  // defensive; CRC passed
            run.outcomes.set(rec.fault_index,
                             static_cast<FaultOutcome>(rec.outcome));
            if (!already_done[rec.fault_index]) {
                already_done[rec.fault_index] = 1;
                ++run.resumed;
            }
        }
        journal.emplace(CampaignJournal::open(options.journal_path, fp,
                                              recovery.valid_bytes));
    }

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t done = run.resumed;
    std::uint64_t since_flush = 0;
    const auto report = [&] {
        ProgressInfo info;
        info.done = done;
        info.total = total;
        info.elapsed_seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        info.faults_per_second =
            info.elapsed_seconds > 0.0
                ? static_cast<double>(run.classified) / info.elapsed_seconds
                : 0.0;
        info.eta_seconds = info.faults_per_second > 0.0
                               ? static_cast<double>(total - done) /
                                     info.faults_per_second
                               : 0.0;
        progress(info);
    };

    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int bit = 0; bit < universe.bits(); ++bit) {
            const std::uint64_t base = universe.subpop_offset(l, bit);
            const std::uint64_t subpop = universe.bit_population(l);
            for (std::uint64_t local = 0; local < subpop; ++local) {
                const std::uint64_t index = base + local;
                if (!already_done.empty() && already_done[index]) continue;
                if (options.cancel && options.cancel->stop_requested()) {
                    if (journal) journal->flush();
                    run.complete = false;
                    return run;
                }
                const fault::Fault fault =
                    universe.decode_in_subpop(l, bit, local);
                const FaultOutcome outcome = evaluate(fault);
                run.outcomes.set(index, outcome);
                ++run.classified;
                if (journal) {
                    journal->append(index, static_cast<std::uint8_t>(outcome));
                    if (++since_flush >= options.flush_interval) {
                        journal->flush();
                        since_flush = 0;
                    }
                }
                ++done;
                if (progress && (done & 0xFFF) == 0) report();
            }
        }
    }
    done = total;
    if (journal) journal->flush();
    if (progress) report();
    return run;
}

// ----------------------------------------------------------------- replay --

CampaignResult replay(const fault::FaultUniverse& universe,
                      const CampaignPlan& plan,
                      const ExhaustiveOutcomes& outcomes, stats::Rng rng) {
    if (outcomes.size() != universe.total())
        throw std::invalid_argument("replay: outcome table size mismatch");
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.reserve(plan.subpops.size());

    std::uint64_t subpop_index = 0;
    for (const auto& sp : plan.subpops) {
        auto stream = rng.fork(subpop_index++);
        SubpopResult tally;
        tally.plan = sp;
        const bool spanning = sp.layer < 0;
        if (spanning) {
            tally.layer_injected.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
            tally.layer_critical.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
        }
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        std::uint64_t base = 0;
        if (sp.layer >= 0 && sp.bit >= 0)
            base = universe.subpop_offset(sp.layer, sp.bit);
        else if (sp.layer >= 0)
            base = universe.subpop_offset(sp.layer, 0);
        for (const std::uint64_t local : indices) {
            const FaultOutcome outcome = outcomes.at(base + local);
            ++tally.injected;
            if (outcome == FaultOutcome::Critical) ++tally.critical;
            if (outcome == FaultOutcome::Masked) ++tally.masked;
            if (spanning) {
                const auto l = static_cast<std::size_t>(
                    universe.decode(base + local).layer);
                ++tally.layer_injected[l];
                if (outcome == FaultOutcome::Critical) ++tally.layer_critical[l];
            }
        }
        result.subpops.push_back(std::move(tally));
    }
    return result;
}

}  // namespace statfi::core

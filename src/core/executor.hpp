#pragma once
// Campaign execution: run fault-injection campaigns (statistical or
// exhaustive) against a network and an evaluation set.
//
// Performance model (what makes exhaustive validation feasible on a CPU):
//  * the golden activations of every node are cached once per image;
//  * a weight fault in graph node k only dirties nodes >= k, so each faulty
//    inference re-runs only the downstream sub-graph (Network::forward_from);
//  * a stuck-at equal to the golden bit is masked by construction and is
//    classified Non-critical without any inference (half of a stuck-at
//    universe on average);
//  * per-image early exit: a fault is Critical as soon as one image trips
//    the policy, so critical faults rarely scan the whole evaluation set.

#include <functional>
#include <string>

#include "core/checkpoint.hpp"
#include "core/planner.hpp"
#include "data/synthetic.hpp"
#include "fault/injector.hpp"
#include "stats/rng.hpp"

namespace statfi::core {

/// How a fault is classified Critical. The paper classifies on top-1
/// correctness; the exact per-fault aggregation is configurable.
enum class ClassificationPolicy : std::uint8_t {
    /// Critical iff some image the golden network classifies correctly is
    /// misclassified under the fault (default; the paper's "top-1 prediction
    /// is correct" criterion under permanent faults).
    AnyMisprediction,
    /// Critical iff some image's top-1 differs from the golden top-1
    /// (usable without ground-truth labels).
    GoldenMismatch,
    /// Critical iff top-1 accuracy drops by more than `accuracy_drop_threshold`.
    AccuracyDrop,
};

const char* to_string(ClassificationPolicy policy) noexcept;

enum class FaultOutcome : std::uint8_t {
    NonCritical = 0,
    Critical = 1,
    Masked = 2,  ///< stored word unchanged -> Non-critical without inference
};

struct ExecutorConfig {
    ClassificationPolicy policy = ClassificationPolicy::AnyMisprediction;
    double accuracy_drop_threshold = 0.0;  ///< for AccuracyDrop: strict drop > threshold
    fault::DataType dtype = fault::DataType::Float32;
};

/// Per-subpopulation campaign tallies.
struct SubpopResult {
    SubpopPlan plan;
    std::uint64_t injected = 0;
    std::uint64_t critical = 0;
    std::uint64_t masked = 0;

    /// For subpopulations spanning layers (network-wise plans), where each
    /// sampled fault actually landed — what a per-layer readout of a
    /// network-wise campaign has to work with (paper Fig. 7). Empty for
    /// single-layer subpopulations.
    std::vector<std::uint64_t> layer_injected;
    std::vector<std::uint64_t> layer_critical;

    [[nodiscard]] double critical_rate() const {
        return injected ? static_cast<double>(critical) /
                              static_cast<double>(injected)
                        : 0.0;
    }
};

struct CampaignResult {
    Approach approach = Approach::NetworkWise;
    stats::SampleSpec spec;
    std::vector<SubpopResult> subpops;
    double wall_seconds = 0.0;
    /// True when a CancellationToken stopped the campaign early; tallies
    /// cover only the faults classified before the stop.
    bool interrupted = false;

    [[nodiscard]] std::uint64_t total_injected() const;
    [[nodiscard]] std::uint64_t total_critical() const;
    [[nodiscard]] double critical_rate() const;
};

/// Dense per-fault outcome table from an exhaustive campaign — ground truth
/// for validating the statistical approaches, replayable into any plan.
class ExhaustiveOutcomes {
public:
    ExhaustiveOutcomes() = default;
    explicit ExhaustiveOutcomes(std::uint64_t universe_size);

    [[nodiscard]] std::uint64_t size() const noexcept { return outcomes_.size(); }
    [[nodiscard]] FaultOutcome at(std::uint64_t index) const {
        return static_cast<FaultOutcome>(outcomes_.at(index));
    }
    void set(std::uint64_t index, FaultOutcome outcome) {
        outcomes_.at(index) = static_cast<std::uint8_t>(outcome);
    }

    /// Exact critical rate of an index range [begin, end).
    [[nodiscard]] double critical_rate(std::uint64_t begin,
                                       std::uint64_t end) const;
    [[nodiscard]] std::uint64_t critical_count(std::uint64_t begin,
                                               std::uint64_t end) const;

    /// Exact rates for the subpopulations the universe defines.
    [[nodiscard]] double layer_critical_rate(const fault::FaultUniverse& u,
                                             int layer) const;
    [[nodiscard]] double subpop_critical_rate(const fault::FaultUniverse& u,
                                              int layer, int bit) const;
    [[nodiscard]] double network_critical_rate() const;

    /// Binary persistence ("SFIO" v2: versioned header + CRC32 trailer),
    /// written to a temporary and atomically renamed so a crash mid-save
    /// never leaves a torn file. load() names the violated invariant
    /// (short header, bad magic, unsupported version, truncated payload,
    /// checksum mismatch) in the exception message.
    void save(const std::string& path) const;
    static ExhaustiveOutcomes load(const std::string& path);

private:
    std::vector<std::uint8_t> outcomes_;
};

/// Heartbeat passed to campaign Progress callbacks.
struct ProgressInfo {
    std::uint64_t done = 0;   ///< faults classified or resumed so far
    std::uint64_t total = 0;  ///< universe size
    double elapsed_seconds = 0.0;
    double faults_per_second = 0.0;  ///< classification rate of this run
    double eta_seconds = 0.0;        ///< estimated remaining wall time
};
using ProgressFn = std::function<void(const ProgressInfo&)>;

/// Durability knobs for long-running exhaustive campaigns.
struct DurabilityOptions {
    /// Append-only checkpoint journal; empty disables journaling. When the
    /// file already holds a journal with a matching fingerprint, the run
    /// resumes after its last valid record.
    std::string journal_path;
    std::string model_id = "campaign";  ///< fingerprint component
    std::uint64_t flush_interval = 4096;  ///< journal flush every K records
    const CancellationToken* cancel = nullptr;  ///< optional cooperative stop
};

/// Outcome of a durable exhaustive run.
struct ExhaustiveRun {
    ExhaustiveOutcomes outcomes;
    bool complete = true;  ///< false: cancelled — journal holds progress
    std::uint64_t classified = 0;  ///< faults classified by this run
    std::uint64_t resumed = 0;     ///< outcomes replayed from the journal
};

class CampaignExecutor {
public:
    /// Clones nothing: operates directly on @p net's weights (restoring them
    /// after every fault). Caches golden activations for every image of
    /// @p eval in the constructor.
    CampaignExecutor(nn::Network& net, const data::Dataset& eval,
                     ExecutorConfig config = {});

    [[nodiscard]] double golden_accuracy() const noexcept {
        return golden_accuracy_;
    }
    [[nodiscard]] const std::vector<int>& golden_predictions() const noexcept {
        return golden_preds_;
    }
    /// Total faulty inferences (image evaluations) performed so far.
    [[nodiscard]] std::uint64_t inference_count() const noexcept {
        return inferences_;
    }

    /// Classify one fault (weights are corrupted and restored internally).
    FaultOutcome evaluate(const fault::Fault& fault);

    /// Execute a statistical plan: per subpopulation, draw the planned
    /// number of faults without replacement (independent sub-streams of
    /// @p rng) and classify each. @p cancel (optional) stops between
    /// faults; the partial result is marked interrupted.
    CampaignResult run(const fault::FaultUniverse& universe,
                       const CampaignPlan& plan, stats::Rng rng,
                       const CancellationToken* cancel = nullptr);

    using Progress = ProgressFn;

    /// Classify every fault in the universe. @p progress (optional) is
    /// invoked every few thousand faults with rate/ETA heartbeat.
    ExhaustiveOutcomes run_exhaustive(const fault::FaultUniverse& universe,
                                      const Progress& progress = {});

    /// run_exhaustive with durability: journaled checkpoints every record
    /// (flushed every flush_interval), resume from a matching journal, and
    /// cooperative cancellation. Resuming an interrupted run produces
    /// outcomes bit-identical to an uninterrupted one.
    ExhaustiveRun run_exhaustive_durable(const fault::FaultUniverse& universe,
                                         const DurabilityOptions& options,
                                         const Progress& progress = {});

    /// Campaign identity for journals/caches: universe size, dtype, policy,
    /// plus CRC32 hashes of the evaluation set and the golden weights. A
    /// retrained model or different eval set fingerprints differently.
    [[nodiscard]] CampaignFingerprint fingerprint(
        const fault::FaultUniverse& universe, std::string model_id) const;

private:
    FaultOutcome classify_active_fault(int first_dirty_node);

    nn::Network* net_;
    ExecutorConfig config_;
    fault::WeightInjector injector_;
    std::vector<Tensor> images_;                    // (1, C, H, W) each
    std::vector<int> labels_;
    std::vector<std::vector<Tensor>> golden_acts_;  // per image, per node
    std::vector<int> golden_preds_;
    std::vector<std::size_t> correct_order_;  // golden-correct images first
    double golden_accuracy_ = 0.0;
    std::uint64_t golden_correct_ = 0;
    std::uint64_t inferences_ = 0;
    std::vector<Tensor> scratch_;
};

/// Replay a statistical plan against exhaustive ground truth: sampling is
/// real, classification is a table lookup. Deterministic faults on a fixed
/// evaluation set make this bit-identical to re-running the injections,
/// at zero inference cost (used by the figure/table benches).
CampaignResult replay(const fault::FaultUniverse& universe,
                      const CampaignPlan& plan,
                      const ExhaustiveOutcomes& outcomes, stats::Rng rng);

}  // namespace statfi::core

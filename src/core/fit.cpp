#include "core/fit.hpp"

#include <limits>

namespace statfi::core {

const char* to_string(AsilLevel level) noexcept {
    switch (level) {
        case AsilLevel::QM: return "QM";
        case AsilLevel::AsilA: return "ASIL-A";
        case AsilLevel::AsilB: return "ASIL-B";
        case AsilLevel::AsilC: return "ASIL-C";
        case AsilLevel::AsilD: return "ASIL-D";
    }
    return "?";
}

double pmhf_budget_fit(AsilLevel level) noexcept {
    switch (level) {
        case AsilLevel::AsilD: return 10.0;
        case AsilLevel::AsilC: return 100.0;
        case AsilLevel::AsilB: return 100.0;
        case AsilLevel::AsilA:
        case AsilLevel::QM: return std::numeric_limits<double>::infinity();
    }
    return std::numeric_limits<double>::infinity();
}

AsilLevel FitEstimate::strictest_met() const {
    if (meets(AsilLevel::AsilD)) return AsilLevel::AsilD;
    if (meets(AsilLevel::AsilC)) return AsilLevel::AsilC;  // same budget as B
    if (meets(AsilLevel::AsilB)) return AsilLevel::AsilB;
    return AsilLevel::QM;
}

double weight_storage_mbit(const fault::FaultUniverse& universe) {
    // total() counts polarities; storage bits do not.
    const double bits = static_cast<double>(universe.total()) /
                        static_cast<double>(universe.polarities());
    return bits / 1e6;
}

FitEstimate device_fit(const fault::FaultUniverse& universe,
                       const Estimate& critical_rate,
                       const SoftErrorSpec& spec) {
    FitEstimate out;
    out.storage_mbit = weight_storage_mbit(universe);
    const double raw = spec.fit_per_mbit * spec.derating * out.storage_mbit;
    out.fit = raw * critical_rate.rate;
    out.margin = raw * critical_rate.margin;
    return out;
}

std::vector<FitEstimate> layer_fit(const fault::FaultUniverse& universe,
                                   const std::vector<LayerEstimate>& layers,
                                   const SoftErrorSpec& spec) {
    std::vector<FitEstimate> out;
    out.reserve(layers.size());
    for (const auto& le : layers) {
        FitEstimate fe;
        const double bits =
            static_cast<double>(universe.layer_population(le.layer)) /
            static_cast<double>(universe.polarities());
        fe.storage_mbit = bits / 1e6;
        const double raw = spec.fit_per_mbit * spec.derating * fe.storage_mbit;
        fe.fit = raw * le.estimate.rate;
        fe.margin = raw * le.estimate.margin;
        out.push_back(fe);
    }
    return out;
}

}  // namespace statfi::core

#pragma once
// Failure-rate bookkeeping: from critical-fault probability to device FIT.
//
// The paper motivates statistical FI with ISO 26262 functional-safety
// arguments but stops at the critical-fault rate. This module closes the
// loop for weight memories: given the raw soft-error rate of the storage
// technology and the measured/estimated probability that a weight-bit fault
// becomes a critical failure, it produces the CNN's failure-in-time
// contribution and checks it against the standard's PMHF targets.
//
//   FIT(model) = SER_raw [FIT/Mbit] * weight_bits/1e6 * P(critical | fault)
//
// FIT = failures per 10^9 device-hours. Error margins on P propagate
// linearly to FIT margins.

#include "core/estimator.hpp"
#include "fault/universe.hpp"

namespace statfi::core {

/// Raw soft-error characteristics of the weight storage.
struct SoftErrorSpec {
    double fit_per_mbit = 700.0;  ///< typical unprotected SRAM at sea level
    double derating = 1.0;        ///< architectural/temporal derating factor
};

/// ISO 26262 random-hardware-failure (PMHF) targets, failures per 1e9 h.
enum class AsilLevel : std::uint8_t { QM, AsilA, AsilB, AsilC, AsilD };

const char* to_string(AsilLevel level) noexcept;

/// PMHF budget for a level (ISO 26262-5 Table 6): D < 10, C < 100, B < 100
/// FIT; A/QM unbounded by the metric (returned as +inf).
double pmhf_budget_fit(AsilLevel level) noexcept;

/// A FIT estimate with the error margin propagated from the critical-rate
/// estimate.
struct FitEstimate {
    double fit = 0.0;
    double margin = 0.0;  ///< half-width, same confidence as the rate estimate
    double storage_mbit = 0.0;

    [[nodiscard]] bool meets(AsilLevel level) const {
        return fit + margin < pmhf_budget_fit(level);
    }
    /// Strictest level whose budget the (upper-bounded) FIT satisfies.
    [[nodiscard]] AsilLevel strictest_met() const;
};

/// Weight-storage size of the fault universe in Mbit (polarity-independent).
double weight_storage_mbit(const fault::FaultUniverse& universe);

/// Device-level FIT from a network-level critical-rate estimate.
FitEstimate device_fit(const fault::FaultUniverse& universe,
                       const Estimate& critical_rate,
                       const SoftErrorSpec& spec = {});

/// Per-layer FIT contributions (sums to the device FIT when the layer
/// estimates are population-weighted, as estimate_layers produces).
std::vector<FitEstimate> layer_fit(const fault::FaultUniverse& universe,
                                   const std::vector<LayerEstimate>& layers,
                                   const SoftErrorSpec& spec = {});

}  // namespace statfi::core

#include "core/outcome.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"
#include "stats/sampling.hpp"

namespace statfi::core {

const char* to_string(ClassificationPolicy policy) noexcept {
    switch (policy) {
        case ClassificationPolicy::AnyMisprediction: return "any-misprediction";
        case ClassificationPolicy::GoldenMismatch: return "golden-mismatch";
        case ClassificationPolicy::AccuracyDrop: return "accuracy-drop";
    }
    return "?";
}

std::uint64_t CampaignResult::total_injected() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.injected;
    return total;
}

std::uint64_t CampaignResult::total_critical() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.critical;
    return total;
}

double CampaignResult::critical_rate() const {
    const auto injected = total_injected();
    return injected ? static_cast<double>(total_critical()) /
                          static_cast<double>(injected)
                    : 0.0;
}

CampaignResult make_empty_result(std::size_t layer_count,
                                 const CampaignPlan& plan) {
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.resize(plan.subpops.size());
    for (std::size_t s = 0; s < plan.subpops.size(); ++s) {
        auto& tally = result.subpops[s];
        tally.plan = plan.subpops[s];
        if (tally.plan.layer < 0) {
            tally.layer_injected.assign(layer_count, 0);
            tally.layer_critical.assign(layer_count, 0);
        }
    }
    return result;
}

void accumulate_outcome(SubpopResult& tally, int layer, FaultOutcome outcome) {
    ++tally.injected;
    if (outcome == FaultOutcome::Critical) ++tally.critical;
    if (outcome == FaultOutcome::Masked) ++tally.masked;
    if (!tally.layer_injected.empty()) {
        const auto l = static_cast<std::size_t>(layer);
        ++tally.layer_injected.at(l);
        if (outcome == FaultOutcome::Critical) ++tally.layer_critical.at(l);
    }
}

// ----------------------------------------------------- ExhaustiveOutcomes --

ExhaustiveOutcomes::ExhaustiveOutcomes(std::uint64_t universe_size)
    : outcomes_(universe_size,
                static_cast<std::uint8_t>(FaultOutcome::NonCritical)) {}

ExhaustiveOutcomes::ExhaustiveOutcomes(const ExhaustiveOutcomes& other)
    : outcomes_(other.outcomes_) {}

ExhaustiveOutcomes& ExhaustiveOutcomes::operator=(
    const ExhaustiveOutcomes& other) {
    outcomes_ = other.outcomes_;
    prefix_.clear();
    index_stale_.store(true, std::memory_order_relaxed);
    return *this;
}

ExhaustiveOutcomes::ExhaustiveOutcomes(ExhaustiveOutcomes&& other) noexcept
    : outcomes_(std::move(other.outcomes_)) {}

ExhaustiveOutcomes& ExhaustiveOutcomes::operator=(
    ExhaustiveOutcomes&& other) noexcept {
    outcomes_ = std::move(other.outcomes_);
    prefix_.clear();
    index_stale_.store(true, std::memory_order_relaxed);
    return *this;
}

const std::vector<std::uint64_t>& ExhaustiveOutcomes::prefix() const {
    if (index_stale_.load(std::memory_order_relaxed) ||
        prefix_.size() != outcomes_.size() + 1) {
        prefix_.resize(outcomes_.size() + 1);
        prefix_[0] = 0;
        for (std::size_t i = 0; i < outcomes_.size(); ++i)
            prefix_[i + 1] =
                prefix_[i] + (outcomes_[i] ==
                              static_cast<std::uint8_t>(FaultOutcome::Critical));
        index_stale_.store(false, std::memory_order_relaxed);
    }
    return prefix_;
}

std::uint64_t ExhaustiveOutcomes::critical_count(std::uint64_t begin,
                                                 std::uint64_t end) const {
    if (begin > end || end > outcomes_.size())
        throw std::out_of_range("ExhaustiveOutcomes: bad range");
    const auto& p = prefix();
    return p[end] - p[begin];
}

double ExhaustiveOutcomes::critical_rate(std::uint64_t begin,
                                         std::uint64_t end) const {
    if (begin >= end) return 0.0;
    return static_cast<double>(critical_count(begin, end)) /
           static_cast<double>(end - begin);
}

double ExhaustiveOutcomes::layer_critical_rate(const fault::FaultUniverse& u,
                                               int layer) const {
    const std::uint64_t begin = u.subpop_offset(layer, 0);
    return critical_rate(begin, begin + u.layer_population(layer));
}

double ExhaustiveOutcomes::subpop_critical_rate(const fault::FaultUniverse& u,
                                                int layer, int bit) const {
    const std::uint64_t begin = u.subpop_offset(layer, bit);
    return critical_rate(begin, begin + u.bit_population(layer));
}

double ExhaustiveOutcomes::network_critical_rate() const {
    return critical_rate(0, outcomes_.size());
}

namespace {
constexpr char kOutcomeMagic[4] = {'S', 'F', 'I', 'O'};
// v2 adds the version word and a CRC32 trailer over the payload; v1 files
// (no version, no checksum) fail the version check and are regenerated.
constexpr std::uint32_t kOutcomeVersion = 2;
constexpr std::size_t kOutcomeHeaderSize =
    sizeof(kOutcomeMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

std::string hex32(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}
}  // namespace

void ExhaustiveOutcomes::save(const std::string& path) const {
    io::write_file_atomic(path, [&](std::ostream& os) {
        os.write(kOutcomeMagic, sizeof(kOutcomeMagic));
        const std::uint32_t version = kOutcomeVersion;
        os.write(reinterpret_cast<const char*>(&version), sizeof(version));
        const std::uint64_t size = outcomes_.size();
        os.write(reinterpret_cast<const char*>(&size), sizeof(size));
        os.write(reinterpret_cast<const char*>(outcomes_.data()),
                 static_cast<std::streamsize>(outcomes_.size()));
        const std::uint32_t checksum =
            io::crc32(outcomes_.data(), outcomes_.size());
        os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    });
}

ExhaustiveOutcomes ExhaustiveOutcomes::load(const std::string& path) {
    const auto fail = [&](const std::string& why) -> std::runtime_error {
        return std::runtime_error("ExhaustiveOutcomes::load: " + why + " in " +
                                  path);
    };
    std::string bytes;
    if (!io::read_file(path, bytes))
        throw std::runtime_error("ExhaustiveOutcomes::load: cannot open " + path);
    if (bytes.empty()) throw fail("empty file (0 bytes)");
    if (bytes.size() < kOutcomeHeaderSize)
        throw fail("short header (" + std::to_string(bytes.size()) +
                   " bytes, need " + std::to_string(kOutcomeHeaderSize) + ")");
    if (bytes.compare(0, sizeof(kOutcomeMagic), kOutcomeMagic,
                      sizeof(kOutcomeMagic)) != 0)
        throw fail("bad magic (want \"SFIO\")");
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kOutcomeMagic), sizeof(version));
    if (version != kOutcomeVersion)
        throw fail("unsupported version " + std::to_string(version) +
                   " (supported: " + std::to_string(kOutcomeVersion) + ")");
    std::uint64_t size = 0;
    std::memcpy(&size, bytes.data() + sizeof(kOutcomeMagic) + sizeof(version),
                sizeof(size));
    const std::uint64_t expected =
        kOutcomeHeaderSize + size + sizeof(std::uint32_t);
    if (bytes.size() != expected)
        throw fail("truncated payload (header promises " +
                   std::to_string(size) + " outcomes = " +
                   std::to_string(expected) + " bytes, file has " +
                   std::to_string(bytes.size()) + ")");
    const char* payload = bytes.data() + kOutcomeHeaderSize;
    std::uint32_t stored = 0;
    std::memcpy(&stored, payload + size, sizeof(stored));
    const std::uint32_t computed = io::crc32(payload, size);
    if (stored != computed)
        throw fail("checksum mismatch (stored " + hex32(stored) +
                   ", computed " + hex32(computed) + ")");
    ExhaustiveOutcomes out(size);
    std::memcpy(out.outcomes_.data(), payload, size);
    return out;
}

// ----------------------------------------------------------------- replay --

CampaignResult replay(const fault::FaultUniverse& universe,
                      const CampaignPlan& plan,
                      const ExhaustiveOutcomes& outcomes, stats::Rng rng) {
    if (outcomes.size() != universe.total())
        throw std::invalid_argument("replay: outcome table size mismatch");
    CampaignResult result = make_empty_result(
        static_cast<std::size_t>(universe.layer_count()), plan);

    std::uint64_t subpop_index = 0;
    for (std::size_t s = 0; s < plan.subpops.size(); ++s) {
        const auto& sp = plan.subpops[s];
        auto& tally = result.subpops[s];
        auto stream = rng.fork(subpop_index++);
        const auto indices =
            stats::sample_indices(sp.population, sp.sample_size, stream);
        std::uint64_t base = 0;
        if (sp.layer >= 0 && sp.bit >= 0)
            base = universe.subpop_offset(sp.layer, sp.bit);
        else if (sp.layer >= 0)
            base = universe.subpop_offset(sp.layer, 0);
        for (const std::uint64_t local : indices) {
            const std::uint64_t global = base + local;
            // Only spanning subpopulations need the (costlier) decode to
            // attribute the fault to a layer.
            const int layer =
                sp.layer >= 0 ? sp.layer : universe.decode(global).layer;
            accumulate_outcome(tally, layer, outcomes.at(global));
        }
    }
    return result;
}

}  // namespace statfi::core

#pragma once
// Campaign vocabulary shared by every execution path: how faults are
// classified, how tallies are reported, and the dense exhaustive outcome
// table that statistical plans replay against.
//
// This header is deliberately execution-free — the fault->outcome kernel
// lives in core/classification_core.hpp and the orchestration (worker
// fan-out, journaling, progress) in core/engine.hpp, so that result
// consumers (estimator, benches, replay) never pull in the engine.

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/planner.hpp"
#include "fault/mitigation.hpp"
#include "stats/rng.hpp"
#include "telemetry/progress.hpp"

namespace statfi::core {

/// How a fault is classified Critical. The paper classifies on top-1
/// correctness; the exact per-fault aggregation is configurable.
enum class ClassificationPolicy : std::uint8_t {
    /// Critical iff some image the golden network classifies correctly is
    /// misclassified under the fault (default; the paper's "top-1 prediction
    /// is correct" criterion under permanent faults).
    AnyMisprediction,
    /// Critical iff some image's top-1 differs from the golden top-1
    /// (usable without ground-truth labels).
    GoldenMismatch,
    /// Critical iff top-1 accuracy drops by more than `accuracy_drop_threshold`.
    AccuracyDrop,
};

const char* to_string(ClassificationPolicy policy) noexcept;

enum class FaultOutcome : std::uint8_t {
    NonCritical = 0,
    Critical = 1,
    Masked = 2,  ///< stored word unchanged -> Non-critical without inference
};

/// Classification knobs shared by every campaign executor. Worker count is
/// NOT part of this config (it cannot change outcomes, so it must not enter
/// the campaign fingerprint either).
struct ExecutorConfig {
    ClassificationPolicy policy = ClassificationPolicy::AnyMisprediction;
    double accuracy_drop_threshold = 0.0;  ///< for AccuracyDrop: strict drop > threshold
    fault::DataType dtype = fault::DataType::Float32;
    /// Mitigations deployed on the network under test (clipping changes the
    /// golden pass too — the hardened network is measured against itself).
    fault::MitigationConfig mitigation;
    /// Per-weight-layer quantization parameters, in weight-layer order.
    /// Non-empty when the fixture deployed a formats::QuantizedStore: the
    /// injector then reuses the store's scales instead of re-deriving them
    /// from the (already quantized) weights, which would drift by an ulp.
    /// Empty = derive from current weights (legacy fp32 path).
    std::vector<fault::QuantParams> layer_quant;
    /// Max faults evaluated per blocked ensemble pass (engine groups
    /// consecutive plan items sharing a layer and fault model). 1 disables
    /// grouping. Like the worker count, this is a throughput knob that
    /// CANNOT change outcomes (the ensemble forward is bit-identical to the
    /// per-fault loop), so it never enters the campaign fingerprint.
    std::size_t ensemble_width = 8;
};

/// Per-subpopulation campaign tallies.
struct SubpopResult {
    SubpopPlan plan;
    std::uint64_t injected = 0;
    std::uint64_t critical = 0;
    std::uint64_t masked = 0;

    /// For subpopulations spanning layers (network-wise plans), where each
    /// sampled fault actually landed — what a per-layer readout of a
    /// network-wise campaign has to work with (paper Fig. 7). Empty for
    /// single-layer subpopulations.
    std::vector<std::uint64_t> layer_injected;
    std::vector<std::uint64_t> layer_critical;

    [[nodiscard]] double critical_rate() const {
        return injected ? static_cast<double>(critical) /
                              static_cast<double>(injected)
                        : 0.0;
    }
};

struct CampaignResult {
    Approach approach = Approach::NetworkWise;
    stats::SampleSpec spec;
    std::vector<SubpopResult> subpops;
    double wall_seconds = 0.0;
    /// True when a CancellationToken stopped the campaign early; tallies
    /// cover only the faults classified before the stop.
    bool interrupted = false;

    [[nodiscard]] std::uint64_t total_injected() const;
    [[nodiscard]] std::uint64_t total_critical() const;
    [[nodiscard]] double critical_rate() const;
};

/// Seed an empty CampaignResult from a plan: approach/spec copied, one
/// zeroed tally per subpopulation, layer-attribution vectors (sized
/// @p layer_count) for subpopulations that span layers. The single tally
/// shape shared by direct execution, replay, and the shard merger.
CampaignResult make_empty_result(std::size_t layer_count,
                                 const CampaignPlan& plan);

/// Add one classified fault to its subpopulation tally. @p layer attributes
/// spanning subpopulations (ignored for single-layer subpopulations).
void accumulate_outcome(SubpopResult& tally, int layer, FaultOutcome outcome);

/// Dense per-fault outcome table from an exhaustive campaign — ground truth
/// for validating the statistical approaches, replayable into any plan.
///
/// Range queries are served from a lazily built prefix-sum index (one O(N)
/// build amortized over all queries), so the figure/table benches can ask
/// for every (bit, layer) subpopulation rate without rescanning the
/// universe each time. Writers invalidate the index; concurrent set() calls
/// to distinct indices are safe, but queries must not race with writes.
class ExhaustiveOutcomes {
public:
    ExhaustiveOutcomes() = default;
    explicit ExhaustiveOutcomes(std::uint64_t universe_size);

    ExhaustiveOutcomes(const ExhaustiveOutcomes& other);
    ExhaustiveOutcomes& operator=(const ExhaustiveOutcomes& other);
    ExhaustiveOutcomes(ExhaustiveOutcomes&& other) noexcept;
    ExhaustiveOutcomes& operator=(ExhaustiveOutcomes&& other) noexcept;

    [[nodiscard]] std::uint64_t size() const noexcept { return outcomes_.size(); }
    [[nodiscard]] FaultOutcome at(std::uint64_t index) const {
        return static_cast<FaultOutcome>(outcomes_.at(index));
    }
    void set(std::uint64_t index, FaultOutcome outcome) {
        outcomes_.at(index) = static_cast<std::uint8_t>(outcome);
        index_stale_.store(true, std::memory_order_relaxed);
    }

    /// Exact critical rate of an index range [begin, end).
    [[nodiscard]] double critical_rate(std::uint64_t begin,
                                       std::uint64_t end) const;
    [[nodiscard]] std::uint64_t critical_count(std::uint64_t begin,
                                               std::uint64_t end) const;

    /// Exact rates for the subpopulations the universe defines.
    [[nodiscard]] double layer_critical_rate(const fault::FaultUniverse& u,
                                             int layer) const;
    [[nodiscard]] double subpop_critical_rate(const fault::FaultUniverse& u,
                                              int layer, int bit) const;
    [[nodiscard]] double network_critical_rate() const;

    /// Binary persistence ("SFIO" v2: versioned header + CRC32 trailer),
    /// written to a temporary and atomically renamed so a crash mid-save
    /// never leaves a torn file. load() names the violated invariant
    /// (short header, bad magic, unsupported version, truncated payload,
    /// checksum mismatch) in the exception message.
    void save(const std::string& path) const;
    static ExhaustiveOutcomes load(const std::string& path);

private:
    [[nodiscard]] const std::vector<std::uint64_t>& prefix() const;

    std::vector<std::uint8_t> outcomes_;
    /// prefix_[i] = number of Critical outcomes in [0, i).
    mutable std::vector<std::uint64_t> prefix_;
    mutable std::atomic<bool> index_stale_{true};
};

/// Heartbeat types live in the telemetry subsystem (the rate/ETA
/// arithmetic is telemetry::ProgressReporter); aliased here so campaign
/// code keeps its historical core:: spelling.
using ProgressInfo = telemetry::ProgressInfo;
using ProgressFn = telemetry::ProgressFn;

/// Durability knobs for long-running exhaustive campaigns.
struct DurabilityOptions {
    /// Append-only checkpoint journal; empty disables journaling. When the
    /// file already holds a journal with a matching fingerprint, the run
    /// resumes after its last valid record.
    std::string journal_path;
    std::string model_id = "campaign";  ///< fingerprint component
    std::uint64_t flush_interval = 4096;  ///< journal flush every K records
    const CancellationToken* cancel = nullptr;  ///< optional cooperative stop
    /// Restrict the census to global fault indices [range_begin, range_end)
    /// — the shard runner's hook. range_end == 0 means the whole universe.
    /// Outcome slots outside the range are left NonCritical; journal records
    /// outside the range are ignored on resume. Progress/ETA cover the range
    /// only, and `complete` means the range (not the universe) is done.
    std::uint64_t range_begin = 0;
    std::uint64_t range_end = 0;
};

/// Outcome of a durable exhaustive run.
struct ExhaustiveRun {
    ExhaustiveOutcomes outcomes;
    bool complete = true;  ///< false: cancelled — journal holds progress
    std::uint64_t classified = 0;  ///< faults classified by this run
    std::uint64_t resumed = 0;     ///< outcomes replayed from the journal
};

/// Outcome of a durable statistical run (CampaignEngine::run_durable): the
/// canonical tallies plus the raw per-item outcomes of the classified item
/// range (what shard results persist).
struct StatisticalRun {
    CampaignResult result;
    std::vector<std::uint8_t> outcomes;  ///< FaultOutcome per item in range
    bool complete = true;  ///< false: cancelled — journal holds progress
    std::uint64_t classified = 0;  ///< items classified by this run
    std::uint64_t resumed = 0;     ///< outcomes replayed from the journal
};

/// Replay a statistical plan against exhaustive ground truth: sampling is
/// real, classification is a table lookup. Deterministic faults on a fixed
/// evaluation set make this bit-identical to re-running the injections,
/// at zero inference cost (used by the figure/table benches).
CampaignResult replay(const fault::FaultUniverse& universe,
                      const CampaignPlan& plan,
                      const ExhaustiveOutcomes& outcomes, stats::Rng rng);

}  // namespace statfi::core

#include "core/parallel.hpp"

#include <chrono>
#include <thread>

#include "stats/sampling.hpp"

namespace statfi::core {

/// One worker: a private network clone and a per-clone executor.
struct ParallelCampaignExecutor::Worker {
    nn::Network net;
    CampaignExecutor executor;

    Worker(const nn::Network& source, const data::Dataset& eval,
           const ExecutorConfig& config)
        : net(source.clone()), executor(net, eval, config) {}
};

ParallelCampaignExecutor::ParallelCampaignExecutor(const nn::Network& net,
                                                   const data::Dataset& eval,
                                                   ExecutorConfig config,
                                                   std::size_t threads) {
    if (threads == 0)
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
        workers_.push_back(std::make_unique<Worker>(net, eval, config));
}

ParallelCampaignExecutor::~ParallelCampaignExecutor() = default;

std::size_t ParallelCampaignExecutor::worker_count() const noexcept {
    return workers_.size();
}

double ParallelCampaignExecutor::golden_accuracy() const {
    return workers_.front()->executor.golden_accuracy();
}

CampaignResult ParallelCampaignExecutor::run(
    const fault::FaultUniverse& universe, const CampaignPlan& plan,
    stats::Rng rng) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    result.approach = plan.approach;
    result.spec = plan.spec;
    result.subpops.resize(plan.subpops.size());

    // Draw every sample up front with the serial executor's stream layout.
    struct WorkItem {
        std::size_t subpop;
        fault::Fault fault;
    };
    std::vector<WorkItem> items;
    std::uint64_t subpop_index = 0;
    for (std::size_t s = 0; s < plan.subpops.size(); ++s) {
        const auto& sp = plan.subpops[s];
        auto& tally = result.subpops[s];
        tally.plan = sp;
        if (sp.layer < 0) {
            tally.layer_injected.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
            tally.layer_critical.assign(
                static_cast<std::size_t>(universe.layer_count()), 0);
        }
        auto stream = rng.fork(subpop_index++);
        for (const std::uint64_t local :
             stats::sample_indices(sp.population, sp.sample_size, stream)) {
            fault::Fault fault;
            if (sp.layer >= 0 && sp.bit >= 0)
                fault = universe.decode_in_subpop(sp.layer, sp.bit, local);
            else if (sp.layer >= 0)
                fault = universe.decode(universe.subpop_offset(sp.layer, 0) +
                                        local);
            else
                fault = universe.decode(local);
            items.push_back(WorkItem{s, fault});
        }
    }

    // Classify in parallel; outcomes are deterministic per fault, so the
    // partitioning cannot change the tallies.
    std::vector<std::uint8_t> outcomes(items.size());
    const std::size_t workers = workers_.size();
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            for (std::size_t i = w; i < items.size(); i += workers)
                outcomes[i] = static_cast<std::uint8_t>(
                    workers_[w]->executor.evaluate(items[i].fault));
        });
    }
    for (auto& t : threads) t.join();

    for (std::size_t i = 0; i < items.size(); ++i) {
        auto& tally = result.subpops[items[i].subpop];
        const auto outcome = static_cast<FaultOutcome>(outcomes[i]);
        ++tally.injected;
        if (outcome == FaultOutcome::Critical) ++tally.critical;
        if (outcome == FaultOutcome::Masked) ++tally.masked;
        if (!tally.layer_injected.empty()) {
            const auto l = static_cast<std::size_t>(items[i].fault.layer);
            ++tally.layer_injected[l];
            if (outcome == FaultOutcome::Critical) ++tally.layer_critical[l];
        }
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

ExhaustiveOutcomes ParallelCampaignExecutor::run_exhaustive(
    const fault::FaultUniverse& universe) {
    ExhaustiveOutcomes outcomes(universe.total());
    const std::size_t workers = workers_.size();
    const std::uint64_t total = universe.total();
    const std::uint64_t chunk = (total + workers - 1) / workers;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            const std::uint64_t lo = w * chunk;
            const std::uint64_t hi = std::min(lo + chunk, total);
            for (std::uint64_t i = lo; i < hi; ++i)
                outcomes.set(i, workers_[w]->executor.evaluate(
                                    universe.decode(i)));
        });
    }
    for (auto& t : threads) t.join();
    return outcomes;
}

}  // namespace statfi::core

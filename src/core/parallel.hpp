#pragma once
// Multi-threaded campaign execution.
//
// Each worker owns a private clone of the network (fault injection mutates
// weight storage, so workers must not share it) plus its own golden
// activation cache. Sampling happens once, up front, from the same named
// RNG streams as the serial executor; the sampled fault list is then
// partitioned across workers. Because each fault's outcome is a
// deterministic function of (network, evaluation set, fault), the merged
// result is bit-identical to CampaignExecutor::run() for any thread count —
// asserted in tests/core/parallel_test.cpp.

#include <memory>

#include "core/executor.hpp"

namespace statfi::core {

class ParallelCampaignExecutor {
public:
    /// Clones @p net once per worker. @p threads 0 = hardware concurrency.
    ParallelCampaignExecutor(const nn::Network& net, const data::Dataset& eval,
                             ExecutorConfig config = {},
                             std::size_t threads = 0);
    ~ParallelCampaignExecutor();

    ParallelCampaignExecutor(const ParallelCampaignExecutor&) = delete;
    ParallelCampaignExecutor& operator=(const ParallelCampaignExecutor&) = delete;

    [[nodiscard]] std::size_t worker_count() const noexcept;
    [[nodiscard]] double golden_accuracy() const;

    /// Parallel equivalent of CampaignExecutor::run() — same sampling, same
    /// tallies, independent of the thread count. @p cancel (optional) stops
    /// all workers between faults; the partial result is marked interrupted
    /// and tallies only the faults classified before the stop.
    CampaignResult run(const fault::FaultUniverse& universe,
                       const CampaignPlan& plan, stats::Rng rng,
                       const CancellationToken* cancel = nullptr);

    /// Parallel exhaustive census (contiguous index ranges per worker).
    /// @p progress receives the same rate/ETA heartbeat as the serial
    /// executor (invoked under a lock, from worker threads).
    ExhaustiveOutcomes run_exhaustive(const fault::FaultUniverse& universe,
                                      const ProgressFn& progress = {});

    /// Durable parallel census: journaled, resumable, cancellable — the
    /// parallel twin of CampaignExecutor::run_exhaustive_durable(). Journal
    /// appends are serialized under a lock; record order varies across runs
    /// but the recovered outcome table does not.
    ExhaustiveRun run_exhaustive_durable(const fault::FaultUniverse& universe,
                                         const DurabilityOptions& options,
                                         const ProgressFn& progress = {});

private:
    struct Worker;
    std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace statfi::core

#include "core/planner.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace statfi::core {

const char* to_string(Approach approach) noexcept {
    switch (approach) {
        case Approach::Exhaustive: return "exhaustive";
        case Approach::NetworkWise: return "network-wise";
        case Approach::LayerWise: return "layer-wise";
        case Approach::DataUnaware: return "data-unaware";
        case Approach::DataAware: return "data-aware";
    }
    return "?";
}

Approach approach_from_string(std::string_view name) {
    for (const Approach a :
         {Approach::Exhaustive, Approach::NetworkWise, Approach::LayerWise,
          Approach::DataUnaware, Approach::DataAware})
        if (name == to_string(a)) return a;
    throw std::invalid_argument("unknown approach '" + std::string(name) + "'");
}

std::uint64_t CampaignPlan::total_population() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.population;
    return total;
}

std::uint64_t CampaignPlan::total_sample_size() const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) total += sp.sample_size;
    return total;
}

std::uint64_t CampaignPlan::layer_sample_size(
    const fault::FaultUniverse& universe, int layer) const {
    std::uint64_t total = 0;
    for (const auto& sp : subpops) {
        if (sp.layer == layer) {
            total += sp.sample_size;
        } else if (sp.layer < 0) {
            // Spanning subpopulation: attribute proportionally by population.
            const double share =
                static_cast<double>(universe.layer_population(layer)) /
                static_cast<double>(sp.population);
            total += static_cast<std::uint64_t>(
                std::llround(static_cast<double>(sp.sample_size) * share));
        }
    }
    return total;
}

CampaignPlan plan_exhaustive(const fault::FaultUniverse& universe) {
    CampaignPlan plan;
    plan.approach = Approach::Exhaustive;
    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int i = 0; i < universe.bits(); ++i) {
            SubpopPlan sp;
            sp.layer = l;
            sp.bit = i;
            sp.population = universe.bit_population(l);
            sp.p = 0.5;
            sp.sample_size = sp.population;
            plan.subpops.push_back(sp);
        }
    }
    return plan;
}

CampaignPlan plan_network_wise(const fault::FaultUniverse& universe,
                               const stats::SampleSpec& spec) {
    CampaignPlan plan;
    plan.approach = Approach::NetworkWise;
    plan.spec = spec;
    SubpopPlan sp;
    sp.layer = -1;
    sp.bit = -1;
    sp.population = universe.total();
    sp.p = spec.p;
    sp.sample_size = stats::sample_size(sp.population, spec);
    plan.subpops.push_back(sp);
    return plan;
}

CampaignPlan plan_layer_wise(const fault::FaultUniverse& universe,
                             const stats::SampleSpec& spec) {
    CampaignPlan plan;
    plan.approach = Approach::LayerWise;
    plan.spec = spec;
    for (int l = 0; l < universe.layer_count(); ++l) {
        SubpopPlan sp;
        sp.layer = l;
        sp.bit = -1;
        sp.population = universe.layer_population(l);
        sp.p = spec.p;
        sp.sample_size = stats::sample_size(sp.population, spec);
        plan.subpops.push_back(sp);
    }
    return plan;
}

CampaignPlan plan_data_unaware(const fault::FaultUniverse& universe,
                               const stats::SampleSpec& spec) {
    CampaignPlan plan;
    plan.approach = Approach::DataUnaware;
    plan.spec = spec;
    stats::SampleSpec bit_spec = spec;
    bit_spec.p = 0.5;  // the safe prior, by definition of this approach
    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int i = 0; i < universe.bits(); ++i) {
            SubpopPlan sp;
            sp.layer = l;
            sp.bit = i;
            sp.population = universe.bit_population(l);
            sp.p = 0.5;
            sp.sample_size = stats::sample_size(sp.population, bit_spec);
            plan.subpops.push_back(sp);
        }
    }
    return plan;
}

CampaignPlan plan_data_aware(const fault::FaultUniverse& universe,
                             const stats::SampleSpec& spec,
                             const BitCriticality& criticality) {
    if (criticality.bits() != universe.bits())
        throw std::invalid_argument(
            "plan_data_aware: criticality profile has " +
            std::to_string(criticality.bits()) + " bits, universe has " +
            std::to_string(universe.bits()));
    CampaignPlan plan;
    plan.approach = Approach::DataAware;
    plan.spec = spec;
    for (int l = 0; l < universe.layer_count(); ++l) {
        for (int i = 0; i < universe.bits(); ++i) {
            SubpopPlan sp;
            sp.layer = l;
            sp.bit = i;
            sp.population = universe.bit_population(l);
            sp.p = criticality.p[static_cast<std::size_t>(i)];
            stats::SampleSpec bit_spec = spec;
            bit_spec.p = sp.p;
            sp.sample_size = stats::sample_size(sp.population, bit_spec);
            plan.subpops.push_back(sp);
        }
    }
    return plan;
}

}  // namespace statfi::core

#pragma once
// Campaign planning: turn a fault universe + statistical spec into the set
// of subpopulations and per-subpopulation sample sizes for each of the four
// SFI approaches the paper compares (§IV):
//
//  1. Network-wise [Leveugle 2009]: Eq. 1 over the whole population. Valid
//     only for whole-network claims (the paper's motivating counterexample).
//  2. Layer-wise: Eq. 1 per layer; supports per-layer claims.
//  3. Data-unaware (proposed): Eq. 1 per (bit, layer) subpopulation with the
//     safe prior p = 0.5.
//  4. Data-aware (proposed): as 3 but with p = p(i) from the golden-weight
//     bit-criticality analysis — far fewer injections (Eq. 3 + Eq. 5).

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/data_aware.hpp"
#include "fault/universe.hpp"
#include "stats/sample_size.hpp"

namespace statfi::core {

enum class Approach : std::uint8_t {
    Exhaustive,
    NetworkWise,
    LayerWise,
    DataUnaware,
    DataAware,
};

const char* to_string(Approach approach) noexcept;

/// Inverse of to_string ("exhaustive", "network-wise", ...), for CLI
/// routing. @throws std::invalid_argument on an unknown name.
Approach approach_from_string(std::string_view name);

/// One sampled subpopulation. layer/bit use -1 for "all" (e.g. the
/// network-wise plan is a single subpopulation with layer = bit = -1).
struct SubpopPlan {
    int layer = -1;
    int bit = -1;
    std::uint64_t population = 0;  ///< N, N_l or N_(i,l)
    double p = 0.5;                ///< prior used in Eq. 1
    std::uint64_t sample_size = 0; ///< n from Eq. 1 (== population if exhaustive)
};

struct CampaignPlan {
    Approach approach = Approach::NetworkWise;
    stats::SampleSpec spec;
    std::vector<SubpopPlan> subpops;

    [[nodiscard]] std::uint64_t total_population() const;
    [[nodiscard]] std::uint64_t total_sample_size() const;

    /// Planned injections attributed to layer l. For subpopulations spanning
    /// layers (network-wise) the sample is attributed proportionally to the
    /// layers' population shares and rounded — matching how the paper's
    /// Table I reports per-layer network-wise counts (27, 143, ...).
    [[nodiscard]] std::uint64_t layer_sample_size(
        const fault::FaultUniverse& universe, int layer) const;
};

/// Approach 0: inject everything (ground truth).
CampaignPlan plan_exhaustive(const fault::FaultUniverse& universe);

/// Approach 1: one Eq. 1 sample over the whole network.
CampaignPlan plan_network_wise(const fault::FaultUniverse& universe,
                               const stats::SampleSpec& spec);

/// Approach 2: one Eq. 1 sample per layer.
CampaignPlan plan_layer_wise(const fault::FaultUniverse& universe,
                             const stats::SampleSpec& spec);

/// Approach 3 (proposed, data-unaware): one Eq. 1 sample per (bit, layer),
/// p = 0.5 everywhere.
CampaignPlan plan_data_unaware(const fault::FaultUniverse& universe,
                               const stats::SampleSpec& spec);

/// Approach 4 (proposed, data-aware): one Eq. 1 sample per (bit, layer) with
/// p = criticality.p[bit] (Eq. 5). spec.p is ignored.
/// @throws std::invalid_argument if the profile's bit count mismatches the
/// universe's data type.
CampaignPlan plan_data_aware(const fault::FaultUniverse& universe,
                             const stats::SampleSpec& spec,
                             const BitCriticality& criticality);

}  // namespace statfi::core

#include "core/testbed.hpp"

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace statfi::core {

std::string cache_directory() {
    const char* env = std::getenv("STATFI_CACHE_DIR");
    const std::string dir = env && *env ? env : ".statfi_cache";
    std::filesystem::create_directories(dir);
    return dir;
}

namespace {

std::string config_tag(const TestbedConfig& c) {
    return "s" + std::to_string(c.seed) + "_t" + std::to_string(c.train_images) +
           "_e" + std::to_string(c.epochs);
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(config), net_(models::make_micronet()) {
    stats::Rng master(config_.seed);

    data::SyntheticSpec spec;
    spec.seed = config_.seed;

    const std::string weights_path =
        cache_directory() + "/micronet_" + config_tag(config_) + ".sfiw";
    bool loaded = false;
    if (std::filesystem::exists(weights_path)) {
        try {
            nn::load_parameters(net_, weights_path);
            loaded = true;
        } catch (const std::exception& e) {
            std::cerr << "testbed: stale weight cache (" << e.what()
                      << "), retraining\n";
        }
    }
    if (!loaded) {
        auto init_rng = master.fork("init");
        nn::init_network_kaiming(net_, init_rng);
        auto train = data::make_synthetic(spec, config_.train_images, "train");
        auto train_rng = master.fork("train");
        nn::train_classifier(net_, train.images, train.labels, config_.epochs,
                             32, nn::SgdConfig{}, train_rng);
        nn::save_parameters(net_, weights_path);
    }

    auto test = data::make_synthetic(spec, 256, "test");
    test_accuracy_ = nn::top1_accuracy(net_.forward(test.images), test.labels);
    eval_ = test.take(config_.eval_images);

    universe_ = fault::FaultUniverse::stuck_at(net_);
    ExecutorConfig exec_config;
    exec_config.policy = config_.policy;
    engine_.emplace(net_, eval_, exec_config);
}

const ExhaustiveOutcomes& Testbed::ground_truth(bool verbose) {
    if (truth_.has_value()) return *truth_;
    const std::string path = cache_directory() + "/exhaustive_micronet_" +
                             config_tag(config_) + "_n" +
                             std::to_string(config_.eval_images) + "_" +
                             to_string(config_.policy) + ".sfio";
    if (std::filesystem::exists(path)) {
        try {
            auto loaded = ExhaustiveOutcomes::load(path);
            if (loaded.size() == universe_->total()) {
                truth_ = std::move(loaded);
                return *truth_;
            }
            std::cerr << "testbed: outcome cache size mismatch (file "
                      << loaded.size() << ", universe " << universe_->total()
                      << "), discarding and re-running\n";
        } catch (const std::exception& e) {
            std::cerr << "testbed: discarding outcome cache (" << e.what()
                      << "), re-running\n";
        }
    }
    if (verbose)
        std::cerr << "testbed: running exhaustive campaign over "
                  << universe_->total() << " faults (cached for later runs)\n";
    ProgressFn progress;
    if (verbose)
        progress = [](const ProgressInfo& p) {
            if (p.done % 32768 == 0 || p.done == p.total)
                std::cerr << "\r  exhaustive: " << p.done << "/" << p.total
                          << "  (" << static_cast<std::uint64_t>(
                                          p.faults_per_second)
                          << " faults/s, ~" << static_cast<std::uint64_t>(
                                                   p.eta_seconds)
                          << "s left)" << std::flush;
            if (p.done == p.total) std::cerr << '\n';
        };
    // Journal the census so a killed bench resumes instead of restarting;
    // the journal is replaced by the atomic cache file on completion.
    DurabilityOptions durability;
    durability.journal_path = path + ".sfij";
    durability.model_id = "micronet";
    auto run = engine_->run_exhaustive_durable(*universe_, durability, progress);
    if (verbose && run.resumed > 0)
        std::cerr << "testbed: resumed " << run.resumed
                  << " outcomes from journal, classified " << run.classified
                  << " more\n";
    truth_ = std::move(run.outcomes);
    truth_->save(path);
    std::error_code ec;
    std::filesystem::remove(durability.journal_path, ec);
    return *truth_;
}

stats::Rng Testbed::rng(std::string_view experiment) const {
    return stats::Rng(config_.seed).fork(experiment);
}

}  // namespace statfi::core

#pragma once
// Validation testbed: the shared experimental setup used by the benches that
// reproduce the paper's validation experiments (Table III, Fig. 5-7).
//
// The paper validates its statistical approaches against exhaustive FI on
// ResNet-20 / MobileNetV2 (37 / 54 GPU-days). This repo validates against
// exhaustive FI on the MicroNet substrate (see DESIGN.md §2): a trained
// classifier (~92% accuracy, like the paper's CNNs), a held-out evaluation
// set, and the complete per-fault outcome table.
//
// Both the trained weights and the exhaustive outcome table are cached on
// disk (directory from $STATFI_CACHE_DIR, default ".statfi_cache/") so the
// expensive steps run once and every bench binary reuses them.

#include <optional>
#include <string>

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "models/micronet.hpp"

namespace statfi::core {

struct TestbedConfig {
    std::uint64_t seed = 2023;        ///< DATE'23 — master seed for everything
    std::int64_t train_images = 1024;
    std::int64_t eval_images = 12;    ///< evaluation-set size for campaigns
    int epochs = 8;
    ClassificationPolicy policy = ClassificationPolicy::AnyMisprediction;
};

/// Resolved cache directory (created if missing).
std::string cache_directory();

/// The shared validation setup. Construction trains MicroNet (or loads the
/// cached weights) and prepares the evaluation set; ground_truth() runs the
/// exhaustive campaign (or loads the cached outcome table).
class Testbed {
public:
    explicit Testbed(TestbedConfig config = {});

    [[nodiscard]] nn::Network& network() { return net_; }
    [[nodiscard]] const data::Dataset& eval_set() const { return eval_; }
    [[nodiscard]] const fault::FaultUniverse& universe() const {
        return *universe_;
    }
    [[nodiscard]] CampaignEngine& engine() { return *engine_; }
    [[nodiscard]] double golden_accuracy() const {
        return engine_->golden_accuracy();
    }
    [[nodiscard]] double test_accuracy() const { return test_accuracy_; }
    [[nodiscard]] const TestbedConfig& config() const { return config_; }

    /// Exhaustive per-fault outcomes (cached across processes). The first
    /// call in a cold cache runs ~134k fault classifications (tens of
    /// seconds on one core); progress is printed to stderr when @p verbose.
    const ExhaustiveOutcomes& ground_truth(bool verbose = true);

    /// Deterministic RNG stream for a named experiment.
    [[nodiscard]] stats::Rng rng(std::string_view experiment) const;

private:
    TestbedConfig config_;
    nn::Network net_;
    data::Dataset eval_;
    double test_accuracy_ = 0.0;
    std::optional<fault::FaultUniverse> universe_;
    std::optional<CampaignEngine> engine_;
    std::optional<ExhaustiveOutcomes> truth_;
};

}  // namespace statfi::core

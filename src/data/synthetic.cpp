#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace statfi::data {

Tensor Dataset::image(std::int64_t index) const {
    const auto& d = images.shape().dims();
    if (index < 0 || index >= d[0])
        throw std::out_of_range("Dataset::image: index out of range");
    Tensor out(Shape{1, d[1], d[2], d[3]});
    const std::size_t sz = static_cast<std::size_t>(d[1] * d[2] * d[3]);
    std::copy(images.data() + static_cast<std::size_t>(index) * sz,
              images.data() + static_cast<std::size_t>(index + 1) * sz,
              out.data());
    return out;
}

Dataset Dataset::take(std::int64_t count) const {
    const auto& d = images.shape().dims();
    if (count < 0 || count > d[0])
        throw std::out_of_range("Dataset::take: count out of range");
    Dataset out;
    out.images = Tensor(Shape{count, d[1], d[2], d[3]});
    const std::size_t sz = static_cast<std::size_t>(d[1] * d[2] * d[3]);
    std::copy(images.data(), images.data() + static_cast<std::size_t>(count) * sz,
              out.images.data());
    out.labels.assign(labels.begin(), labels.begin() + count);
    return out;
}

namespace {

struct Wave {
    double fy, fx, phase, amplitude;
    int channel;
};

std::vector<std::vector<Wave>> make_prototypes(const SyntheticSpec& spec) {
    stats::Rng proto_rng(spec.seed);
    std::vector<std::vector<Wave>> prototypes(
        static_cast<std::size_t>(spec.num_classes));
    for (int c = 0; c < spec.num_classes; ++c) {
        auto rng = proto_rng.fork(static_cast<std::uint64_t>(c));
        auto& waves = prototypes[static_cast<std::size_t>(c)];
        waves.reserve(static_cast<std::size_t>(spec.waves_per_class));
        for (int w = 0; w < spec.waves_per_class; ++w) {
            Wave wave;
            // Low spatial frequencies (1..3 cycles across the image) keep the
            // patterns learnable by small receptive fields.
            wave.fy = rng.uniform(1.0, 3.0);
            wave.fx = rng.uniform(1.0, 3.0);
            wave.phase = rng.uniform(0.0, 2.0 * 3.14159265358979);
            wave.amplitude = rng.uniform(0.4, 1.0);
            wave.channel = static_cast<int>(
                rng.uniform_below(static_cast<std::uint64_t>(spec.channels)));
            waves.push_back(wave);
        }
    }
    return prototypes;
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec, std::int64_t count,
                       std::string_view partition_label) {
    if (spec.num_classes < 2)
        throw std::invalid_argument("make_synthetic: num_classes < 2");
    if (count <= 0) throw std::invalid_argument("make_synthetic: count <= 0");

    const auto prototypes = make_prototypes(spec);
    stats::Rng base(spec.seed);
    auto noise_rng = base.fork(partition_label);

    Dataset ds;
    ds.images = Tensor(Shape{count, spec.channels, spec.height, spec.width});
    ds.labels.resize(static_cast<std::size_t>(count));

    const double inv_h = 1.0 / static_cast<double>(spec.height);
    const double inv_w = 1.0 / static_cast<double>(spec.width);
    for (std::int64_t n = 0; n < count; ++n) {
        // Round-robin labels give exactly balanced classes.
        const int label = static_cast<int>(n % spec.num_classes);
        ds.labels[static_cast<std::size_t>(n)] = label;
        auto rng = noise_rng.fork(static_cast<std::uint64_t>(n));
        const double gain = 1.0 + rng.normal(0.0, spec.gain_stddev);

        float* img = ds.images.data() +
                     static_cast<std::size_t>(n * spec.channels * spec.height *
                                              spec.width);
        for (std::int64_t c = 0; c < spec.channels; ++c)
            for (std::int64_t y = 0; y < spec.height; ++y)
                for (std::int64_t x = 0; x < spec.width; ++x) {
                    double v = 0.0;
                    for (const auto& wave :
                         prototypes[static_cast<std::size_t>(label)]) {
                        if (wave.channel != c) continue;
                        v += wave.amplitude *
                             std::sin(2.0 * 3.14159265358979 *
                                          (wave.fy * y * inv_h +
                                           wave.fx * x * inv_w) +
                                      wave.phase);
                    }
                    v = v * gain + rng.normal(0.0, spec.noise_stddev);
                    img[(c * spec.height + y) * spec.width + x] =
                        static_cast<float>(v);
                }
    }
    return ds;
}

}  // namespace statfi::data

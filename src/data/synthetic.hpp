#pragma once
// Synthetic image dataset.
//
// The paper evaluates on CIFAR-10, which is unavailable offline; this
// generator substitutes a separable image-classification task with the same
// tensor geometry (3x32x32, 10 classes). Each class owns a smooth random
// "prototype" pattern (a sum of low-frequency 2-D sinusoids); samples are
// the prototype plus white noise plus a random global gain. A small CNN
// trains to >90% on it — comparable golden accuracy to the paper's models —
// so criticality measurements exercise real decision boundaries.
// See DESIGN.md §2 for why this preserves the experiments' behaviour.

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace statfi::data {

struct Dataset {
    Tensor images;            // (N, C, H, W)
    std::vector<int> labels;  // size N

    [[nodiscard]] std::int64_t size() const {
        return images.empty() ? 0 : images.shape()[0];
    }

    /// Copy of sample @p index as a (1, C, H, W) tensor.
    [[nodiscard]] Tensor image(std::int64_t index) const;

    /// First @p count samples as a new dataset (cheap experiment subsets).
    [[nodiscard]] Dataset take(std::int64_t count) const;
};

struct SyntheticSpec {
    int num_classes = 10;
    std::int64_t channels = 3;
    std::int64_t height = 32;
    std::int64_t width = 32;
    int waves_per_class = 4;   ///< sinusoid components per class prototype
    /// Per-pixel white noise. The default is tuned so MicroNet converges to
    /// ~92% test accuracy — the golden-accuracy regime of the paper's CNNs
    /// (ResNet-20: 91.7%, MobileNetV2: 92.01%).
    double noise_stddev = 1.6;
    double gain_stddev = 0.1;  ///< per-sample multiplicative jitter
    std::uint64_t seed = 42;   ///< prototype seed (class identity)
};

/// Generate @p count samples. @p partition_label ("train"/"test"/...) forks
/// an independent noise stream, so partitions never share samples while the
/// class prototypes (derived from spec.seed only) stay identical.
Dataset make_synthetic(const SyntheticSpec& spec, std::int64_t count,
                       std::string_view partition_label);

}  // namespace statfi::data

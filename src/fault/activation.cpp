#include "fault/activation.hpp"

#include <algorithm>
#include <stdexcept>

namespace statfi::fault {

std::string ActivationFault::to_string() const {
    return "N" + std::to_string(node) + ".e" + std::to_string(element) + ".b" +
           std::to_string(bit);
}

ActivationUniverse::ActivationUniverse(const nn::Network& net,
                                       const Shape& image_shape,
                                       DataType dtype)
    : dtype_(dtype), bits_(bit_width(dtype)) {
    std::vector<std::int64_t> with_batch{1};
    for (std::size_t i = 0; i < image_shape.rank(); ++i)
        with_batch.push_back(image_shape[i]);
    const auto shapes = net.infer_shapes(Shape(with_batch));
    offsets_.push_back(0);
    for (int id = 0; id < net.node_count(); ++id) {
        names_.push_back(net.node_name(id));
        const std::uint64_t numel =
            shapes[static_cast<std::size_t>(id)].numel();
        numels_.push_back(numel);
        offsets_.push_back(offsets_.back() +
                           numel * static_cast<std::uint64_t>(bits_));
    }
    total_ = offsets_.back();
}

std::uint64_t ActivationUniverse::node_population(int node) const {
    const auto idx = static_cast<std::size_t>(node);
    if (node < 0 || idx >= numels_.size())
        throw std::out_of_range("ActivationUniverse: node index");
    return offsets_[idx + 1] - offsets_[idx];
}

std::uint64_t ActivationUniverse::node_offset(int node) const {
    const auto idx = static_cast<std::size_t>(node);
    if (node < 0 || idx >= numels_.size())
        throw std::out_of_range("ActivationUniverse: node index");
    return offsets_[idx];
}

ActivationFault ActivationUniverse::decode(std::uint64_t global_index) const {
    if (global_index >= total_)
        throw std::out_of_range("ActivationUniverse::decode: index >= N");
    const auto it =
        std::upper_bound(offsets_.begin(), offsets_.end(), global_index);
    const auto node = static_cast<int>(it - offsets_.begin()) - 1;
    const std::uint64_t local =
        global_index - offsets_[static_cast<std::size_t>(node)];
    const std::uint64_t elements = numels_[static_cast<std::size_t>(node)];
    ActivationFault fault;
    fault.node = node;
    fault.bit = static_cast<std::int32_t>(local / elements);
    fault.element = local % elements;
    return fault;
}

std::uint64_t ActivationUniverse::encode(const ActivationFault& fault) const {
    const auto idx = static_cast<std::size_t>(fault.node);
    if (fault.node < 0 || idx >= numels_.size())
        throw std::out_of_range("ActivationUniverse::encode: bad node");
    if (fault.bit < 0 || fault.bit >= bits_)
        throw std::out_of_range("ActivationUniverse::encode: bad bit");
    if (fault.element >= numels_[idx])
        throw std::out_of_range("ActivationUniverse::encode: bad element");
    return offsets_[idx] +
           static_cast<std::uint64_t>(fault.bit) * numels_[idx] + fault.element;
}

}  // namespace statfi::fault

#pragma once
// Transient activation faults.
//
// The paper injects *permanent* faults into *static* weights (the memory
// dominating soft-error contributions). Its referenced resilience studies
// (Li et al. SC'17, He et al. MICRO'20) also consider *transient* faults in
// the datapath: one bit of one intermediate activation value flips during
// one inference. This module enumerates that population so the same
// statistical machinery (Eq. 1/3 over per-node subpopulations) applies.
//
// An activation fault is (node, element, bit) within a single-image
// inference; populations are defined for batch-1 activation shapes.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/codec.hpp"
#include "nn/network.hpp"

namespace statfi::fault {

struct ActivationFault {
    std::int32_t node = 0;         ///< graph node whose output is corrupted
    std::uint64_t element = 0;     ///< flat index into the (1,C,H,W) output
    std::int32_t bit = 0;          ///< bit position, 0 = LSB
    [[nodiscard]] bool operator==(const ActivationFault&) const noexcept =
        default;
    [[nodiscard]] std::string to_string() const;
};

/// Enumerable population of single-bit transient activation faults over all
/// graph nodes, for a fixed single-image input shape. Subpopulations are
/// per node (the activation analogue of the paper's per-layer split);
/// index layout: node -> bit -> element.
class ActivationUniverse {
public:
    ActivationUniverse(const nn::Network& net, const Shape& image_shape,
                       DataType dtype = DataType::Float32);

    [[nodiscard]] DataType dtype() const noexcept { return dtype_; }
    [[nodiscard]] int bits() const noexcept { return bits_; }
    [[nodiscard]] int node_count() const noexcept {
        return static_cast<int>(numels_.size());
    }
    [[nodiscard]] const std::string& node_name(int node) const {
        return names_.at(static_cast<std::size_t>(node));
    }
    /// Elements in one inference's output of @p node.
    [[nodiscard]] std::uint64_t node_elements(int node) const {
        return numels_.at(static_cast<std::size_t>(node));
    }
    /// N_node = elements * bits.
    [[nodiscard]] std::uint64_t node_population(int node) const;
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    [[nodiscard]] ActivationFault decode(std::uint64_t global_index) const;
    [[nodiscard]] std::uint64_t encode(const ActivationFault& fault) const;
    /// First global index of node @p node's subpopulation.
    [[nodiscard]] std::uint64_t node_offset(int node) const;

private:
    DataType dtype_;
    int bits_;
    std::vector<std::string> names_;
    std::vector<std::uint64_t> numels_;
    std::vector<std::uint64_t> offsets_;  // prefix sums
    std::uint64_t total_ = 0;
};

}  // namespace statfi::fault

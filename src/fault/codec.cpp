#include "fault/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace statfi::fault {

int bit_width(DataType dtype) noexcept {
    switch (dtype) {
        case DataType::Float32: return 32;
        case DataType::Float16: return 16;
        case DataType::BFloat16: return 16;
        case DataType::Int8: return 8;
    }
    return 32;
}

const char* to_string(DataType dtype) noexcept {
    switch (dtype) {
        case DataType::Float32: return "fp32";
        case DataType::Float16: return "fp16";
        case DataType::BFloat16: return "bf16";
        case DataType::Int8: return "int8";
    }
    return "?";
}

std::uint32_t float_bits(float value) noexcept {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float float_from_bits(std::uint32_t bits) noexcept {
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

namespace {

/// FP32 -> FP16 with round-to-nearest-even, handling subnormals/overflow.
std::uint16_t fp32_to_fp16(float value) {
    const std::uint32_t f = float_bits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xFF) - 127;
    std::uint32_t mant = f & 0x7FFFFFu;

    if (exp == 128) {  // Inf / NaN
        if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7C00u);
        // NaN: keep the top 10 payload bits so decode(encode(w)) round-trips;
        // a payload entirely below fp16 precision still has to stay a NaN.
        std::uint32_t payload = mant >> 13;
        if (payload == 0) payload = 0x200u;
        return static_cast<std::uint16_t>(sign | 0x7C00u | payload);
    }
    if (exp > 15) {  // overflow -> Inf
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    if (exp >= -14) {  // normal range
        std::uint32_t half = (static_cast<std::uint32_t>(exp + 15) << 10) |
                             (mant >> 13);
        // round to nearest even on the 13 dropped bits
        const std::uint32_t rest = mant & 0x1FFFu;
        if (rest > 0x1000u || (rest == 0x1000u && (half & 1u))) ++half;
        return static_cast<std::uint16_t>(sign | half);
    }
    if (exp >= -25) {  // subnormal (or rounds up into the subnormal range)
        mant |= 0x800000u;  // implicit leading 1
        // Subnormal half words count units of 2^-24: mant_fp16 =
        // round(mant * 2^(exp+1)), i.e. a right shift by -exp-1 in [14, 24].
        const int shift = -exp - 1;
        std::uint32_t half = mant >> shift;
        const std::uint32_t rest = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rest > halfway || (rest == halfway && (half & 1u))) ++half;
        return static_cast<std::uint16_t>(sign | half);
    }
    return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

float fp16_to_fp32(std::uint16_t h) {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x3FFu;
    if (exp == 0x1F)  // Inf / NaN
        return float_from_bits(sign | 0x7F800000u | (mant << 13));
    if (exp == 0) {
        if (mant == 0) return float_from_bits(sign);  // signed zero
        // subnormal: value = mant * 2^-24
        return float_from_bits(sign) +
               std::ldexp(static_cast<float>(mant), -24) *
                   ((sign != 0u) ? -1.0f : 1.0f);
    }
    return float_from_bits(sign | ((exp + 112) << 23) | (mant << 13));
}

std::uint16_t fp32_to_bf16(float value) {
    std::uint32_t f = float_bits(value);
    if (std::isnan(value)) {
        // Truncate the payload; only force the quiet bit when the surviving
        // mantissa would be zero (which would turn the NaN into an Inf).
        std::uint32_t top = f >> 16;
        if ((top & 0x7Fu) == 0) top |= 0x40u;
        return static_cast<std::uint16_t>(top);
    }
    // round to nearest even on the dropped 16 bits
    const std::uint32_t rest = f & 0xFFFFu;
    std::uint32_t top = f >> 16;
    if (rest > 0x8000u || (rest == 0x8000u && (top & 1u))) ++top;
    return static_cast<std::uint16_t>(top);
}

float bf16_to_fp32(std::uint16_t b) {
    return float_from_bits(static_cast<std::uint32_t>(b) << 16);
}

std::uint8_t fp32_to_int8(float value, QuantParams qp) {
    if (!(qp.scale > 0.0f))
        throw std::domain_error("int8 codec: quantization scale must be > 0");
    const float q = std::nearbyint(value / qp.scale) +
                    static_cast<float>(qp.zero_point);
    const auto clamped =
        static_cast<std::int32_t>(std::clamp(q, -127.0f, 127.0f));
    return static_cast<std::uint8_t>(static_cast<std::int8_t>(clamped));
}

float int8_to_fp32(std::uint8_t word, QuantParams qp) {
    return static_cast<float>(static_cast<std::int32_t>(
               static_cast<std::int8_t>(word)) -
                              qp.zero_point) *
           qp.scale;
}

}  // namespace

std::uint32_t encode(float value, DataType dtype, QuantParams qp) {
    switch (dtype) {
        case DataType::Float32: return float_bits(value);
        case DataType::Float16: return fp32_to_fp16(value);
        case DataType::BFloat16: return fp32_to_bf16(value);
        case DataType::Int8: return fp32_to_int8(value, qp);
    }
    return 0;
}

float decode(std::uint32_t word, DataType dtype, QuantParams qp) {
    switch (dtype) {
        case DataType::Float32: return float_from_bits(word);
        case DataType::Float16:
            return fp16_to_fp32(static_cast<std::uint16_t>(word));
        case DataType::BFloat16:
            return bf16_to_fp32(static_cast<std::uint16_t>(word));
        case DataType::Int8:
            return int8_to_fp32(static_cast<std::uint8_t>(word), qp);
    }
    return 0.0f;
}

float quantize(float value, DataType dtype, QuantParams qp) {
    return decode(encode(value, dtype, qp), dtype, qp);
}

namespace {
void check_bit(int bit, DataType dtype) {
    if (bit < 0 || bit >= bit_width(dtype))
        throw std::domain_error("codec: bit index out of range for data type");
}
}  // namespace

bool bit_of(float value, int bit, DataType dtype, QuantParams qp) {
    check_bit(bit, dtype);
    return (encode(value, dtype, qp) >> bit) & 1u;
}

float apply_stuck_at(float value, int bit, bool stuck_to_one, DataType dtype,
                     QuantParams qp) {
    check_bit(bit, dtype);
    std::uint32_t word = encode(value, dtype, qp);
    if (stuck_to_one)
        word |= (1u << bit);
    else
        word &= ~(1u << bit);
    return decode(word, dtype, qp);
}

float apply_bit_flip(float value, int bit, DataType dtype, QuantParams qp) {
    check_bit(bit, dtype);
    return decode(encode(value, dtype, qp) ^ (1u << bit), dtype, qp);
}

float apply_multi_flip(float value, std::uint32_t bit_mask, DataType dtype,
                       QuantParams qp) {
    const int width = bit_width(dtype);
    if (width < 32 && (bit_mask >> width) != 0u)
        throw std::domain_error(
            "codec: multi-flip mask has bits outside the data type width");
    return decode(encode(value, dtype, qp) ^ bit_mask, dtype, qp);
}

std::uint64_t combination_count(int n, int k) {
    if (n < 0 || k < 0)
        throw std::domain_error("combination_count: negative n or k");
    if (k > n) return 0;
    if (k > n - k) k = n - k;
    // Multiplicative form; exact for n <= 32 (max C(32,16) < 2^31).
    std::uint64_t result = 1;
    for (int i = 1; i <= k; ++i)
        result = result * static_cast<std::uint64_t>(n - k + i) /
                 static_cast<std::uint64_t>(i);
    return result;
}

std::uint32_t combo_mask(std::uint64_t rank, int n, int k) {
    if (n < 1 || n > 32 || k < 1 || k > n)
        throw std::domain_error("combo_mask: need 1 <= k <= n <= 32");
    if (rank >= combination_count(n, k))
        throw std::out_of_range("combo_mask: rank out of range");
    // Greedy combinadic decode: the i-th highest member c_i is the largest
    // bit position with C(c_i, i) <= remaining rank.
    std::uint32_t mask = 0;
    int c = n;
    for (int i = k; i >= 1; --i) {
        do {
            --c;
        } while (combination_count(c, i) > rank);
        rank -= combination_count(c, i);
        mask |= 1u << c;
    }
    return mask;
}

std::uint64_t combo_rank(std::uint32_t mask, int k) {
    std::uint64_t rank = 0;
    int seen = 0;
    for (int bit = 0; bit < 32; ++bit) {
        if ((mask >> bit) & 1u) {
            ++seen;
            rank += combination_count(bit, seen);
        }
    }
    if (seen != k)
        throw std::domain_error("combo_rank: mask popcount does not match k");
    return rank;
}

double bit_flip_distance(float value, int bit, DataType dtype, QuantParams qp) {
    const float golden = quantize(value, dtype, qp);
    const float faulty = apply_bit_flip(value, bit, dtype, qp);
    if (!std::isfinite(faulty) || !std::isfinite(golden))
        return static_cast<double>(std::numeric_limits<float>::max());
    return std::fabs(static_cast<double>(faulty) - static_cast<double>(golden));
}

}  // namespace statfi::fault

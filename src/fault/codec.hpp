#pragma once
// Bit-level codecs for weight data representations.
//
// A hardware fault corrupts the *stored encoding* of a weight, not its
// abstract value. The codec maps a float weight to the bit pattern a given
// data type stores, applies stuck-at / bit-flip faults on that pattern, and
// maps back to the float the inference engine computes with.
//
// FP32 is the paper's representation; FP16, bfloat16 and INT8 implement its
// stated future work ("different data representations").

#include <cstdint>

namespace statfi::fault {

enum class DataType : std::uint8_t { Float32, Float16, BFloat16, Int8 };

/// Bits per stored weight word: 32, 16, 16, 8.
int bit_width(DataType dtype) noexcept;
const char* to_string(DataType dtype) noexcept;

/// Quantization parameters (INT8 only; ignored elsewhere). Affine per-tensor
/// scheme: q = clamp(round(w / scale) + zero_point, -127, 127) and
/// w = (q - zero_point) * scale. The default zero_point of 0 is the paper
/// repo's symmetric scheme; asymmetric stores stay representable.
struct QuantParams {
    float scale = 1.0f;
    std::int32_t zero_point = 0;
};

/// Encode a float into the data type's stored word (low bits used).
std::uint32_t encode(float value, DataType dtype, QuantParams qp = {});

/// Decode a stored word back to the float the engine computes with.
float decode(std::uint32_t word, DataType dtype, QuantParams qp = {});

/// Round-trip through the encoding — the value actually used at inference
/// time when weights are stored in @p dtype.
float quantize(float value, DataType dtype, QuantParams qp = {});

/// Value of bit @p bit (0 = LSB) of the stored encoding of @p value.
bool bit_of(float value, int bit, DataType dtype, QuantParams qp = {});

/// Stuck-at fault: force bit to @p stuck_to_one and decode. If the bit
/// already holds that value the fault is masked (result == quantize(value)).
float apply_stuck_at(float value, int bit, bool stuck_to_one, DataType dtype,
                     QuantParams qp = {});

/// Transient single-bit-flip fault: toggle bit and decode.
float apply_bit_flip(float value, int bit, DataType dtype, QuantParams qp = {});

/// Transient multi-bit upset: XOR @p bit_mask into the stored word and
/// decode. The mask must fit in bit_width(dtype).
float apply_multi_flip(float value, std::uint32_t bit_mask, DataType dtype,
                       QuantParams qp = {});

// -- combinadic codec for multi-bit upsets -----------------------------------
//
// A k-bit upset within one stored word is a k-subset of its bit positions.
// The combinatorial number system gives a dense bijection
// rank in [0, C(n,k)) <-> k-subset, so multi-bit universes enumerate without
// materialization exactly like the single-bit ones (for k=1, rank == bit).

/// C(n, k) without overflow for n <= 32. C(n, 0) == 1; k > n yields 0.
/// @throws std::domain_error for negative n or k.
std::uint64_t combination_count(int n, int k);

/// Decode a combinadic rank into the k-subset bit mask over n bit positions.
/// @throws std::domain_error for invalid n/k, std::out_of_range for
/// rank >= C(n, k).
std::uint32_t combo_mask(std::uint64_t rank, int n, int k);

/// Encode a k-bit mask back to its combinadic rank (inverse of combo_mask).
/// @throws std::domain_error if popcount(mask) != k.
std::uint64_t combo_rank(std::uint32_t mask, int k);

/// |faulty - golden| for a bit flip at @p bit, in double precision. A flip
/// producing Inf/NaN (e.g. exponent 0xFE -> 0xFF) is scored as FLT_MAX so
/// averages stay finite — such faults are maximally critical anyway.
double bit_flip_distance(float value, int bit, DataType dtype,
                         QuantParams qp = {});

/// IEEE-754 binary32 introspection helpers (used by tests and Fig. 2).
std::uint32_t float_bits(float value) noexcept;
float float_from_bits(std::uint32_t bits) noexcept;

}  // namespace statfi::fault

#include "fault/fault.hpp"

namespace statfi::fault {

const char* to_string(FaultModel model) noexcept {
    switch (model) {
        case FaultModel::StuckAt0: return "sa0";
        case FaultModel::StuckAt1: return "sa1";
        case FaultModel::BitFlip: return "flip";
    }
    return "?";
}

std::string Fault::to_string() const {
    return std::string("L") + std::to_string(layer) + ".w" +
           std::to_string(weight_index) + ".b" + std::to_string(bit) + "." +
           fault::to_string(model);
}

float corrupt(float value, const Fault& fault, DataType dtype, QuantParams qp) {
    switch (fault.model) {
        case FaultModel::StuckAt0:
            return apply_stuck_at(value, fault.bit, false, dtype, qp);
        case FaultModel::StuckAt1:
            return apply_stuck_at(value, fault.bit, true, dtype, qp);
        case FaultModel::BitFlip:
            return apply_bit_flip(value, fault.bit, dtype, qp);
    }
    return value;
}

bool is_masked(float value, const Fault& fault, DataType dtype, QuantParams qp) {
    const bool golden_bit = bit_of(value, fault.bit, dtype, qp);
    switch (fault.model) {
        case FaultModel::StuckAt0: return !golden_bit;
        case FaultModel::StuckAt1: return golden_bit;
        case FaultModel::BitFlip: return false;
    }
    return false;
}

}  // namespace statfi::fault

#include "fault/fault.hpp"

namespace statfi::fault {

const char* to_string(FaultModel model) noexcept {
    switch (model) {
        case FaultModel::StuckAt0: return "sa0";
        case FaultModel::StuckAt1: return "sa1";
        case FaultModel::BitFlip: return "flip";
        case FaultModel::MultiFlip: return "mbu";
        case FaultModel::ActivationFlip: return "act";
    }
    return "?";
}

std::string Fault::to_string() const {
    const char* site = model == FaultModel::ActivationFlip ? ".e" : ".w";
    const char* axis = model == FaultModel::MultiFlip ? ".c" : ".b";
    std::string s = std::string(model == FaultModel::ActivationFlip ? "N" : "L") +
                    std::to_string(layer) + site + std::to_string(weight_index) +
                    axis + std::to_string(bit) + "." + fault::to_string(model);
    if (model == FaultModel::MultiFlip) s += std::to_string(k);
    return s;
}

float corrupt(float value, const Fault& fault, DataType dtype, QuantParams qp) {
    switch (fault.model) {
        case FaultModel::StuckAt0:
            return apply_stuck_at(value, fault.bit, false, dtype, qp);
        case FaultModel::StuckAt1:
            return apply_stuck_at(value, fault.bit, true, dtype, qp);
        case FaultModel::BitFlip:
        case FaultModel::ActivationFlip:
            return apply_bit_flip(value, fault.bit, dtype, qp);
        case FaultModel::MultiFlip:
            return apply_multi_flip(
                value,
                combo_mask(static_cast<std::uint64_t>(fault.bit),
                           bit_width(dtype), fault.k),
                dtype, qp);
    }
    return value;
}

bool is_masked(float value, const Fault& fault, DataType dtype, QuantParams qp) {
    switch (fault.model) {
        case FaultModel::StuckAt0:
            return !bit_of(value, fault.bit, dtype, qp);
        case FaultModel::StuckAt1:
            return bit_of(value, fault.bit, dtype, qp);
        case FaultModel::BitFlip:
        case FaultModel::MultiFlip:
        case FaultModel::ActivationFlip:
            return false;
    }
    return false;
}

}  // namespace statfi::fault

#pragma once
// Fault descriptors. A fault names one bit of one stored weight word and a
// corruption model. The paper's exhaustive population is the set of all
// (weight, bit, polarity) stuck-at faults under the single-fault assumption.

#include <cstdint>
#include <string>

#include "fault/codec.hpp"

namespace statfi::fault {

enum class FaultModel : std::uint8_t {
    StuckAt0,        ///< permanent: bit forced to 0
    StuckAt1,        ///< permanent: bit forced to 1
    BitFlip,         ///< transient: bit toggled (extension beyond the paper)
    MultiFlip,       ///< transient: k bits of one stored word toggled at once
    ActivationFlip,  ///< transient: bit toggled in one activation element
};

const char* to_string(FaultModel model) noexcept;

/// True when two fault models can share one fault-batched ensemble pass.
/// All weight-resident models (stuck-at in either polarity, single and
/// multi-bit flips) are mutually groupable: each ensemble lane applies its
/// own corruption to a private copy of the faulty layer's output row, so the
/// exact mutation per lane is free to differ. Activation faults corrupt the
/// input image instead of a weight and form their own family. Grouping keys
/// on this predicate — NOT on exact model equality — because stuck-at
/// universes alternate StuckAt0/StuckAt1 at consecutive indices, which would
/// otherwise degenerate every group to a single fault.
[[nodiscard]] constexpr bool same_ensemble_family(FaultModel a,
                                                  FaultModel b) noexcept {
    return (a == FaultModel::ActivationFlip) == (b == FaultModel::ActivationFlip);
}

struct Fault {
    std::int32_t layer = 0;          ///< weight-layer index l (paper's layer id),
                                     ///< or graph-node id for activation faults
    std::uint64_t weight_index = 0;  ///< flat index within that layer's weight
                                     ///< tensor (or the node's output tensor)
    std::int32_t bit = 0;            ///< bit position i, 0 = LSB; for MultiFlip
                                     ///< the combinadic rank of the k-subset
    FaultModel model = FaultModel::StuckAt0;
    std::uint8_t k = 1;              ///< simultaneous flips (MultiFlip only)

    [[nodiscard]] bool operator==(const Fault&) const noexcept = default;
    [[nodiscard]] std::string to_string() const;
};

/// Apply the fault's corruption model to a weight value.
float corrupt(float value, const Fault& fault, DataType dtype,
              QuantParams qp = {});

/// True if the fault cannot change the stored word (stuck-at equal to the
/// golden bit). Bit flips are never masked at the encoding level.
bool is_masked(float value, const Fault& fault, DataType dtype,
               QuantParams qp = {});

}  // namespace statfi::fault

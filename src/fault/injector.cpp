#include "fault/injector.hpp"

#include <stdexcept>

namespace statfi::fault {

WeightInjector::WeightInjector(nn::Network& net, DataType dtype,
                               std::vector<QuantParams> explicit_quant)
    : dtype_(dtype), weights_(net.weight_layers()) {
    if (!explicit_quant.empty()) {
        if (explicit_quant.size() != weights_.size())
            throw std::invalid_argument(
                "WeightInjector: explicit quant params cover " +
                std::to_string(explicit_quant.size()) + " layers, network has " +
                std::to_string(weights_.size()));
        qparams_ = std::move(explicit_quant);
        return;
    }
    qparams_.resize(weights_.size());
    if (dtype_ == DataType::Int8) {
        for (std::size_t l = 0; l < weights_.size(); ++l) {
            const float max_abs = weights_[l].weight->max_abs();
            qparams_[l].scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
        }
    }
}

QuantParams WeightInjector::quant_params(int layer) const {
    return qparams_.at(static_cast<std::size_t>(layer));
}

float* WeightInjector::weight_ptr(const Fault& fault) const {
    const auto l = static_cast<std::size_t>(fault.layer);
    if (fault.layer < 0 || l >= weights_.size())
        throw std::out_of_range("WeightInjector: layer " +
                                std::to_string(fault.layer) + " out of range");
    Tensor& w = *weights_[l].weight;
    if (fault.weight_index >= w.numel())
        throw std::out_of_range("WeightInjector: weight index out of range in " +
                                weights_[l].name);
    return w.data() + fault.weight_index;
}

float WeightInjector::golden_value(const Fault& fault) const {
    return quantize(*weight_ptr(fault), dtype_,
                    qparams_[static_cast<std::size_t>(fault.layer)]);
}

bool WeightInjector::masked(const Fault& fault) const {
    return is_masked(*weight_ptr(fault), fault, dtype_,
                     qparams_[static_cast<std::size_t>(fault.layer)]);
}

WeightInjector::Applied WeightInjector::apply(const Fault& fault) {
    float* slot = weight_ptr(fault);
    const QuantParams qp = qparams_[static_cast<std::size_t>(fault.layer)];
    Applied record;
    record.original = *slot;
    record.masked = is_masked(*slot, fault, dtype_, qp);
    record.faulty = corrupt(*slot, fault, dtype_, qp);
    *slot = record.faulty;
    return record;
}

void WeightInjector::restore(const Fault& fault, const Applied& record) {
    *weight_ptr(fault) = record.original;
}

int WeightInjector::node_of_layer(int layer) const {
    const auto l = static_cast<std::size_t>(layer);
    if (layer < 0 || l >= weights_.size())
        throw std::out_of_range("WeightInjector::node_of_layer: out of range");
    return weights_[l].node_id;
}

}  // namespace statfi::fault

#pragma once
// WeightInjector: applies faults to a network's weight storage and restores
// the golden value afterwards (PyTorchFI-style weight corruption).
//
// For non-FP32 data types the injector also *quantizes the view*: the golden
// weight used for masking decisions and restoration is the value after a
// round trip through the storage encoding, exactly what a device holding
// weights in that format computes with.

#include <vector>

#include "fault/fault.hpp"
#include "fault/universe.hpp"
#include "nn/network.hpp"

namespace statfi::fault {

class WeightInjector {
public:
    /// Binds to the network's weight layers. For Int8, per-layer symmetric
    /// quantization scales (max|w| / 127) are computed from current weights —
    /// unless @p explicit_quant (one entry per weight layer, weight-layer
    /// order) supplies them, as it does when the fixture deployed a
    /// formats::QuantizedStore and the weights are already quantized.
    /// @throws std::invalid_argument when explicit_quant is non-empty and
    /// its size does not match the network's weight-layer count.
    WeightInjector(nn::Network& net, DataType dtype = DataType::Float32,
                   std::vector<QuantParams> explicit_quant = {});

    [[nodiscard]] DataType dtype() const noexcept { return dtype_; }
    [[nodiscard]] int layer_count() const noexcept {
        return static_cast<int>(weights_.size());
    }
    [[nodiscard]] QuantParams quant_params(int layer) const;

    /// Golden (storage-quantized) value of the fault's target weight.
    [[nodiscard]] float golden_value(const Fault& fault) const;

    /// True if applying the fault cannot change the stored word.
    [[nodiscard]] bool masked(const Fault& fault) const;

    /// Result of applying one fault.
    struct Applied {
        float original = 0.0f;  ///< value to restore
        float faulty = 0.0f;    ///< value now in the weight tensor
        bool masked = false;    ///< stored word unchanged
    };

    /// Corrupt the target weight in place. Call restore() with the returned
    /// record before applying the next fault (single-fault assumption).
    Applied apply(const Fault& fault);

    /// Restore the weight corrupted by @p fault.
    void restore(const Fault& fault, const Applied& record);

    /// RAII guard: applies on construction, restores on destruction.
    class Scoped {
    public:
        Scoped(WeightInjector& injector, const Fault& fault)
            : injector_(&injector), fault_(fault),
              record_(injector.apply(fault)) {}
        ~Scoped() { injector_->restore(fault_, record_); }
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

        [[nodiscard]] const Applied& record() const noexcept { return record_; }

    private:
        WeightInjector* injector_;
        Fault fault_;
        Applied record_;
    };

    /// Node id owning the fault's layer — the first node the campaign
    /// executor must re-run (everything upstream keeps golden activations).
    [[nodiscard]] int node_of_layer(int layer) const;

private:
    float* weight_ptr(const Fault& fault) const;

    DataType dtype_;
    std::vector<nn::Network::WeightLayerRef> weights_;
    std::vector<QuantParams> qparams_;
};

}  // namespace statfi::fault

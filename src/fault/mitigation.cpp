#include "fault/mitigation.hpp"

#include <sstream>
#include <stdexcept>

#include "io/checksum.hpp"

namespace statfi::fault {

namespace {

std::string fmt_float(float v) {
    std::ostringstream os;
    os << v;
    return os.str();
}

[[noreturn]] void clip_error(std::size_t ordinal, const ClipRule& rule,
                             const std::string& what) {
    throw std::invalid_argument("clip rule #" + std::to_string(ordinal + 1) +
                                " (node '" + rule.node + "'): " + what);
}

[[noreturn]] void tmr_error(std::size_t ordinal, const TmrRule& rule,
                            const std::string& what) {
    throw std::invalid_argument("tmr rule #" + std::to_string(ordinal + 1) +
                                " ('" + rule.layer + "'): " + what);
}

}  // namespace

std::string MitigationConfig::describe() const {
    if (empty()) return "none";
    std::string out;
    for (const auto& c : clips) {
        if (!out.empty()) out += "+";
        out += "clip(" + c.node + ":" + fmt_float(c.lo) + ":" + fmt_float(c.hi) +
               ")";
    }
    for (const auto& t : tmr) {
        if (!out.empty()) out += "+";
        out += "tmr(" + t.layer + ")";
    }
    return out;
}

std::uint32_t MitigationConfig::descriptor_hash() const {
    if (empty()) return 0;
    const std::string d = describe();
    return io::crc32(d.data(), d.size());
}

ResolvedMitigation resolve_mitigation(const MitigationConfig& config,
                                      nn::Network& net) {
    ResolvedMitigation resolved;
    resolved.node_clips.assign(static_cast<std::size_t>(net.node_count()),
                               std::nullopt);

    for (std::size_t r = 0; r < config.clips.size(); ++r) {
        const ClipRule& rule = config.clips[r];
        if (!(rule.lo < rule.hi))
            clip_error(r, rule,
                       "invalid range [" + fmt_float(rule.lo) + ", " +
                           fmt_float(rule.hi) + "): lo must be < hi");
        bool matched = false;
        for (int id = 0; id < net.node_count(); ++id) {
            if (rule.node != "*" && net.node_name(id) != rule.node) continue;
            resolved.node_clips[static_cast<std::size_t>(id)] =
                std::make_pair(rule.lo, rule.hi);
            matched = true;
        }
        if (!matched) clip_error(r, rule, "unknown graph node");
        resolved.any_clip = true;
    }

    const auto weights = net.weight_layers();
    resolved.tmr_layers.assign(weights.size(), 0);
    for (std::size_t r = 0; r < config.tmr.size(); ++r) {
        const TmrRule& rule = config.tmr[r];
        bool matched = false;
        for (std::size_t l = 0; l < weights.size(); ++l) {
            if (rule.layer != "*" && weights[l].name != rule.layer) continue;
            resolved.tmr_layers[l] = 1;
            matched = true;
        }
        if (matched) continue;
        // Distinguish "no such name" from "a node, but not a weight layer".
        bool is_node = false;
        for (int id = 0; id < net.node_count() && !is_node; ++id)
            is_node = net.node_name(id) == rule.layer;
        if (is_node)
            tmr_error(r, rule,
                      "node has no injectable weights; TMR protects weight "
                      "layers only");
        tmr_error(r, rule, "unknown weight layer");
    }
    return resolved;
}

}  // namespace statfi::fault

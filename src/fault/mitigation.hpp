#pragma once
// Mitigation layer: cheap architectural hardening evaluated as a campaign
// axis.
//
// Two mitigations with well-studied hardware analogues:
//   * activation range clipping — each protected node's output is clamped to
//     [lo, hi] after it is computed, bounding the astronomically large values
//     an exponent-bit flip produces (Hoang et al.'s Ranger, Vinck et al.);
//   * selective TMR on weights — a protected layer's weight words are
//     triple-stored and majority-voted, so any single-word fault (stuck-at,
//     flip, or multi-bit upset confined to one word) is outvoted and Masked
//     without running inference.
//
// Clipping applies to the *deployed* network: the golden pass runs with the
// same clamp, so a mitigated campaign measures the hardened network against
// its own fault-free behaviour, not against the unhardened baseline.
//
// Rules are validated against the actual graph by resolve_mitigation(); bad
// rules raise rule-attributed errors instead of silently matching nothing.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace statfi::fault {

/// Clamp node @p node's output to [lo, hi]. node == "*" protects every node.
struct ClipRule {
    std::string node;
    float lo = 0.0f;
    float hi = 0.0f;
    [[nodiscard]] bool operator==(const ClipRule&) const noexcept = default;
};

/// Triple-store the named weight layer. layer == "*" protects every layer.
struct TmrRule {
    std::string layer;
    [[nodiscard]] bool operator==(const TmrRule&) const noexcept = default;
};

struct MitigationConfig {
    std::vector<ClipRule> clips;
    std::vector<TmrRule> tmr;

    [[nodiscard]] bool operator==(const MitigationConfig&) const noexcept =
        default;
    [[nodiscard]] bool empty() const noexcept {
        return clips.empty() && tmr.empty();
    }
    /// Canonical human/log descriptor: "none", or e.g.
    /// "clip(*:-6:6)+tmr(conv1)".
    [[nodiscard]] std::string describe() const;
    /// CRC32 of describe() — folded into journal/manifest fingerprints so a
    /// resumed campaign can never silently change mitigations.
    [[nodiscard]] std::uint32_t descriptor_hash() const;
};

/// MitigationConfig resolved against a concrete graph.
struct ResolvedMitigation {
    /// One entry per graph node: the clip range, if any.
    std::vector<std::optional<std::pair<float, float>>> node_clips;
    /// One entry per weight layer (FaultUniverse layer index): TMR protected?
    std::vector<char> tmr_layers;
    bool any_clip = false;

    [[nodiscard]] bool tmr_protects(int layer) const noexcept {
        return layer >= 0 &&
               static_cast<std::size_t>(layer) < tmr_layers.size() &&
               tmr_layers[static_cast<std::size_t>(layer)] != 0;
    }
};

/// Validate @p config against @p net and index its rules by node/layer id.
/// @throws std::invalid_argument with the offending rule's ordinal and name
/// for unknown node/layer names, lo >= hi clip ranges, and TMR rules naming
/// graph nodes without injectable weights.
ResolvedMitigation resolve_mitigation(const MitigationConfig& config,
                                      nn::Network& net);

}  // namespace statfi::fault

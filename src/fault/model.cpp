#include "fault/model.hpp"

#include <stdexcept>

namespace statfi::fault {

const char* to_string(FaultModelKind kind) noexcept {
    switch (kind) {
        case FaultModelKind::WeightStuckAt: return "stuck-at";
        case FaultModelKind::WeightBitFlip: return "flip";
        case FaultModelKind::ActivationBitFlip: return "activation";
        case FaultModelKind::MultiBitUpset: return "mbu";
    }
    return "?";
}

std::string FaultModelSpec::describe() const {
    if (kind == FaultModelKind::MultiBitUpset)
        return "mbu-k" + std::to_string(mbu_k);
    return to_string(kind);
}

FaultModelSpec fault_model_from_string(const std::string& name) {
    FaultModelSpec spec;
    if (name == "stuck-at") {
        spec.kind = FaultModelKind::WeightStuckAt;
    } else if (name == "flip") {
        spec.kind = FaultModelKind::WeightBitFlip;
    } else if (name == "activation") {
        spec.kind = FaultModelKind::ActivationBitFlip;
    } else if (name == "mbu" || name.rfind("mbu-k", 0) == 0) {
        spec.kind = FaultModelKind::MultiBitUpset;
        if (name != "mbu") {
            try {
                spec.mbu_k = std::stoi(name.substr(5));
            } catch (const std::exception&) {
                throw std::invalid_argument(
                    "fault model '" + name + "': bad multi-bit k");
            }
        }
    } else {
        throw std::invalid_argument(
            "unknown fault model '" + name +
            "' (expected stuck-at|flip|activation|mbu[-kN])");
    }
    return spec;
}

}  // namespace statfi::fault

#pragma once
// Fault-model layer: one name for each injectable universe.
//
// The paper's statistical machinery (per-stratum sampling, Eq. 1/3) never
// looks inside a fault — it only needs a dense index space partitioned into
// subpopulations. FaultModelKind names the four universes the engine can
// enumerate; FaultModelSpec is the campaign-level descriptor carried through
// recipes, manifests, journal fingerprints and the event log so a resumed or
// sharded campaign can never silently switch fault models.

#include <string>

#include "fault/codec.hpp"

namespace statfi::fault {

enum class FaultModelKind : std::uint8_t {
    WeightStuckAt,      ///< permanent weight stuck-at (the paper's model)
    WeightBitFlip,      ///< transient single-bit weight flip
    ActivationBitFlip,  ///< transient single-bit activation flip
    MultiBitUpset,      ///< transient k-bit upset within one weight word
};

const char* to_string(FaultModelKind kind) noexcept;

/// Campaign-level fault-model descriptor.
struct FaultModelSpec {
    FaultModelKind kind = FaultModelKind::WeightStuckAt;
    int mbu_k = 2;  ///< simultaneous flips (MultiBitUpset only)

    [[nodiscard]] bool operator==(const FaultModelSpec&) const noexcept =
        default;
    /// Human/log descriptor: "stuck-at", "flip", "activation", "mbu-k2".
    [[nodiscard]] std::string describe() const;
};

/// Parse "stuck-at" | "flip" | "activation" | "mbu" | "mbu-kN".
/// @throws std::invalid_argument on unknown names or bad k.
FaultModelSpec fault_model_from_string(const std::string& name);

}  // namespace statfi::fault

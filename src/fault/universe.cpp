#include "fault/universe.hpp"

#include <algorithm>
#include <stdexcept>

namespace statfi::fault {

void FaultUniverse::build_offsets() {
    layer_offsets_.assign(layers_.size() + 1, 0);
    for (std::size_t l = 0; l < layers_.size(); ++l)
        layer_offsets_[l + 1] =
            layer_offsets_[l] + layers_[l].weight_count *
                                    static_cast<std::uint64_t>(bits_) *
                                    static_cast<std::uint64_t>(polarities_);
    total_ = layer_offsets_.back();
}

FaultUniverse::FaultUniverse(nn::Network& net, DataType dtype, int polarities)
    : dtype_(dtype), bits_(bit_width(dtype)), polarities_(polarities) {
    for (const auto& ref : net.weight_layers())
        layers_.push_back(LayerInfo{ref.name, ref.weight->numel()});
    build_offsets();
}

FaultUniverse FaultUniverse::stuck_at(nn::Network& net, DataType dtype) {
    FaultUniverse u(net, dtype, 2);
    u.kind_ = FaultModelKind::WeightStuckAt;
    return u;
}

FaultUniverse FaultUniverse::bit_flip(nn::Network& net, DataType dtype) {
    FaultUniverse u(net, dtype, 1);
    u.kind_ = FaultModelKind::WeightBitFlip;
    return u;
}

FaultUniverse FaultUniverse::multi_bit(nn::Network& net, int k, DataType dtype) {
    const int width = bit_width(dtype);
    if (k < 1 || k > width)
        throw std::invalid_argument(
            "FaultUniverse::multi_bit: k must be in [1, " +
            std::to_string(width) + "] for " + to_string(dtype) + ", got " +
            std::to_string(k));
    FaultUniverse u(net, dtype, 1);
    u.kind_ = FaultModelKind::MultiBitUpset;
    u.k_ = k;
    u.bits_ = static_cast<int>(combination_count(width, k));
    u.build_offsets();
    return u;
}

FaultUniverse FaultUniverse::activation(const nn::Network& net,
                                        const Shape& image_shape,
                                        DataType dtype) {
    FaultUniverse u;
    u.kind_ = FaultModelKind::ActivationBitFlip;
    u.dtype_ = dtype;
    u.bits_ = bit_width(dtype);
    u.polarities_ = 1;
    // Populations are defined over batch-1 activation shapes: one transient
    // corruption of one element of one node's output during one inference.
    std::vector<std::int64_t> with_batch{1};
    for (std::size_t i = 0; i < image_shape.rank(); ++i)
        with_batch.push_back(image_shape[i]);
    const auto shapes = net.infer_shapes(Shape(with_batch));
    for (int id = 0; id < net.node_count(); ++id)
        u.layers_.push_back(LayerInfo{
            net.node_name(id),
            static_cast<std::uint64_t>(
                shapes[static_cast<std::size_t>(id)].numel())});
    u.build_offsets();
    return u;
}

FaultUniverse FaultUniverse::make(nn::Network& net, const FaultModelSpec& spec,
                                  const Shape& image_shape, DataType dtype) {
    switch (spec.kind) {
        case FaultModelKind::WeightStuckAt: return stuck_at(net, dtype);
        case FaultModelKind::WeightBitFlip: return bit_flip(net, dtype);
        case FaultModelKind::MultiBitUpset:
            return multi_bit(net, spec.mbu_k, dtype);
        case FaultModelKind::ActivationBitFlip:
            return activation(net, image_shape, dtype);
    }
    throw std::invalid_argument("FaultUniverse::make: bad fault-model kind");
}

std::uint64_t FaultUniverse::layer_population(int l) const {
    const auto idx = static_cast<std::size_t>(l);
    if (l < 0 || idx >= layers_.size())
        throw std::out_of_range("FaultUniverse: layer index");
    return layer_offsets_[idx + 1] - layer_offsets_[idx];
}

std::uint64_t FaultUniverse::bit_population(int l) const {
    return layer(l).weight_count * static_cast<std::uint64_t>(polarities_);
}

Fault FaultUniverse::decode(std::uint64_t global_index) const {
    if (global_index >= total_)
        throw std::out_of_range("FaultUniverse::decode: index >= N");
    // Find the layer via the offset table (layers are few; linear scan would
    // do, but upper_bound keeps this O(log L) for deep networks).
    const auto it = std::upper_bound(layer_offsets_.begin(), layer_offsets_.end(),
                                     global_index);
    const auto l = static_cast<int>(it - layer_offsets_.begin()) - 1;
    const std::uint64_t local =
        global_index - layer_offsets_[static_cast<std::size_t>(l)];
    const std::uint64_t per_bit = bit_population(l);
    const int bit = static_cast<int>(local / per_bit);
    return decode_in_subpop(l, bit, local % per_bit);
}

std::uint64_t FaultUniverse::encode(const Fault& fault) const {
    const auto l = fault.layer;
    if (l < 0 || static_cast<std::size_t>(l) >= layers_.size())
        throw std::out_of_range("FaultUniverse::encode: bad layer");
    if (fault.bit < 0 || fault.bit >= bits_)
        throw std::out_of_range("FaultUniverse::encode: bad bit");
    if (fault.weight_index >= layers_[static_cast<std::size_t>(l)].weight_count)
        throw std::out_of_range("FaultUniverse::encode: bad weight index");
    FaultModel expected = FaultModel::StuckAt0;
    std::uint64_t polarity = 0;
    switch (kind_) {
        case FaultModelKind::WeightStuckAt:
            if (fault.model != FaultModel::StuckAt0 &&
                fault.model != FaultModel::StuckAt1)
                throw std::invalid_argument(
                    "FaultUniverse::encode: non-stuck-at fault in stuck-at "
                    "universe");
            polarity = fault.model == FaultModel::StuckAt1 ? 1 : 0;
            break;
        case FaultModelKind::WeightBitFlip:
            expected = FaultModel::BitFlip;
            break;
        case FaultModelKind::MultiBitUpset:
            expected = FaultModel::MultiFlip;
            break;
        case FaultModelKind::ActivationBitFlip:
            expected = FaultModel::ActivationFlip;
            break;
    }
    if (kind_ != FaultModelKind::WeightStuckAt && fault.model != expected)
        throw std::invalid_argument(
            std::string("FaultUniverse::encode: ") +
            fault::to_string(fault.model) + " fault in " + to_string(kind_) +
            " universe");
    if (kind_ == FaultModelKind::MultiBitUpset && fault.k != k_)
        throw std::invalid_argument(
            "FaultUniverse::encode: fault k does not match universe k");
    return subpop_offset(l, fault.bit) +
           fault.weight_index * static_cast<std::uint64_t>(polarities_) +
           polarity;
}

std::uint64_t FaultUniverse::subpop_offset(int l, int bit) const {
    if (bit < 0 || bit >= bits_)
        throw std::out_of_range("FaultUniverse::subpop_offset: bad bit");
    return layer_offsets_[static_cast<std::size_t>(l)] +
           static_cast<std::uint64_t>(bit) * bit_population(l);
}

Fault FaultUniverse::decode_in_subpop(int l, int bit,
                                      std::uint64_t local_index) const {
    if (local_index >= bit_population(l))
        throw std::out_of_range("FaultUniverse::decode_in_subpop: index");
    Fault fault;
    fault.layer = l;
    fault.bit = bit;
    fault.weight_index = local_index / static_cast<std::uint64_t>(polarities_);
    switch (kind_) {
        case FaultModelKind::WeightStuckAt:
            fault.model = (local_index % 2 == 0) ? FaultModel::StuckAt0
                                                 : FaultModel::StuckAt1;
            break;
        case FaultModelKind::WeightBitFlip:
            fault.model = FaultModel::BitFlip;
            break;
        case FaultModelKind::MultiBitUpset:
            fault.model = FaultModel::MultiFlip;
            fault.k = static_cast<std::uint8_t>(k_);
            break;
        case FaultModelKind::ActivationBitFlip:
            fault.model = FaultModel::ActivationFlip;
            break;
    }
    return fault;
}

}  // namespace statfi::fault

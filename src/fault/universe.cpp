#include "fault/universe.hpp"

#include <algorithm>
#include <stdexcept>

namespace statfi::fault {

FaultUniverse::FaultUniverse(nn::Network& net, DataType dtype, int polarities)
    : dtype_(dtype), bits_(bit_width(dtype)), polarities_(polarities) {
    for (const auto& ref : net.weight_layers())
        layers_.push_back(LayerInfo{ref.name, ref.weight->numel()});
    layer_offsets_.resize(layers_.size() + 1, 0);
    for (std::size_t l = 0; l < layers_.size(); ++l)
        layer_offsets_[l + 1] =
            layer_offsets_[l] + layers_[l].weight_count *
                                    static_cast<std::uint64_t>(bits_) *
                                    static_cast<std::uint64_t>(polarities_);
    total_ = layer_offsets_.back();
}

FaultUniverse FaultUniverse::stuck_at(nn::Network& net, DataType dtype) {
    return FaultUniverse(net, dtype, 2);
}

FaultUniverse FaultUniverse::bit_flip(nn::Network& net, DataType dtype) {
    return FaultUniverse(net, dtype, 1);
}

std::uint64_t FaultUniverse::layer_population(int l) const {
    const auto idx = static_cast<std::size_t>(l);
    if (l < 0 || idx >= layers_.size())
        throw std::out_of_range("FaultUniverse: layer index");
    return layer_offsets_[idx + 1] - layer_offsets_[idx];
}

std::uint64_t FaultUniverse::bit_population(int l) const {
    return layer(l).weight_count * static_cast<std::uint64_t>(polarities_);
}

Fault FaultUniverse::decode(std::uint64_t global_index) const {
    if (global_index >= total_)
        throw std::out_of_range("FaultUniverse::decode: index >= N");
    // Find the layer via the offset table (layers are few; linear scan would
    // do, but upper_bound keeps this O(log L) for deep networks).
    const auto it = std::upper_bound(layer_offsets_.begin(), layer_offsets_.end(),
                                     global_index);
    const auto l = static_cast<int>(it - layer_offsets_.begin()) - 1;
    const std::uint64_t local =
        global_index - layer_offsets_[static_cast<std::size_t>(l)];
    const std::uint64_t per_bit = bit_population(l);
    const int bit = static_cast<int>(local / per_bit);
    return decode_in_subpop(l, bit, local % per_bit);
}

std::uint64_t FaultUniverse::encode(const Fault& fault) const {
    const auto l = fault.layer;
    if (l < 0 || static_cast<std::size_t>(l) >= layers_.size())
        throw std::out_of_range("FaultUniverse::encode: bad layer");
    if (fault.bit < 0 || fault.bit >= bits_)
        throw std::out_of_range("FaultUniverse::encode: bad bit");
    if (fault.weight_index >= layers_[static_cast<std::size_t>(l)].weight_count)
        throw std::out_of_range("FaultUniverse::encode: bad weight index");
    std::uint64_t polarity = 0;
    switch (fault.model) {
        case FaultModel::StuckAt0: polarity = 0; break;
        case FaultModel::StuckAt1: polarity = 1; break;
        case FaultModel::BitFlip: polarity = 0; break;
    }
    if (!permanent() && fault.model != FaultModel::BitFlip)
        throw std::invalid_argument(
            "FaultUniverse::encode: stuck-at fault in bit-flip universe");
    if (permanent() && fault.model == FaultModel::BitFlip)
        throw std::invalid_argument(
            "FaultUniverse::encode: bit-flip fault in stuck-at universe");
    return subpop_offset(l, fault.bit) +
           fault.weight_index * static_cast<std::uint64_t>(polarities_) +
           polarity;
}

std::uint64_t FaultUniverse::subpop_offset(int l, int bit) const {
    if (bit < 0 || bit >= bits_)
        throw std::out_of_range("FaultUniverse::subpop_offset: bad bit");
    return layer_offsets_[static_cast<std::size_t>(l)] +
           static_cast<std::uint64_t>(bit) * bit_population(l);
}

Fault FaultUniverse::decode_in_subpop(int l, int bit,
                                      std::uint64_t local_index) const {
    if (local_index >= bit_population(l))
        throw std::out_of_range("FaultUniverse::decode_in_subpop: index");
    Fault fault;
    fault.layer = l;
    fault.bit = bit;
    fault.weight_index = local_index / static_cast<std::uint64_t>(polarities_);
    if (permanent()) {
        fault.model = (local_index % 2 == 0) ? FaultModel::StuckAt0
                                             : FaultModel::StuckAt1;
    } else {
        fault.model = FaultModel::BitFlip;
    }
    return fault;
}

}  // namespace statfi::fault

#pragma once
// FaultUniverse: the enumerable population of faults for one fault model.
//
// The paper's populations (weight universes):
//   N        = total faults              = sum_l  weights_l * I * polarities
//   N_l      = faults in layer l         = weights_l * I * polarities
//   N_(i,l)  = faults in (bit i, layer l)= weights_l * polarities
// where I = bit width of the data type and polarities = 2 for permanent
// stuck-at (sa0 + sa1) or 1 for transient bit flips.
//
// The same structure covers the other fault models by reinterpreting the two
// strata axes:
//   * activation bit flips: "layer" = graph node, "weight" = activation
//     element of that node's batch-1 output;
//   * multi-bit upsets: "bit" = combinadic rank of the k-subset of flipped
//     bits within one stored word, so I becomes C(bit_width, k). For k = 1,
//     C(I, 1) = I and rank == bit — the single-bit flip universe exactly.
//
// The universe defines a dense bijection between [0, N) and Fault structs so
// samplers can draw indices without materializing faults. Index layout, from
// slowest to fastest varying: layer -> bit -> weight -> polarity. This makes
// every N_(i,l) subpopulation a contiguous index range, which the campaign
// planner exploits.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/model.hpp"
#include "nn/network.hpp"

namespace statfi::fault {

class FaultUniverse {
public:
    struct LayerInfo {
        std::string name;
        std::uint64_t weight_count = 0;
    };

    /// Permanent stuck-at universe (polarities = 2), the paper's model.
    static FaultUniverse stuck_at(nn::Network& net,
                                  DataType dtype = DataType::Float32);
    /// Transient bit-flip universe (polarities = 1).
    static FaultUniverse bit_flip(nn::Network& net,
                                  DataType dtype = DataType::Float32);
    /// Transient k-bit upset universe: every k-subset of one stored word's
    /// bits, enumerated via the combinadic codec.
    /// @throws std::invalid_argument unless 1 <= k <= bit_width(dtype).
    static FaultUniverse multi_bit(nn::Network& net, int k,
                                   DataType dtype = DataType::Float32);
    /// Transient single-bit activation universe over all graph nodes for a
    /// fixed single-image input shape; "layers" are graph nodes and
    /// "weights" are elements of each node's batch-1 output.
    static FaultUniverse activation(const nn::Network& net,
                                    const Shape& image_shape,
                                    DataType dtype = DataType::Float32);
    /// Universe for an arbitrary campaign-level fault-model spec.
    static FaultUniverse make(nn::Network& net, const FaultModelSpec& spec,
                              const Shape& image_shape,
                              DataType dtype = DataType::Float32);

    [[nodiscard]] FaultModelKind kind() const noexcept { return kind_; }
    [[nodiscard]] int mbu_k() const noexcept { return k_; }
    [[nodiscard]] DataType dtype() const noexcept { return dtype_; }
    /// Size of the per-layer strata axis: the bit position for single-bit
    /// universes, the combinadic rank for multi-bit upsets.
    [[nodiscard]] int bits() const noexcept { return bits_; }
    [[nodiscard]] int polarities() const noexcept { return polarities_; }
    [[nodiscard]] bool permanent() const noexcept { return polarities_ == 2; }

    [[nodiscard]] int layer_count() const noexcept {
        return static_cast<int>(layers_.size());
    }
    [[nodiscard]] const LayerInfo& layer(int l) const {
        return layers_.at(static_cast<std::size_t>(l));
    }

    /// N, N_l, N_(i,l).
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t layer_population(int l) const;
    [[nodiscard]] std::uint64_t bit_population(int l) const;  // same for all i

    /// Global-index bijection.
    [[nodiscard]] Fault decode(std::uint64_t global_index) const;
    [[nodiscard]] std::uint64_t encode(const Fault& fault) const;

    /// First global index of the contiguous N_(i,l) subpopulation.
    [[nodiscard]] std::uint64_t subpop_offset(int l, int bit) const;
    /// Fault for an index local to the N_(i,l) subpopulation.
    [[nodiscard]] Fault decode_in_subpop(int l, int bit,
                                         std::uint64_t local_index) const;

private:
    FaultUniverse() = default;
    FaultUniverse(nn::Network& net, DataType dtype, int polarities);
    void build_offsets();

    FaultModelKind kind_ = FaultModelKind::WeightStuckAt;
    int k_ = 1;  ///< simultaneous flips (MultiBitUpset only)
    DataType dtype_ = DataType::Float32;
    int bits_ = 32;
    int polarities_ = 2;
    std::vector<LayerInfo> layers_;
    std::vector<std::uint64_t> layer_offsets_;  // prefix sums of N_l
    std::uint64_t total_ = 0;
};

}  // namespace statfi::fault

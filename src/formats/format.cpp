#include "formats/format.hpp"

#include <stdexcept>

namespace statfi::formats {

const char* to_string(BitClass cls) noexcept {
    switch (cls) {
        case BitClass::Sign: return "sign";
        case BitClass::Exponent: return "exponent";
        case BitClass::Mantissa: return "mantissa";
        case BitClass::Magnitude: return "magnitude";
    }
    return "?";
}

namespace {

constexpr FormatDesc kFormats[kFormatCount] = {
    {fault::DataType::Float32, "fp32", 32, 8, 23, false},
    {fault::DataType::Float16, "fp16", 16, 5, 10, false},
    {fault::DataType::BFloat16, "bf16", 16, 8, 7, false},
    {fault::DataType::Int8, "int8", 8, 0, 0, true},
};

}  // namespace

BitClass FormatDesc::classify(int bit) const {
    if (bit < 0 || bit >= width)
        throw std::domain_error("FormatDesc: bit index out of range for " +
                                std::string(name));
    if (bit == sign_bit()) return BitClass::Sign;
    if (is_integer) return BitClass::Magnitude;
    if (bit >= mantissa_bits) return BitClass::Exponent;
    return BitClass::Mantissa;
}

const FormatDesc& format_desc(fault::DataType dtype) noexcept {
    for (const FormatDesc& f : kFormats)
        if (f.dtype == dtype) return f;
    return kFormats[0];
}

const FormatDesc* all_formats() noexcept { return kFormats; }

std::string format_names() {
    std::string out;
    for (const FormatDesc& f : kFormats) {
        if (!out.empty()) out += ',';
        out += f.name;
    }
    return out;
}

fault::DataType parse_format(std::string_view name) {
    for (const FormatDesc& f : kFormats)
        if (name == f.name) return f.dtype;
    throw std::invalid_argument("unknown format '" + std::string(name) +
                                "' (expected " + format_names() + ")");
}

}  // namespace statfi::formats

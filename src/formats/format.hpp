#pragma once
// Format descriptors: the static bit anatomy of every number format a
// campaign can store weights in (DESIGN.md decision 17).
//
// The fault codec (src/fault/codec) already encodes/decodes words; this
// layer names the *structure* of those words — which bit is the sign, which
// bits are exponent vs mantissa, whether the format is an affine-quantized
// integer — so the data-aware estimator, the report renderers, and drivers
// probing `statfi version --json` all reason about formats from one table
// instead of re-deriving IEEE-754 layouts in four places.

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/codec.hpp"

namespace statfi::formats {

/// Semantic role of one bit position within a stored word.
enum class BitClass : std::uint8_t {
    Sign,      ///< sign bit (floats: IEEE sign; int8: two's-complement MSB)
    Exponent,  ///< float exponent field
    Mantissa,  ///< float mantissa field
    Magnitude, ///< int8 magnitude bits (everything below the sign)
};

const char* to_string(BitClass cls) noexcept;

/// Width + field split of one storage format, with codec pass-throughs.
/// Floats follow the IEEE-style [sign | exponent | mantissa] layout with the
/// sign at the MSB; the integer format is two's complement with affine
/// (scale, zero_point) dequantization carried per tensor in QuantParams.
struct FormatDesc {
    fault::DataType dtype = fault::DataType::Float32;
    const char* name = "fp32";
    int width = 32;          ///< stored word bits (== fault::bit_width)
    int exponent_bits = 8;   ///< 0 for integer formats
    int mantissa_bits = 23;  ///< 0 for integer formats
    bool is_integer = false; ///< affine-quantized: decode needs QuantParams

    [[nodiscard]] int sign_bit() const noexcept { return width - 1; }
    /// Exponent field occupies [mantissa_bits, mantissa_bits+exponent_bits).
    [[nodiscard]] int exponent_lsb() const noexcept { return mantissa_bits; }

    /// Role of bit position @p bit (0 = LSB).
    /// @throws std::domain_error when bit is outside [0, width).
    [[nodiscard]] BitClass classify(int bit) const;

    /// Codec pass-throughs, so format-generic code needs only a FormatDesc.
    [[nodiscard]] std::uint32_t encode(float value,
                                       fault::QuantParams qp = {}) const {
        return fault::encode(value, dtype, qp);
    }
    [[nodiscard]] float decode(std::uint32_t word,
                               fault::QuantParams qp = {}) const {
        return fault::decode(word, dtype, qp);
    }
    [[nodiscard]] float quantize(float value,
                                 fault::QuantParams qp = {}) const {
        return fault::quantize(value, dtype, qp);
    }
};

/// Number of supported formats (fp32, fp16, bf16, int8).
inline constexpr int kFormatCount = 4;

/// Descriptor for a data type (static storage, valid forever).
const FormatDesc& format_desc(fault::DataType dtype) noexcept;

/// All supported formats in canonical order: fp32, fp16, bf16, int8.
const FormatDesc* all_formats() noexcept;

/// Canonical comma-joined capability list: "fp32,fp16,bf16,int8" — what
/// `statfi version --json` advertises to drivers.
std::string format_names();

/// Parse a format spelling ("fp32"|"fp16"|"bf16"|"int8").
/// @throws std::invalid_argument naming the unknown spelling and the
/// accepted set — the message service submissions surface as a 400.
fault::DataType parse_format(std::string_view name);

}  // namespace statfi::formats

#include "formats/quantized_store.hpp"

#include <stdexcept>

namespace statfi::formats {

QuantizedStore::QuantizedStore(nn::Network& net, fault::DataType dtype)
    : dtype_(dtype) {
    for (const auto& ref : net.weight_layers()) {
        LayerWords layer;
        layer.name = ref.name;
        layer.count = ref.weight->numel();
        if (dtype_ == fault::DataType::Int8) {
            const float max_abs = ref.weight->max_abs();
            layer.qp.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
        }
        const float* w = ref.weight->data();
        switch (dtype_) {
            case fault::DataType::Float32:
                layer.raw32.reserve(layer.count);
                for (std::uint64_t i = 0; i < layer.count; ++i)
                    layer.raw32.push_back(fault::encode(w[i], dtype_));
                break;
            case fault::DataType::Float16:
            case fault::DataType::BFloat16:
                layer.raw16.reserve(layer.count);
                for (std::uint64_t i = 0; i < layer.count; ++i)
                    layer.raw16.push_back(static_cast<std::uint16_t>(
                        fault::encode(w[i], dtype_)));
                break;
            case fault::DataType::Int8:
                layer.raw8.reserve(layer.count);
                for (std::uint64_t i = 0; i < layer.count; ++i)
                    layer.raw8.push_back(static_cast<std::uint8_t>(
                        fault::encode(w[i], dtype_, layer.qp)));
                break;
        }
        layers_.push_back(std::move(layer));
    }
}

std::vector<fault::QuantParams> QuantizedStore::all_params() const {
    std::vector<fault::QuantParams> out;
    out.reserve(layers_.size());
    for (const LayerWords& layer : layers_) out.push_back(layer.qp);
    return out;
}

std::uint32_t QuantizedStore::word(int layer, std::uint64_t index) const {
    const LayerWords& l = layers_.at(static_cast<std::size_t>(layer));
    if (index >= l.count)
        throw std::out_of_range("QuantizedStore: weight index out of range in " +
                                l.name);
    switch (dtype_) {
        case fault::DataType::Float32: return l.raw32[index];
        case fault::DataType::Float16:
        case fault::DataType::BFloat16: return l.raw16[index];
        case fault::DataType::Int8: return l.raw8[index];
    }
    return 0;
}

float QuantizedStore::value(int layer, std::uint64_t index) const {
    const LayerWords& l = layers_.at(static_cast<std::size_t>(layer));
    return fault::decode(word(layer, index), dtype_, l.qp);
}

void QuantizedStore::deploy(nn::Network& net) const {
    const auto refs = net.weight_layers();
    if (refs.size() != layers_.size())
        throw std::invalid_argument(
            "QuantizedStore::deploy: network has a different weight-layer "
            "count than the store");
    for (std::size_t l = 0; l < refs.size(); ++l) {
        const LayerWords& stored = layers_[l];
        if (refs[l].weight->numel() != stored.count)
            throw std::invalid_argument(
                "QuantizedStore::deploy: weight count mismatch in layer " +
                stored.name);
        float* w = refs[l].weight->data();
        for (std::uint64_t i = 0; i < stored.count; ++i)
            w[i] = fault::decode(word(static_cast<int>(l), i), dtype_,
                                 stored.qp);
    }
}

}  // namespace statfi::formats

#pragma once
// QuantizedStore: the reduced-precision weight memory a campaign injects
// into (DESIGN.md decision 17).
//
// A device running fp16/bf16/int8 holds ENCODED words; the fault universe
// addresses bits of those words. QuantizedStore snapshots a network's FP32
// weights into per-layer encoded words (raw16 for fp16/bf16, raw8 for int8
// with a per-tensor symmetric scale, raw32 pass-through for fp32) and can
// deploy the decoded values back into the network, so the golden forward
// pass computes with exactly the values the stored words decode to. After
// deploy(), quantization is idempotent: encode(decode(word)) == word, which
// is what makes per-format campaign outcomes worker-count and shard
// invariant (the store is a pure function of the weights).

#include <cstdint>
#include <string>
#include <vector>

#include "fault/codec.hpp"
#include "formats/format.hpp"
#include "nn/network.hpp"

namespace statfi::formats {

class QuantizedStore {
public:
    /// Snapshot @p net's weight layers into encoded words. For Int8 the
    /// per-tensor scale is max|w| / 127 (scale 1 for an all-zero tensor),
    /// zero_point 0 — the same derivation fault::WeightInjector uses.
    QuantizedStore(nn::Network& net, fault::DataType dtype);

    [[nodiscard]] fault::DataType dtype() const noexcept { return dtype_; }
    [[nodiscard]] const FormatDesc& desc() const noexcept {
        return format_desc(dtype_);
    }
    [[nodiscard]] int layer_count() const noexcept {
        return static_cast<int>(layers_.size());
    }
    [[nodiscard]] const std::string& layer_name(int layer) const {
        return layers_.at(static_cast<std::size_t>(layer)).name;
    }
    [[nodiscard]] std::uint64_t layer_size(int layer) const {
        return layers_.at(static_cast<std::size_t>(layer)).count;
    }

    /// Per-tensor quantization parameters (scale 1 except Int8).
    [[nodiscard]] fault::QuantParams params(int layer) const {
        return layers_.at(static_cast<std::size_t>(layer)).qp;
    }
    /// All per-layer params in layer order — what ExecutorConfig carries so
    /// every process reuses the store's scales instead of re-deriving them
    /// from already-quantized weights (1-ulp drift would break bit identity).
    [[nodiscard]] std::vector<fault::QuantParams> all_params() const;

    /// Stored word of one weight (low bits of the return value).
    [[nodiscard]] std::uint32_t word(int layer, std::uint64_t index) const;
    /// Float the inference engine computes with for that word.
    [[nodiscard]] float value(int layer, std::uint64_t index) const;

    /// Write the decoded value of every stored word into @p net's weight
    /// tensors. @p net must have the same weight-layer shapes as the network
    /// the store snapshotted. @throws std::invalid_argument on mismatch.
    void deploy(nn::Network& net) const;

private:
    struct LayerWords {
        std::string name;
        std::uint64_t count = 0;
        fault::QuantParams qp;
        std::vector<std::uint32_t> raw32;  ///< fp32
        std::vector<std::uint16_t> raw16;  ///< fp16 / bf16
        std::vector<std::uint8_t> raw8;    ///< int8
    };

    fault::DataType dtype_;
    std::vector<LayerWords> layers_;
};

}  // namespace statfi::formats

#include "io/artifact.hpp"

#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"

namespace statfi::io {

namespace {
std::string hex32(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}
}  // namespace

void write_framed_atomic(const std::string& path, const char magic[4],
                         std::uint32_t version, std::string_view payload) {
    write_file_atomic(path, [&](std::ostream& os) {
        os.write(magic, 4);
        os.write(reinterpret_cast<const char*>(&version), sizeof(version));
        os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        const std::uint32_t checksum = crc32(payload.data(), payload.size());
        os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    });
}

std::string read_framed(const std::string& path, const char magic[4],
                        std::uint32_t version, const std::string& what) {
    const auto fail = [&](const std::string& why) -> std::runtime_error {
        return std::runtime_error(what + ": " + why + " in " + path);
    };
    std::string bytes;
    if (!read_file(path, bytes)) throw fail("cannot open file");
    if (bytes.empty()) throw fail("empty file (0 bytes)");
    constexpr std::size_t header = 4 + sizeof(std::uint32_t);
    if (bytes.size() < header)
        throw fail("short header (" + std::to_string(bytes.size()) +
                   " bytes, need " + std::to_string(header) + ")");
    if (bytes.compare(0, 4, magic, 4) != 0)
        throw fail("bad magic (want \"" + std::string(magic, 4) + "\")");
    std::uint32_t stored_version = 0;
    std::memcpy(&stored_version, bytes.data() + 4, sizeof(stored_version));
    if (stored_version != version)
        throw fail("unsupported version " + std::to_string(stored_version) +
                   " (supported: " + std::to_string(version) + ")");
    if (bytes.size() < kFrameOverhead)
        throw fail("truncated payload (no room for the checksum trailer; " +
                   std::to_string(bytes.size()) + " bytes)");
    const std::size_t payload_size = bytes.size() - kFrameOverhead;
    const char* payload = bytes.data() + header;
    std::uint32_t stored = 0;
    std::memcpy(&stored, payload + payload_size, sizeof(stored));
    const std::uint32_t computed = crc32(payload, payload_size);
    if (stored != computed)
        throw fail("checksum mismatch (stored " + hex32(stored) +
                   ", computed " + hex32(computed) + ")");
    return bytes.substr(header, payload_size);
}

}  // namespace statfi::io

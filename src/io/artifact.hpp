#pragma once
// Framed durable artifacts: the common [magic][version][payload][CRC32]
// envelope every new on-disk format shares, so loaders get the same
// failure taxonomy for free. A loader must be able to tell the operator
// *which* invariant a bad file violates — an empty file left by a crashed
// `open(O_CREAT)` is a different incident from a bit-flipped payload, and
// lumping both under "checksum mismatch" sends the wrong debugging hint.
//
// Frame layout (byte order is the writing machine's — these are local
// scratch artifacts, not interchange files):
//   magic    4 bytes
//   version  u32
//   payload  N bytes
//   crc32    u32 over the payload only
//
// Failure taxonomy of read_framed, in check order:
//   cannot open -> empty file -> short header -> bad magic ->
//   unsupported version -> truncated payload -> checksum mismatch.

#include <cstdint>
#include <string>
#include <string_view>

namespace statfi::io {

/// Bytes of the fixed frame envelope around the payload.
inline constexpr std::size_t kFrameOverhead =
    4 + sizeof(std::uint32_t) + sizeof(std::uint32_t);

/// Write @p payload framed as above, via write_file_atomic (temp + rename),
/// so a crash mid-save never leaves a torn or empty file on the final path.
void write_framed_atomic(const std::string& path, const char magic[4],
                         std::uint32_t version, std::string_view payload);

/// Read and validate a framed artifact; returns the payload. @p what names
/// the artifact kind in error messages ("shard manifest", ...). Throws
/// std::runtime_error naming the violated invariant (see taxonomy above) —
/// zero-length and short-header files get their own distinct errors, never
/// a generic checksum failure.
std::string read_framed(const std::string& path, const char magic[4],
                        std::uint32_t version, const std::string& what);

}  // namespace statfi::io

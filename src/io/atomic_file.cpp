#include "io/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace statfi::io {

namespace {

long current_pid() {
#ifdef _WIN32
    return static_cast<long>(_getpid());
#else
    return static_cast<long>(::getpid());
#endif
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
    // Pid-suffixed temporary: concurrent writers (e.g. two bench binaries
    // racing on a cold cache) never clobber each other's half-written file;
    // last rename wins with a complete artifact either way.
    const std::string tmp = path + ".tmp" + std::to_string(current_pid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
        writer(os);
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("write_file_atomic: write failed for " + tmp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        throw std::runtime_error("write_file_atomic: rename " + tmp + " -> " +
                                 path + " failed: " + ec.message());
    }
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return false;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad()) return false;
    out = std::move(buffer).str();
    return true;
}

}  // namespace statfi::io

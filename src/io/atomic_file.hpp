#pragma once
// Crash-safe file persistence. A cache written straight onto its final path
// can be half-written when the process dies; the reader then sees a
// truncated file. Writing to a temporary sibling and renaming onto the
// final path makes every cache update all-or-nothing (rename(2) is atomic
// within a filesystem), so a reader observes either the old complete file
// or the new complete file — never a torn one.

#include <functional>
#include <iosfwd>
#include <string>

namespace statfi::io {

/// Stream @p writer into "<path>.tmp<pid>", then atomically rename onto
/// @p path. The temporary is removed on any failure. Throws
/// std::runtime_error when the file cannot be written or renamed.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Read an entire file into @p out. Returns false (out untouched) when the
/// file cannot be opened; throws nothing.
bool read_file(const std::string& path, std::string& out);

}  // namespace statfi::io

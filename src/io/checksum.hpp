#pragma once
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity check
// behind every durable artifact StatFI writes: campaign journals, the
// exhaustive outcome cache, and serialized weights. A flipped byte anywhere
// in a cached file must be detected at load time and degrade to recompute,
// never silently poison an experiment.

#include <cstddef>
#include <cstdint>

namespace statfi::io {

/// Incremental CRC32. update() may be called any number of times; value()
/// can be read at any point (it does not reset the accumulator).
class Crc32 {
public:
    void update(const void* data, std::size_t size) noexcept;
    [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC32 of a buffer. crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

}  // namespace statfi::io

#pragma once
// ScratchArena: a grow-only float workspace for kernel-sized temporaries
// (im2col buffers, packing scratch). Campaign hot loops run ~10^5 forwards
// per layer; the arena guarantees that after a warm-up pass at the largest
// shapes in play, no further forward allocates — the invariant
// ClassificationCore's "never allocate in the hot loop" performance model
// rests on. Each campaign worker owns private layer clones (and therefore
// private arenas), so arenas are single-threaded by construction.

#include <cstddef>
#include <vector>

namespace statfi::kernels {

class ScratchArena {
public:
    /// A buffer of at least @p n floats, valid until the next floats()
    /// call. Grow-only: the capacity is the maximum ever requested, so
    /// alternating callers (batch-N forward_all vs batch-1 forward_from)
    /// never cause reallocation once both have run.
    [[nodiscard]] float* floats(std::size_t n) {
        if (buf_.size() < n) buf_.resize(n);
        return buf_.data();
    }

    /// Current workspace footprint — observable, so tests can assert the
    /// no-growth-after-warm-up invariant.
    [[nodiscard]] std::size_t bytes() const noexcept {
        return buf_.size() * sizeof(float);
    }

private:
    std::vector<float> buf_;
};

}  // namespace statfi::kernels

// AVX2 backend (x86 only). Compiled in every build — code generation is
// gated per-function with __attribute__((target("avx2"))) instead of a
// global -mavx2, so the binary still runs on pre-AVX2 machines (the
// registry simply never selects this table there).
//
// Bit-identity rules (see registry.hpp):
//  * target("avx2") only, never target("fma"), and this translation unit is
//    compiled with -ffp-contract=off: a fused multiply-add rounds once
//    where the generic backend's mul+add rounds twice, which would make the
//    backends diverge in the last ulp — fatal for campaign determinism;
//  * vectorization is across independent output elements only; each C[i,j]
//    accumulates its K products in ascending-k order, exactly like the
//    generic i-k-j nest (the register tile is loaded from C before the k
//    loop and stored after it, so the per-element addition sequence is
//    unchanged);
//  * the a == 0.0f skip is a scalar test on the broadcast operand — the
//    same condition the generic kernel uses — because skipping a zero
//    multiplier is NOT equivalent to adding 0*b when b is inf/NaN.

#include "kernels/registry.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

namespace statfi::kernels {

namespace {

// Same blocking as the generic backend: per element, k-blocks ascend, so
// the two backends interleave identically at every scale.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;

__attribute__((target("avx2"))) void avx2_block(
    std::size_t m0, std::size_t m1, std::size_t k0, std::size_t k1,
    std::size_t n0, std::size_t n1, std::size_t N, std::size_t K,
    const float* A, const float* B, float* C) {
    for (std::size_t i = m0; i < m1; ++i) {
        const float* arow = A + i * K;
        float* crow = C + i * N;
        std::size_t j = n0;
        // 32-wide register tile: four ymm accumulators seeded from C. Four
        // independent add chains hide the vaddps latency the 16-wide tile
        // is bound by — each chain still adds its K products in ascending-k
        // order, so widening across j never reorders an element's sums.
        for (; j + 32 <= n1; j += 32) {
            __m256 c0 = _mm256_loadu_ps(crow + j);
            __m256 c1 = _mm256_loadu_ps(crow + j + 8);
            __m256 c2 = _mm256_loadu_ps(crow + j + 16);
            __m256 c3 = _mm256_loadu_ps(crow + j + 24);
            for (std::size_t k = k0; k < k1; ++k) {
                const float a = arow[k];
                if (a == 0.0f) continue;
                const __m256 va = _mm256_set1_ps(a);
                const float* brow = B + k * N + j;
                c0 = _mm256_add_ps(c0,
                                   _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
                c1 = _mm256_add_ps(
                    c1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
                c2 = _mm256_add_ps(
                    c2, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 16)));
                c3 = _mm256_add_ps(
                    c3, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 24)));
            }
            _mm256_storeu_ps(crow + j, c0);
            _mm256_storeu_ps(crow + j + 8, c1);
            _mm256_storeu_ps(crow + j + 16, c2);
            _mm256_storeu_ps(crow + j + 24, c3);
        }
        // 16-wide register tile: two ymm accumulators seeded from C, one
        // mul+add per k, stored back once per tile.
        for (; j + 16 <= n1; j += 16) {
            __m256 c0 = _mm256_loadu_ps(crow + j);
            __m256 c1 = _mm256_loadu_ps(crow + j + 8);
            for (std::size_t k = k0; k < k1; ++k) {
                const float a = arow[k];
                if (a == 0.0f) continue;
                const __m256 va = _mm256_set1_ps(a);
                const float* brow = B + k * N + j;
                c0 = _mm256_add_ps(c0,
                                   _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
                c1 = _mm256_add_ps(
                    c1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
            }
            _mm256_storeu_ps(crow + j, c0);
            _mm256_storeu_ps(crow + j + 8, c1);
        }
        for (; j + 8 <= n1; j += 8) {
            __m256 c0 = _mm256_loadu_ps(crow + j);
            for (std::size_t k = k0; k < k1; ++k) {
                const float a = arow[k];
                if (a == 0.0f) continue;
                c0 = _mm256_add_ps(
                    c0, _mm256_mul_ps(_mm256_set1_ps(a),
                                      _mm256_loadu_ps(B + k * N + j)));
            }
            _mm256_storeu_ps(crow + j, c0);
        }
        // Scalar tail: ascending k per element, same skip.
        if (j < n1) {
            for (std::size_t k = k0; k < k1; ++k) {
                const float a = arow[k];
                if (a == 0.0f) continue;
                const float* brow = B + k * N;
                for (std::size_t jj = j; jj < n1; ++jj)
                    crow[jj] += a * brow[jj];
            }
        }
    }
}

void avx2_gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                          const float* A, const float* B, float* C) {
    for (std::size_t k0 = 0; k0 < K; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, K);
        for (std::size_t m0 = 0; m0 < M; m0 += kBlockM) {
            const std::size_t m1 = std::min(m0 + kBlockM, M);
            for (std::size_t n0 = 0; n0 < N; n0 += kBlockN) {
                const std::size_t n1 = std::min(n0 + kBlockN, N);
                avx2_block(m0, m1, k0, k1, n0, n1, N, K, A, B, C);
            }
        }
    }
}

// maxps/minps return the SECOND operand when the inputs are NaN or equal,
// which is exactly what reproduces the scalar semantics below.

__attribute__((target("avx2"))) void avx2_relu(const float* src, float* dst,
                                               std::size_t n) {
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    // max(x, 0): NaN -> 0 and -0 -> +0, matching `x > 0 ? x : 0`.
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(src + i), zero));
    for (; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

__attribute__((target("avx2"))) void avx2_relu6(const float* src, float* dst,
                                                std::size_t n) {
    const __m256 lo = _mm256_setzero_ps();
    const __m256 hi = _mm256_set1_ps(6.0f);
    std::size_t i = 0;
    // max(lo, min(hi, x)): NaN passes through, matching std::clamp.
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(src + i);
        _mm256_storeu_ps(dst + i, _mm256_max_ps(lo, _mm256_min_ps(hi, x)));
    }
    for (; i < n; ++i) dst[i] = std::clamp(src[i], 0.0f, 6.0f);
}

__attribute__((target("avx2"))) void avx2_add(const float* a, const float* b,
                                              float* dst, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            dst + i,
            _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    for (; i < n; ++i) dst[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void avx2_clamp(float* data, std::size_t n,
                                                float lo, float hi) {
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 x = _mm256_loadu_ps(data + i);
        _mm256_storeu_ps(data + i, _mm256_max_ps(vlo, _mm256_min_ps(vhi, x)));
    }
    for (; i < n; ++i) data[i] = std::clamp(data[i], lo, hi);
}

const Kernels kAvx2Table{
    "avx2", avx2_gemm_accumulate, avx2_relu, avx2_relu6, avx2_add, avx2_clamp,
};

}  // namespace

const Kernels* native_kernels() noexcept {
    return detect_cpu().avx2 ? &kAvx2Table : nullptr;
}

}  // namespace statfi::kernels

#else  // non-x86 builds have no native backend

namespace statfi::kernels {
const Kernels* native_kernels() noexcept { return nullptr; }
}  // namespace statfi::kernels

#endif

// Generic (portable) backend: the reference implementations every other
// backend must match bit for bit. The GEMM is the cache-blocked i-k-j nest
// that previously lived in nn/gemm.cpp; the compiler auto-vectorizes the
// inner loop (SSE on x86 baselines) without changing results, because each
// output element's additions stay in ascending-k order.

#include <algorithm>
#include <cstddef>

#include "kernels/registry.hpp"

namespace statfi::kernels {

namespace {

// Block sizes tuned for ~32 KiB L1 / 256 KiB L2.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;

void gemm_block(std::size_t m0, std::size_t m1, std::size_t k0, std::size_t k1,
                std::size_t n0, std::size_t n1, std::size_t N, std::size_t K,
                const float* A, const float* B, float* C) {
    for (std::size_t i = m0; i < m1; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
            const float a = A[i * K + k];
            if (a == 0.0f) continue;  // common after ReLU-sparsified inputs
            const float* brow = B + k * N;
            float* crow = C + i * N;
            for (std::size_t j = n0; j < n1; ++j) crow[j] += a * brow[j];
        }
    }
}

void generic_gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                             const float* A, const float* B, float* C) {
    for (std::size_t k0 = 0; k0 < K; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, K);
        for (std::size_t m0 = 0; m0 < M; m0 += kBlockM) {
            const std::size_t m1 = std::min(m0 + kBlockM, M);
            for (std::size_t n0 = 0; n0 < N; n0 += kBlockN) {
                const std::size_t n1 = std::min(n0 + kBlockN, N);
                gemm_block(m0, m1, k0, k1, n0, n1, N, K, A, B, C);
            }
        }
    }
}

void generic_relu(const float* src, float* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void generic_relu6(const float* src, float* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::clamp(src[i], 0.0f, 6.0f);
}

void generic_add(const float* a, const float* b, float* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

void generic_clamp(float* data, std::size_t n, float lo, float hi) {
    // NaN passes through: std::clamp's comparisons are false for NaN.
    for (std::size_t i = 0; i < n; ++i) data[i] = std::clamp(data[i], lo, hi);
}

}  // namespace

const Kernels& generic_kernels() noexcept {
    static const Kernels table{
        "generic",      generic_gemm_accumulate, generic_relu,
        generic_relu6,  generic_add,             generic_clamp,
    };
    return table;
}

}  // namespace statfi::kernels

#include "kernels/registry.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace statfi::kernels {

std::string CpuFeatures::describe() const {
    std::string s;
    if (avx2) s += "avx2";
    if (fma) s += s.empty() ? "fma" : ",fma";
    return s.empty() ? "none" : s;
}

CpuFeatures detect_cpu() noexcept {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
#endif
    return f;
}

namespace {

const Kernels* resolve_default() noexcept {
    // Env override first: CI's generic-path matrix leg and reproducibility
    // escapes don't need a rebuild or a CLI flag.
    if (const char* env = std::getenv("STATFI_DISABLE_NATIVE_KERNELS");
        env && *env)
        return &generic_kernels();
    if (const Kernels* native = native_kernels()) return native;
    return &generic_kernels();
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& active() noexcept {
    const Kernels* k = g_active.load(std::memory_order_acquire);
    if (!k) {
        k = resolve_default();
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

void select(const std::string& which) {
    const Kernels* chosen = nullptr;
    if (which == "generic") {
        chosen = &generic_kernels();
    } else if (which == "native") {
        chosen = native_kernels();
        if (!chosen)
            throw std::invalid_argument(
                "kernels: no native backend on this CPU (" +
                detect_cpu().describe() + ") — use --kernels=generic");
    } else if (which == "auto") {
        chosen = resolve_default();
    } else {
        throw std::invalid_argument("kernels: unknown backend '" + which +
                                    "' (expected generic|native|auto)");
    }
    g_active.store(chosen, std::memory_order_release);
}

}  // namespace statfi::kernels

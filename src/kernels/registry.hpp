#pragma once
// Kernel-dispatch library: the compute primitives behind the inference
// engine (GEMM, activations, elementwise, clamp), resolved once at startup
// against the CPU the process actually runs on.
//
// Two backends exist: "generic" (portable blocked loops, the reference
// implementation) and "avx2" (8-wide x86 vectors). The dispatch contract
// the fault-injection campaigns depend on is BIT-IDENTITY: for any input,
// every backend produces byte-identical outputs. That rules out the usual
// SIMD tricks —
//   * no FMA: a fused multiply-add rounds once where mul+add rounds twice,
//     so the AVX2 kernels use separate _mm256_mul_ps/_mm256_add_ps and the
//     translation unit is compiled with -ffp-contract=off;
//   * no reassociation: each output element accumulates its K products in
//     ascending-k order on every backend (vectorizing across independent
//     output elements is fine, reducing across k is not), so dot-product
//     style loops (Linear, conv weight gradients) stay scalar everywhere;
//   * identical sparsity handling: the a == 0 skip in the GEMM inner loop
//     (adding 0*b is NOT a no-op when b is inf/NaN) is applied by both
//     backends under the same condition.
// One narrow carve-out: when two NaNs with DIFFERENT payloads meet in an
// addition, which payload survives depends on the addss/addps operand order
// — and for the generic backend that order is the compiler's choice, which
// no portable C++ can pin. So the contract is bytewise identity everywhere
// except NaN payload bits, with NaN placement itself exact. Campaign
// outcomes never read payload bits (argmax comparisons and std::isnan are
// payload-blind), so classification stays bit-identical across backends.
// Pooling and softmax are horizontal reductions over small windows; they
// share the generic implementation on every backend for the same reason.
//
// Selection: kernels::active() resolves lazily on first use — native when
// the CPU supports AVX2 and STATFI_DISABLE_NATIVE_KERNELS is not set,
// generic otherwise. kernels::select() (the CLI's --kernels flag) overrides
// the choice; call it at startup before any worker threads exist.

#include <cstddef>
#include <string>

namespace statfi::kernels {

/// Runtime CPU feature flags relevant to kernel selection.
struct CpuFeatures {
    bool avx2 = false;
    bool fma = false;  ///< detected but never used (FMA breaks bit-identity)

    /// "avx2,fma", "avx2", or "none" — the spelling version/--json report.
    [[nodiscard]] std::string describe() const;
};

/// Query the executing CPU (cached; cheap after the first call).
[[nodiscard]] CpuFeatures detect_cpu() noexcept;

/// One backend's primitive table. All functions obey the bit-identity
/// contract above; pointers are never null in a published table.
struct Kernels {
    const char* name = "generic";

    /// C[M,N] += A[M,K] * B[K,N] (row-major). Ascending-k accumulation per
    /// element; rows of A equal to zero are skipped identically on every
    /// backend. Backs conv2d (im2col lowering) and batched GEMM callers.
    void (*gemm_accumulate)(std::size_t M, std::size_t N, std::size_t K,
                            const float* A, const float* B, float* C);

    /// dst[i] = src[i] > 0 ? src[i] : 0 (NaN -> 0, -0 -> +0).
    void (*relu)(const float* src, float* dst, std::size_t n);

    /// dst[i] = clamp(src[i], 0, 6) with NaN passthrough.
    void (*relu6)(const float* src, float* dst, std::size_t n);

    /// dst[i] = a[i] + b[i] (residual adds, bias rows).
    void (*add)(const float* a, const float* b, float* dst, std::size_t n);

    /// data[i] = clamp(data[i], lo, hi), NaN passthrough — the mitigation
    /// clipping hook (clamp circuits bound magnitude, they do not repair
    /// invalid encodings).
    void (*clamp)(float* data, std::size_t n, float lo, float hi);
};

/// The reference backend (always available).
[[nodiscard]] const Kernels& generic_kernels() noexcept;

/// The best native backend for this CPU, or nullptr when none applies
/// (non-x86 builds, or a CPU without AVX2).
[[nodiscard]] const Kernels* native_kernels() noexcept;

/// The currently selected backend. Resolves lazily on first call: native
/// if available and the STATFI_DISABLE_NATIVE_KERNELS environment variable
/// is unset/empty, generic otherwise. Hot paths cache-friendly: one atomic
/// acquire load.
[[nodiscard]] const Kernels& active() noexcept;

/// Force a backend: "generic", "native" (error if this CPU has none), or
/// "auto" (re-run the default resolution). Not thread-safe against in-flight
/// kernel calls — call at startup, before campaign workers exist.
/// @throws std::invalid_argument for unknown names or unavailable "native".
void select(const std::string& which);

}  // namespace statfi::kernels

#include "models/micronet.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace statfi::models {

nn::Network make_micronet(int num_classes) {
    using namespace statfi::nn;
    if (num_classes < 2)
        throw std::invalid_argument("make_micronet: num_classes < 2");
    Network net;
    int id = net.add("conv1", std::make_unique<Conv2d>(3, 6, 3, 1, 1),
                     {Network::kInputId});
    id = net.add("relu1", std::make_unique<ReLU>(), {id});
    id = net.add("pool1", std::make_unique<AvgPool2d>(2), {id});
    id = net.add("conv2", std::make_unique<Conv2d>(6, 10, 3, 1, 1), {id});
    id = net.add("relu2", std::make_unique<ReLU>(), {id});
    id = net.add("pool2", std::make_unique<AvgPool2d>(2), {id});
    id = net.add("conv3", std::make_unique<Conv2d>(10, 14, 3, 1, 1), {id});
    id = net.add("relu3", std::make_unique<ReLU>(), {id});
    id = net.add("avgpool", std::make_unique<GlobalAvgPool>(), {id});
    net.add("fc", std::make_unique<Linear>(14, num_classes), {id});
    return net;
}

}  // namespace statfi::models

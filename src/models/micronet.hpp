#pragma once
// MicroNet: a deliberately small CNN (2,102 injectable weights, 134,528
// stuck-at faults) used as the exhaustive-validation substrate. The paper
// validated its statistical campaigns against exhaustive FI on ResNet-20 /
// MobileNetV2 using 37-54 GPU-days; MicroNet makes the same
// statistical-vs-exhaustive comparison tractable on one CPU core while
// preserving everything the comparison measures (see DESIGN.md §2).
//
// Architecture: conv 3->6 /relu/avgpool2, conv 6->10 /relu/avgpool2,
// conv 10->14 /relu, global-avg-pool, FC 14->num_classes.
// All layers support backward(), so MicroNet can be trained by the built-in
// SGD trainer into a functioning classifier.

#include "nn/network.hpp"

namespace statfi::models {

nn::Network make_micronet(int num_classes = 10);

/// Number of injectable weights in MicroNet (compile-time documented
/// constant, asserted in tests): 162 + 540 + 1260 + 140.
inline constexpr std::uint64_t kMicroNetWeightCount = 2102;

}  // namespace statfi::models

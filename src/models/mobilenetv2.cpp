#include "models/mobilenetv2.hpp"

#include <array>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/elementwise.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace statfi::models {

namespace {

struct BlockCfg {
    std::int64_t expansion;
    std::int64_t out_channels;
    int repeats;
    std::int64_t stride;  // stride of the first repeat
};

/// Appends one inverted-residual block; returns its output node id.
int add_inverted_residual(nn::Network& net, const std::string& prefix,
                          int input_id, std::int64_t in_channels,
                          std::int64_t out_channels, std::int64_t expansion,
                          std::int64_t stride) {
    using namespace statfi::nn;
    const std::int64_t hidden = in_channels * expansion;

    int id = net.add(prefix + ".expand",
                     std::make_unique<Conv2d>(in_channels, hidden, 1, 1, 0),
                     {input_id});
    id = net.add(prefix + ".bn1", std::make_unique<BatchNorm2d>(hidden), {id});
    id = net.add(prefix + ".relu1", std::make_unique<ReLU6>(), {id});

    id = net.add(prefix + ".depthwise",
                 std::make_unique<DepthwiseConv2d>(hidden, 3, stride, 1), {id});
    id = net.add(prefix + ".bn2", std::make_unique<BatchNorm2d>(hidden), {id});
    id = net.add(prefix + ".relu2", std::make_unique<ReLU6>(), {id});

    id = net.add(prefix + ".project",
                 std::make_unique<Conv2d>(hidden, out_channels, 1, 1, 0), {id});
    id = net.add(prefix + ".bn3", std::make_unique<BatchNorm2d>(out_channels),
                 {id});

    if (stride == 1 && in_channels == out_channels)
        id = net.add(prefix + ".add", std::make_unique<Add>(), {id, input_id});
    return id;
}

}  // namespace

nn::Network make_mobilenetv2(int num_classes) {
    using namespace statfi::nn;
    if (num_classes < 2)
        throw std::invalid_argument("make_mobilenetv2: num_classes < 2");

    // (t, c, n, s) with the CIFAR stride adjustment on the 24-channel stage.
    constexpr std::array<BlockCfg, 7> cfg{{{1, 16, 1, 1},
                                           {6, 24, 2, 1},
                                           {6, 32, 3, 2},
                                           {6, 64, 4, 2},
                                           {6, 96, 3, 1},
                                           {6, 160, 3, 2},
                                           {6, 320, 1, 1}}};

    Network net;
    int id = net.add("conv1", std::make_unique<Conv2d>(3, 32, 3, 1, 1),
                     {Network::kInputId});
    id = net.add("bn1", std::make_unique<BatchNorm2d>(32), {id});
    id = net.add("relu1", std::make_unique<ReLU6>(), {id});

    std::int64_t in_channels = 32;
    int block_index = 0;
    for (const auto& stage : cfg) {
        for (int r = 0; r < stage.repeats; ++r) {
            const std::int64_t stride = (r == 0) ? stage.stride : 1;
            const std::string prefix = "block" + std::to_string(block_index++);
            id = add_inverted_residual(net, prefix, id, in_channels,
                                       stage.out_channels, stage.expansion,
                                       stride);
            in_channels = stage.out_channels;
        }
    }

    id = net.add("conv2", std::make_unique<Conv2d>(in_channels, 1280, 1, 1, 0),
                 {id});
    id = net.add("bn2", std::make_unique<BatchNorm2d>(1280), {id});
    id = net.add("relu2", std::make_unique<ReLU6>(), {id});
    id = net.add("avgpool", std::make_unique<GlobalAvgPool>(), {id});
    net.add("fc", std::make_unique<Linear>(1280, num_classes), {id});
    return net;
}

}  // namespace statfi::models

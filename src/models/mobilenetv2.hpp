#pragma once
// MobileNetV2 (Sandler et al. 2018), CIFAR-10 variant — the paper's second
// case study: "54 layers, 2,203,584 parameters (32-bit FP)" (Table II).
//
// The exact variant reproducing those figures is:
//  * stem conv 3x3, stride 1 (CIFAR resolution);
//  * 17 inverted-residual blocks, EVERY block carrying all three convs
//    (expand 1x1 / depthwise 3x3 / project 1x1) including the first t=1
//    block;
//  * block config (t, c, n, s): (1,16,1,1) (6,24,2,1) (6,32,3,2) (6,64,4,2)
//    (6,96,3,1) (6,160,3,2) (6,320,1,1) — the stride-2 of the 24-block is
//    dropped for 32x32 inputs;
//  * identity residuals only (stride 1 and in == out); no shortcut convs;
//  * head conv 1x1 to 1280, global average pool, FC to num_classes.
// Weight layers: 1 stem + 17*3 block convs + 1 head + 1 FC = 54; injectable
// weights sum to exactly 2,203,584. Verified in tests/models_test.cpp.

#include "nn/network.hpp"

namespace statfi::models {

nn::Network make_mobilenetv2(int num_classes = 10);

}  // namespace statfi::models

#include "models/registry.hpp"

#include <stdexcept>

#include "models/micronet.hpp"
#include "models/mobilenetv2.hpp"
#include "models/resnet_cifar.hpp"

namespace statfi::models {

std::vector<ModelInfo> available_models() {
    return {
        {"micronet", "validation-scale CNN (2,102 weights) for exhaustive FI",
         Shape{3, 32, 32}, 10},
        {"resnet20", "CIFAR ResNet-20 (268,336 injectable weights)",
         Shape{3, 32, 32}, 10},
        {"resnet32", "CIFAR ResNet-32", Shape{3, 32, 32}, 10},
        {"mobilenetv2", "MobileNetV2 CIFAR variant (2,203,584 weights)",
         Shape{3, 32, 32}, 10},
    };
}

nn::Network build_model(const std::string& name, int num_classes) {
    if (name == "micronet") return make_micronet(num_classes);
    if (name == "resnet20") return make_resnet_cifar(3, num_classes);
    if (name == "resnet32") return make_resnet_cifar(5, num_classes);
    if (name == "mobilenetv2") return make_mobilenetv2(num_classes);
    throw std::invalid_argument("build_model: unknown model '" + name + "'");
}

ModelInfo model_info(const std::string& name) {
    for (const auto& info : available_models())
        if (info.name == name) return info;
    throw std::invalid_argument("model_info: unknown model '" + name + "'");
}

}  // namespace statfi::models

#pragma once
// Model registry: name -> (builder, input shape, metadata). Examples and
// benches select models by string so every binary shares one source of truth.

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace statfi::models {

struct ModelInfo {
    std::string name;
    std::string description;
    Shape input_shape;  // single-image shape (C, H, W) with N left to callers
    int num_classes = 10;
};

/// Registered model names: "resnet20", "resnet32", "mobilenetv2", "micronet".
std::vector<ModelInfo> available_models();

/// Builds the named model (weights uninitialized).
/// @throws std::invalid_argument for unknown names.
nn::Network build_model(const std::string& name, int num_classes = 10);

/// Info for one model. @throws std::invalid_argument for unknown names.
ModelInfo model_info(const std::string& name);

}  // namespace statfi::models

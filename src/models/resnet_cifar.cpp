#include "models/resnet_cifar.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/elementwise.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace statfi::models {

namespace {

/// Appends one basic block; returns the id of its output node.
int add_basic_block(nn::Network& net, const std::string& prefix, int input_id,
                    std::int64_t in_channels, std::int64_t out_channels,
                    std::int64_t stride) {
    using namespace statfi::nn;
    int id = net.add(prefix + ".conv1",
                     std::make_unique<Conv2d>(in_channels, out_channels, 3,
                                              stride, 1),
                     {input_id});
    id = net.add(prefix + ".bn1", std::make_unique<BatchNorm2d>(out_channels),
                 {id});
    id = net.add(prefix + ".relu1", std::make_unique<ReLU>(), {id});
    id = net.add(prefix + ".conv2",
                 std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1),
                 {id});
    id = net.add(prefix + ".bn2", std::make_unique<BatchNorm2d>(out_channels),
                 {id});

    int shortcut_id = input_id;
    if (stride != 1 || in_channels != out_channels) {
        // Option-A shortcut: subsample + zero-pad channels; no parameters,
        // so it adds no fault population (matches the paper's layer table).
        shortcut_id = net.add(prefix + ".shortcut",
                              std::make_unique<PadShortcut>(in_channels,
                                                            out_channels, stride),
                              {input_id});
    }
    id = net.add(prefix + ".add", std::make_unique<Add>(), {id, shortcut_id});
    return net.add(prefix + ".relu2", std::make_unique<ReLU>(), {id});
}

}  // namespace

nn::Network make_resnet_cifar(int blocks_per_stage, int num_classes) {
    using namespace statfi::nn;
    if (blocks_per_stage < 1)
        throw std::invalid_argument("make_resnet_cifar: blocks_per_stage < 1");
    if (num_classes < 2)
        throw std::invalid_argument("make_resnet_cifar: num_classes < 2");

    Network net;
    int id = net.add("conv1", std::make_unique<Conv2d>(3, 16, 3, 1, 1),
                     {Network::kInputId});
    id = net.add("bn1", std::make_unique<BatchNorm2d>(16), {id});
    id = net.add("relu1", std::make_unique<ReLU>(), {id});

    constexpr std::int64_t widths[3] = {16, 32, 64};
    std::int64_t in_channels = 16;
    for (int stage = 0; stage < 3; ++stage) {
        for (int block = 0; block < blocks_per_stage; ++block) {
            const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
            const std::string prefix =
                "stage" + std::to_string(stage + 1) + ".block" +
                std::to_string(block + 1);
            id = add_basic_block(net, prefix, id, in_channels, widths[stage],
                                 stride);
            in_channels = widths[stage];
        }
    }

    id = net.add("avgpool", std::make_unique<GlobalAvgPool>(), {id});
    net.add("fc", std::make_unique<Linear>(64, num_classes), {id});
    return net;
}

}  // namespace statfi::models

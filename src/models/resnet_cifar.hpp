#pragma once
// CIFAR ResNet family (He et al. 2016, §4.2): 6n+2 layers, option-A
// (parameter-free) shortcuts. ResNet-20 is n=3 — the paper's first case
// study. Weight-layer ordering matches the paper's Table I exactly:
// layer 0 = stem conv (432 params), layers 1..18 = block convs,
// layer 19 = FC (640 params); total 268,336 injectable weights.
// (Table I prints 9,226 for layer 11 — a typo for 9,216; see EXPERIMENTS.md.)

#include <cstdint>

#include "nn/network.hpp"

namespace statfi::models {

/// Builds a CIFAR ResNet with @p blocks_per_stage blocks per stage
/// (ResNet-20: 3, ResNet-32: 5, ResNet-44: 7, ResNet-56: 9).
/// Input (N, 3, 32, 32); output (N, num_classes) logits.
/// BN layers are initialized to identity; call nn::init_network_kaiming (or
/// load trained parameters) before use.
nn::Network make_resnet_cifar(int blocks_per_stage, int num_classes = 10);

inline nn::Network make_resnet20(int num_classes = 10) {
    return make_resnet_cifar(3, num_classes);
}

}  // namespace statfi::models

#include "nn/activations.hpp"

#include <stdexcept>

#include "kernels/registry.hpp"

namespace statfi::nn {

namespace {
const Shape& single_input(std::span<const Shape> inputs, const char* who) {
    if (inputs.size() != 1)
        throw std::invalid_argument(std::string(who) + ": expects 1 input");
    return inputs[0];
}
}  // namespace

Shape ReLU::output_shape(std::span<const Shape> inputs) const {
    return single_input(inputs, "ReLU");
}

void ReLU::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    ensure_shape(out, x.shape());
    kernels::active().relu(x.data(), out.data(), x.numel());
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(*this); }

void ReLU::backward(std::span<const Tensor* const> inputs, const Tensor&,
                    const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    const std::size_t n = x.numel();
    for (std::size_t i = 0; i < n; ++i)
        grad_inputs[0][i] = x[i] > 0.0f ? grad_out[i] : 0.0f;
}

Shape ReLU6::output_shape(std::span<const Shape> inputs) const {
    return single_input(inputs, "ReLU6");
}

void ReLU6::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    ensure_shape(out, x.shape());
    kernels::active().relu6(x.data(), out.data(), x.numel());
}

std::unique_ptr<Layer> ReLU6::clone() const {
    return std::make_unique<ReLU6>(*this);
}

void ReLU6::backward(std::span<const Tensor* const> inputs, const Tensor&,
                     const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    const std::size_t n = x.numel();
    for (std::size_t i = 0; i < n; ++i)
        grad_inputs[0][i] = (x[i] > 0.0f && x[i] < 6.0f) ? grad_out[i] : 0.0f;
}

}  // namespace statfi::nn

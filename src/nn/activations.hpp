#pragma once
// Elementwise activations: ReLU (ResNet) and ReLU6 (MobileNetV2).

#include "nn/layer.hpp"

namespace statfi::nn {

class ReLU final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "relu"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
};

class ReLU6 final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "relu6"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
};

}  // namespace statfi::nn

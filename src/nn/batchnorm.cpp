#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace statfi::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps)
    : channels_(channels),
      eps_(eps),
      scale_(Shape{channels}, 1.0f),
      shift_(Shape{channels}, 0.0f) {
    if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
}

Shape BatchNorm2d::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 1)
        throw std::invalid_argument("BatchNorm2d: expects 1 input");
    if (inputs[0].rank() != 4 || inputs[0][1] != channels_)
        throw std::invalid_argument("BatchNorm2d: bad input shape " +
                                    inputs[0].to_string());
    return inputs[0];
}

void BatchNorm2d::forward(std::span<const Tensor* const> inputs,
                          Tensor& out) const {
    const Tensor& x = *inputs[0];
    ensure_shape(out, output_shape(std::array{x.shape()}));
    const auto& d = x.shape().dims();
    const std::int64_t N = d[0], C = d[1];
    const std::size_t plane = static_cast<std::size_t>(d[2] * d[3]);
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < C; ++c) {
            const float s = scale_[static_cast<std::size_t>(c)];
            const float b = shift_[static_cast<std::size_t>(c)];
            const float* src =
                x.data() + static_cast<std::size_t>(n * C + c) * plane;
            float* dst = out.data() + static_cast<std::size_t>(n * C + c) * plane;
            for (std::size_t i = 0; i < plane; ++i) dst[i] = s * src[i] + b;
        }
    }
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
    return std::make_unique<BatchNorm2d>(*this);
}

void BatchNorm2d::set_statistics(const Tensor& gamma, const Tensor& beta,
                                 const Tensor& running_mean,
                                 const Tensor& running_var) {
    const auto C = static_cast<std::size_t>(channels_);
    if (gamma.numel() != C || beta.numel() != C || running_mean.numel() != C ||
        running_var.numel() != C)
        throw std::invalid_argument("BatchNorm2d::set_statistics: size mismatch");
    for (std::size_t c = 0; c < C; ++c) {
        const float inv_std = 1.0f / std::sqrt(running_var[c] + eps_);
        scale_[c] = gamma[c] * inv_std;
        shift_[c] = beta[c] - running_mean[c] * gamma[c] * inv_std;
    }
}

void BatchNorm2d::set_identity() {
    scale_.fill(1.0f);
    shift_.fill(0.0f);
}

}  // namespace statfi::nn

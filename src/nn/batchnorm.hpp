#pragma once
// 2-D batch normalization, inference mode: y = gamma * (x - mean) /
// sqrt(var + eps) + beta with fixed running statistics.
//
// BN parameters are deliberately NOT injectable — the paper's fault model
// targets conv/FC weights only, and its per-layer parameter counts (Table I)
// exclude BN. The running statistics are folded into per-channel scale/shift
// once at configuration time, so inference pays one FMA per element.

#include <cstdint>

#include "nn/layer.hpp"

namespace statfi::nn {

class BatchNorm2d final : public Layer {
public:
    explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f);

    [[nodiscard]] std::string kind() const override { return "batchnorm2d"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    /// Configure the affine transform and running statistics; recomputes the
    /// folded per-channel scale/shift. All four tensors must have shape (C).
    void set_statistics(const Tensor& gamma, const Tensor& beta,
                        const Tensor& running_mean, const Tensor& running_var);

    /// Identity-preserving defaults (gamma=1, beta=0, mean=0, var=1).
    void set_identity();

    [[nodiscard]] std::int64_t channels() const { return channels_; }
    [[nodiscard]] const Tensor& folded_scale() const { return scale_; }
    [[nodiscard]] const Tensor& folded_shift() const { return shift_; }

private:
    std::int64_t channels_;
    float eps_;
    Tensor scale_;  // gamma / sqrt(var + eps)
    Tensor shift_;  // beta - mean * scale
};

}  // namespace statfi::nn

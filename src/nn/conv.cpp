#include "nn/conv.hpp"

#include <cstring>
#include <stdexcept>

#include "nn/gemm.hpp"

namespace statfi::nn {

std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding) {
    const std::int64_t out = (in + 2 * padding - kernel) / stride + 1;
    if (out <= 0)
        throw std::invalid_argument("conv_out_size: non-positive output size");
    return out;
}

void im2col(const float* input, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* cols) {
    const std::int64_t oh = conv_out_size(height, kernel, stride, padding);
    const std::int64_t ow = conv_out_size(width, kernel, stride, padding);
    const std::int64_t out_plane = oh * ow;
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        const float* plane = input + c * height * width;
        for (std::int64_t kh = 0; kh < kernel; ++kh) {
            for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
                float* dst = cols + row * out_plane;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t in_y = y * stride + kh - padding;
                    if (in_y < 0 || in_y >= height) {
                        std::memset(dst + y * ow, 0,
                                    static_cast<std::size_t>(ow) * sizeof(float));
                        continue;
                    }
                    const float* src_row = plane + in_y * width;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t in_x = x * stride + kw - padding;
                        dst[y * ow + x] = (in_x >= 0 && in_x < width)
                                              ? src_row[in_x]
                                              : 0.0f;
                    }
                }
            }
        }
    }
}

void col2im(const float* cols, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* input) {
    const std::int64_t oh = conv_out_size(height, kernel, stride, padding);
    const std::int64_t ow = conv_out_size(width, kernel, stride, padding);
    const std::int64_t out_plane = oh * ow;
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < channels; ++c) {
        float* plane = input + c * height * width;
        for (std::int64_t kh = 0; kh < kernel; ++kh) {
            for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
                const float* src = cols + row * out_plane;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t in_y = y * stride + kh - padding;
                    if (in_y < 0 || in_y >= height) continue;
                    float* dst_row = plane + in_y * width;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t in_x = x * stride + kw - padding;
                        if (in_x >= 0 && in_x < width)
                            dst_row[in_x] += src[y * ow + x];
                    }
                }
            }
        }
    }
}

namespace {
void check_single_4d_input(std::span<const Shape> inputs, std::int64_t channels,
                           const char* who) {
    if (inputs.size() != 1)
        throw std::invalid_argument(std::string(who) + ": expects 1 input");
    if (inputs[0].rank() != 4)
        throw std::invalid_argument(std::string(who) + ": expects NCHW input");
    if (inputs[0][1] != channels)
        throw std::invalid_argument(std::string(who) + ": channel mismatch (got " +
                                    std::to_string(inputs[0][1]) + ", want " +
                                    std::to_string(channels) + ")");
}
}  // namespace

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Shape{out_channels, in_channels, kernel, kernel}),
      weight_grad_(Shape{out_channels, in_channels, kernel, kernel}) {
    if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
        padding < 0)
        throw std::invalid_argument("Conv2d: invalid geometry");
}

Shape Conv2d::output_shape(std::span<const Shape> inputs) const {
    check_single_4d_input(inputs, in_channels_, "Conv2d");
    const auto& in = inputs[0];
    return Shape{in[0], out_channels_,
                 conv_out_size(in[2], kernel_, stride_, padding_),
                 conv_out_size(in[3], kernel_, stride_, padding_)};
}

void Conv2d::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const Shape out_shape = output_shape(std::array{in});
    ensure_shape(out, out_shape);

    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = out_shape[2], OW = out_shape[3];
    const std::size_t col_rows =
        static_cast<std::size_t>(in_channels_ * kernel_ * kernel_);
    const std::size_t out_plane = static_cast<std::size_t>(OH * OW);

    // K=1, s=1, p=0 convolutions (MobileNetV2's pointwise layers) are plain
    // GEMMs over the input as-is; skip the im2col copy entirely.
    const bool pointwise = kernel_ == 1 && stride_ == 1 && padding_ == 0;
    float* cols = pointwise ? nullptr : arena_.floats(col_rows * out_plane);

    const std::size_t in_image = static_cast<std::size_t>(in_channels_ * H * W);
    const std::size_t out_image =
        static_cast<std::size_t>(out_channels_) * out_plane;
    for (std::int64_t n = 0; n < N; ++n) {
        const float* src = x.data() + static_cast<std::size_t>(n) * in_image;
        const float* b = src;
        if (!pointwise) {
            im2col(src, in_channels_, H, W, kernel_, stride_, padding_, cols);
            b = cols;
        }
        gemm(static_cast<std::size_t>(out_channels_), out_plane, col_rows,
             weight_.data(), b, out.data() + static_cast<std::size_t>(n) * out_image);
    }
}

void Conv2d::forward_row(std::span<const Tensor* const> inputs,
                         std::uint64_t weight_index, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const Shape out_shape = output_shape(std::array{in});
    ensure_shape(out, out_shape);

    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = out_shape[2], OW = out_shape[3];
    const std::size_t col_rows =
        static_cast<std::size_t>(in_channels_ * kernel_ * kernel_);
    const std::size_t out_plane = static_cast<std::size_t>(OH * OW);
    const std::size_t co = static_cast<std::size_t>(row_of_weight(weight_index));

    const bool pointwise = kernel_ == 1 && stride_ == 1 && padding_ == 0;
    float* cols = pointwise ? nullptr : arena_.floats(col_rows * out_plane);

    const std::size_t in_image = static_cast<std::size_t>(in_channels_ * H * W);
    const std::size_t out_image =
        static_cast<std::size_t>(out_channels_) * out_plane;
    const float* wrow = weight_.data() + co * col_rows;
    for (std::int64_t n = 0; n < N; ++n) {
        const float* src = x.data() + static_cast<std::size_t>(n) * in_image;
        const float* b = src;
        if (!pointwise) {
            im2col(src, in_channels_, H, W, kernel_, stride_, padding_, cols);
            b = cols;
        }
        // One-row GEMM: per-element additions stay in ascending-k order, so
        // the row is bit-identical to what the full Cout-row gemm produces.
        gemm(1, out_plane, col_rows, wrow, b,
             out.data() + static_cast<std::size_t>(n) * out_image +
                 co * out_plane);
    }
}

void Conv2d::forward_row_cached(std::span<const Tensor* const> inputs,
                                std::uint64_t weight_index, Tensor& cache,
                                Tensor& out) const {
    const bool pointwise = kernel_ == 1 && stride_ == 1 && padding_ == 0;
    if (pointwise) {
        // Pointwise convs read the input as-is — nothing to cache.
        forward_row(inputs, weight_index, out);
        return;
    }
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const Shape out_shape = output_shape(std::array{in});
    ensure_shape(out, out_shape);

    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = out_shape[2], OW = out_shape[3];
    const std::size_t col_rows =
        static_cast<std::size_t>(in_channels_ * kernel_ * kernel_);
    const std::size_t out_plane = static_cast<std::size_t>(OH * OW);
    const std::size_t co = static_cast<std::size_t>(row_of_weight(weight_index));

    // Fill the cache with every image's im2col matrix on first use; the
    // caller guarantees the inputs are unchanged on subsequent calls, so a
    // matching shape means the contents are already valid.
    const Shape cache_shape{N, static_cast<std::int64_t>(col_rows),
                            static_cast<std::int64_t>(OH * OW)};
    const std::size_t per_image = col_rows * out_plane;
    const std::size_t in_image = static_cast<std::size_t>(in_channels_ * H * W);
    if (cache.shape() != cache_shape) {
        ensure_shape(cache, cache_shape);
        for (std::int64_t n = 0; n < N; ++n)
            im2col(x.data() + static_cast<std::size_t>(n) * in_image,
                   in_channels_, H, W, kernel_, stride_, padding_,
                   cache.data() + static_cast<std::size_t>(n) * per_image);
    }

    const std::size_t out_image =
        static_cast<std::size_t>(out_channels_) * out_plane;
    const float* wrow = weight_.data() + co * col_rows;
    for (std::int64_t n = 0; n < N; ++n)
        gemm(1, out_plane, col_rows, wrow,
             cache.data() + static_cast<std::size_t>(n) * per_image,
             out.data() + static_cast<std::size_t>(n) * out_image +
                 co * out_plane);
}

std::unique_ptr<Layer> Conv2d::clone() const {
    return std::make_unique<Conv2d>(*this);
}

void Conv2d::backward(std::span<const Tensor* const> inputs, const Tensor&,
                      const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = grad_out.shape()[2], OW = grad_out.shape()[3];
    const std::size_t col_rows =
        static_cast<std::size_t>(in_channels_ * kernel_ * kernel_);
    const std::size_t out_plane = static_cast<std::size_t>(OH * OW);

    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], in);
    grad_inputs[0].zero();

    std::vector<float> cols(col_rows * out_plane);
    std::vector<float> col_grad(col_rows * out_plane);
    const std::size_t in_image = static_cast<std::size_t>(in_channels_ * H * W);
    const std::size_t out_image =
        static_cast<std::size_t>(out_channels_) * out_plane;

    for (std::int64_t n = 0; n < N; ++n) {
        const float* src = x.data() + static_cast<std::size_t>(n) * in_image;
        const float* go = grad_out.data() + static_cast<std::size_t>(n) * out_image;
        im2col(src, in_channels_, H, W, kernel_, stride_, padding_, cols.data());
        // dW[Cout, CKK] += dY[Cout, OHW] * cols[CKK, OHW]^T
        gemm_a_bt_accumulate(static_cast<std::size_t>(out_channels_), col_rows,
                             out_plane, go, cols.data(), weight_grad_.data());
        // dcols[CKK, OHW] = W[Cout, CKK]^T * dY[Cout, OHW]
        gemm_at_b(col_rows, out_plane, static_cast<std::size_t>(out_channels_),
                  weight_.data(), go, col_grad.data());
        col2im(col_grad.data(), in_channels_, H, W, kernel_, stride_, padding_,
               grad_inputs[0].data() + static_cast<std::size_t>(n) * in_image);
    }
}

std::vector<ParamRef> Conv2d::params() {
    return {ParamRef{&weight_, &weight_grad_}};
}

void Conv2d::zero_grad() { weight_grad_.zero(); }

// ------------------------------------------------------- DepthwiseConv2d --

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t padding)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Shape{channels, 1, kernel, kernel}),
      weight_grad_(Shape{channels, 1, kernel, kernel}) {
    if (channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0)
        throw std::invalid_argument("DepthwiseConv2d: invalid geometry");
}

Shape DepthwiseConv2d::output_shape(std::span<const Shape> inputs) const {
    check_single_4d_input(inputs, channels_, "DepthwiseConv2d");
    const auto& in = inputs[0];
    return Shape{in[0], channels_,
                 conv_out_size(in[2], kernel_, stride_, padding_),
                 conv_out_size(in[3], kernel_, stride_, padding_)};
}

void DepthwiseConv2d::forward(std::span<const Tensor* const> inputs,
                              Tensor& out) const {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const Shape out_shape = output_shape(std::array{in});
    ensure_shape(out, out_shape);

    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = out_shape[2], OW = out_shape[3];
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < channels_; ++c) {
            const float* plane =
                x.data() + static_cast<std::size_t>((n * channels_ + c) * H * W);
            const float* k =
                weight_.data() + static_cast<std::size_t>(c * kernel_ * kernel_);
            float* dst = out.data() +
                         static_cast<std::size_t>((n * channels_ + c) * OH * OW);
            for (std::int64_t y = 0; y < OH; ++y) {
                for (std::int64_t x2 = 0; x2 < OW; ++x2) {
                    float acc = 0.0f;
                    for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                        const std::int64_t in_y = y * stride_ + kh - padding_;
                        if (in_y < 0 || in_y >= H) continue;
                        for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                            const std::int64_t in_x = x2 * stride_ + kw - padding_;
                            if (in_x < 0 || in_x >= W) continue;
                            acc += plane[in_y * W + in_x] * k[kh * kernel_ + kw];
                        }
                    }
                    dst[y * OW + x2] = acc;
                }
            }
        }
    }
}

void DepthwiseConv2d::forward_row(std::span<const Tensor* const> inputs,
                                  std::uint64_t weight_index,
                                  Tensor& out) const {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const Shape out_shape = output_shape(std::array{in});
    ensure_shape(out, out_shape);

    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = out_shape[2], OW = out_shape[3];
    const std::int64_t c = row_of_weight(weight_index);
    const float* k =
        weight_.data() + static_cast<std::size_t>(c * kernel_ * kernel_);
    for (std::int64_t n = 0; n < N; ++n) {
        const float* plane =
            x.data() + static_cast<std::size_t>((n * channels_ + c) * H * W);
        float* dst = out.data() +
                     static_cast<std::size_t>((n * channels_ + c) * OH * OW);
        for (std::int64_t y = 0; y < OH; ++y) {
            for (std::int64_t x2 = 0; x2 < OW; ++x2) {
                float acc = 0.0f;
                for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                    const std::int64_t in_y = y * stride_ + kh - padding_;
                    if (in_y < 0 || in_y >= H) continue;
                    for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                        const std::int64_t in_x = x2 * stride_ + kw - padding_;
                        if (in_x < 0 || in_x >= W) continue;
                        acc += plane[in_y * W + in_x] * k[kh * kernel_ + kw];
                    }
                }
                dst[y * OW + x2] = acc;
            }
        }
    }
}

std::unique_ptr<Layer> DepthwiseConv2d::clone() const {
    return std::make_unique<DepthwiseConv2d>(*this);
}

void DepthwiseConv2d::backward(std::span<const Tensor* const> inputs,
                               const Tensor&, const Tensor& grad_out,
                               std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    const auto& in = x.shape();
    const std::int64_t N = in[0], H = in[2], W = in[3];
    const std::int64_t OH = grad_out.shape()[2], OW = grad_out.shape()[3];

    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], in);
    grad_inputs[0].zero();

    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < channels_; ++c) {
            const float* plane =
                x.data() + static_cast<std::size_t>((n * channels_ + c) * H * W);
            const float* go = grad_out.data() +
                              static_cast<std::size_t>((n * channels_ + c) * OH * OW);
            const float* k =
                weight_.data() + static_cast<std::size_t>(c * kernel_ * kernel_);
            float* kg = weight_grad_.data() +
                        static_cast<std::size_t>(c * kernel_ * kernel_);
            float* gi = grad_inputs[0].data() +
                        static_cast<std::size_t>((n * channels_ + c) * H * W);
            for (std::int64_t y = 0; y < OH; ++y) {
                for (std::int64_t x2 = 0; x2 < OW; ++x2) {
                    const float g = go[y * OW + x2];
                    if (g == 0.0f) continue;
                    for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                        const std::int64_t in_y = y * stride_ + kh - padding_;
                        if (in_y < 0 || in_y >= H) continue;
                        for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                            const std::int64_t in_x = x2 * stride_ + kw - padding_;
                            if (in_x < 0 || in_x >= W) continue;
                            kg[kh * kernel_ + kw] += g * plane[in_y * W + in_x];
                            gi[in_y * W + in_x] += g * k[kh * kernel_ + kw];
                        }
                    }
                }
            }
        }
    }
}

std::vector<ParamRef> DepthwiseConv2d::params() {
    return {ParamRef{&weight_, &weight_grad_}};
}

void DepthwiseConv2d::zero_grad() { weight_grad_.zero(); }

}  // namespace statfi::nn

#pragma once
// 2-D convolutions: standard (im2col + GEMM) and depthwise (direct loops).
// Convolution weights are THE fault-injection target of the paper; both
// classes expose their weight tensor through Layer::injectable_weight().
// Biases are intentionally absent: the CIFAR ResNet / MobileNetV2 conv
// layers are bias-free (BN provides the affine part), matching the paper's
// parameter counts.

#include <cstdint>

#include "kernels/arena.hpp"
#include "nn/layer.hpp"

namespace statfi::nn {

/// im2col: expand input patch columns. @p input is one image (C,H,W) laid
/// out contiguously; @p cols has shape [C*K*K, OH*OW] row-major.
void im2col(const float* input, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* cols);

/// col2im: scatter-accumulate columns back to an image buffer (zeroed by the
/// caller). Inverse companion of im2col for gradient computation.
void col2im(const float* cols, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, float* input);

/// Output spatial size for a conv/pool: floor((in + 2p - k)/s) + 1.
std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding);

/// Standard 2-D convolution, square kernel, no bias, no dilation/groups.
class Conv2d final : public Layer {
public:
    Conv2d(std::int64_t in_channels, std::int64_t out_channels,
           std::int64_t kernel, std::int64_t stride = 1, std::int64_t padding = 0);

    [[nodiscard]] std::string kind() const override { return "conv2d"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool has_injectable_weight() const override { return true; }
    [[nodiscard]] Tensor* injectable_weight() override { return &weight_; }
    [[nodiscard]] const Tensor* injectable_weight() const override {
        return &weight_;
    }

    [[nodiscard]] bool supports_row_update() const override { return true; }
    [[nodiscard]] std::int64_t row_of_weight(
        std::uint64_t weight_index) const override {
        return static_cast<std::int64_t>(weight_index) /
               (in_channels_ * kernel_ * kernel_);
    }
    void forward_row(std::span<const Tensor* const> inputs,
                     std::uint64_t weight_index, Tensor& out) const override;
    void forward_row_cached(std::span<const Tensor* const> inputs,
                            std::uint64_t weight_index, Tensor& cache,
                            Tensor& out) const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
    [[nodiscard]] std::vector<ParamRef> params() override;
    void zero_grad() override;

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] std::int64_t in_channels() const { return in_channels_; }
    [[nodiscard]] std::int64_t out_channels() const { return out_channels_; }
    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }
    [[nodiscard]] std::int64_t padding() const { return padding_; }
    /// Current im2col workspace footprint (grow-only; see arena_ below).
    [[nodiscard]] std::size_t workspace_bytes() const { return arena_.bytes(); }

private:
    std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
    Tensor weight_;       // (Cout, Cin, K, K)
    Tensor weight_grad_;  // same shape
    /// Grow-only im2col workspace reused across forward calls — fault
    /// campaigns run ~10^5 forwards per layer, and a fresh buffer per call
    /// dominated the allocator profile. The arena grows to the largest batch
    /// seen and never shrinks. Each campaign worker owns a private network
    /// clone, so the workspace is single-threaded by construction.
    mutable kernels::ScratchArena arena_;
};

/// Depthwise 2-D convolution (groups == channels), square kernel, no bias.
class DepthwiseConv2d final : public Layer {
public:
    DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                    std::int64_t stride = 1, std::int64_t padding = 0);

    [[nodiscard]] std::string kind() const override { return "dwconv2d"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool has_injectable_weight() const override { return true; }
    [[nodiscard]] Tensor* injectable_weight() override { return &weight_; }
    [[nodiscard]] const Tensor* injectable_weight() const override {
        return &weight_;
    }

    [[nodiscard]] bool supports_row_update() const override { return true; }
    [[nodiscard]] std::int64_t row_of_weight(
        std::uint64_t weight_index) const override {
        return static_cast<std::int64_t>(weight_index) / (kernel_ * kernel_);
    }
    void forward_row(std::span<const Tensor* const> inputs,
                     std::uint64_t weight_index, Tensor& out) const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
    [[nodiscard]] std::vector<ParamRef> params() override;
    void zero_grad() override;

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] std::int64_t channels() const { return channels_; }
    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }
    [[nodiscard]] std::int64_t padding() const { return padding_; }

private:
    std::int64_t channels_, kernel_, stride_, padding_;
    Tensor weight_;       // (C, 1, K, K)
    Tensor weight_grad_;  // same shape
};

}  // namespace statfi::nn

#include "nn/elementwise.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/registry.hpp"

namespace statfi::nn {

// -------------------------------------------------------------------- Add --

Shape Add::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 2) throw std::invalid_argument("Add: expects 2 inputs");
    if (!(inputs[0] == inputs[1]))
        throw std::invalid_argument("Add: shape mismatch " + inputs[0].to_string() +
                                    " vs " + inputs[1].to_string());
    return inputs[0];
}

void Add::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& a = *inputs[0];
    const Tensor& b = *inputs[1];
    ensure_shape(out, output_shape(std::array{a.shape(), b.shape()}));
    kernels::active().add(a.data(), b.data(), out.data(), a.numel());
}

std::unique_ptr<Layer> Add::clone() const { return std::make_unique<Add>(*this); }

void Add::backward(std::span<const Tensor* const> inputs, const Tensor&,
                   const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    grad_inputs.resize(2);
    for (int k = 0; k < 2; ++k) {
        ensure_shape(grad_inputs[static_cast<std::size_t>(k)],
                     inputs[static_cast<std::size_t>(k)]->shape());
        std::copy(grad_out.data(), grad_out.data() + grad_out.numel(),
                  grad_inputs[static_cast<std::size_t>(k)].data());
    }
}

// ------------------------------------------------------------ PadShortcut --

PadShortcut::PadShortcut(std::int64_t in_channels, std::int64_t out_channels,
                         std::int64_t stride)
    : in_channels_(in_channels), out_channels_(out_channels), stride_(stride) {
    if (in_channels <= 0 || out_channels < in_channels || stride <= 0)
        throw std::invalid_argument("PadShortcut: invalid geometry");
}

Shape PadShortcut::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 1)
        throw std::invalid_argument("PadShortcut: expects 1 input");
    const auto& in = inputs[0];
    if (in.rank() != 4 || in[1] != in_channels_)
        throw std::invalid_argument("PadShortcut: bad input " + in.to_string());
    return Shape{in[0], out_channels_, (in[2] + stride_ - 1) / stride_,
                 (in[3] + stride_ - 1) / stride_};
}

void PadShortcut::forward(std::span<const Tensor* const> inputs,
                          Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape os = output_shape(std::array{x.shape()});
    ensure_shape(out, os);
    out.zero();
    const auto& d = x.shape().dims();
    const std::int64_t N = d[0], H = d[2], W = d[3];
    const std::int64_t OH = os[2], OW = os[3];
    for (std::int64_t n = 0; n < N; ++n)
        for (std::int64_t c = 0; c < in_channels_; ++c) {
            const float* src =
                x.data() + static_cast<std::size_t>((n * in_channels_ + c) * H * W);
            float* dst = out.data() + static_cast<std::size_t>(
                                          (n * out_channels_ + c) * OH * OW);
            for (std::int64_t y = 0; y < OH; ++y)
                for (std::int64_t xx = 0; xx < OW; ++xx)
                    dst[y * OW + xx] = src[(y * stride_) * W + (xx * stride_)];
        }
}

std::unique_ptr<Layer> PadShortcut::clone() const {
    return std::make_unique<PadShortcut>(*this);
}

void PadShortcut::backward(std::span<const Tensor* const> inputs, const Tensor&,
                           const Tensor& grad_out,
                           std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    grad_inputs[0].zero();
    const auto& d = x.shape().dims();
    const std::int64_t N = d[0], H = d[2], W = d[3];
    const std::int64_t OH = grad_out.shape()[2], OW = grad_out.shape()[3];
    for (std::int64_t n = 0; n < N; ++n)
        for (std::int64_t c = 0; c < in_channels_; ++c) {
            float* gi = grad_inputs[0].data() +
                        static_cast<std::size_t>((n * in_channels_ + c) * H * W);
            const float* go = grad_out.data() + static_cast<std::size_t>(
                                                    (n * out_channels_ + c) * OH * OW);
            for (std::int64_t y = 0; y < OH; ++y)
                for (std::int64_t xx = 0; xx < OW; ++xx)
                    gi[(y * stride_) * W + (xx * stride_)] = go[y * OW + xx];
        }
}

// ---------------------------------------------------------------- Softmax --

Shape Softmax::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 1)
        throw std::invalid_argument("Softmax: expects 1 input");
    if (inputs[0].rank() != 2)
        throw std::invalid_argument("Softmax: expects (N, F) input");
    return inputs[0];
}

void Softmax::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    ensure_shape(out, x.shape());
    const std::int64_t N = x.shape()[0], F = x.shape()[1];
    for (std::int64_t n = 0; n < N; ++n) {
        const float* row = x.data() + static_cast<std::size_t>(n * F);
        float* dst = out.data() + static_cast<std::size_t>(n * F);
        float mx = row[0];
        for (std::int64_t f = 1; f < F; ++f) mx = std::max(mx, row[f]);
        float denom = 0.0f;
        for (std::int64_t f = 0; f < F; ++f) {
            dst[f] = std::exp(row[f] - mx);
            denom += dst[f];
        }
        const float inv = 1.0f / denom;
        for (std::int64_t f = 0; f < F; ++f) dst[f] *= inv;
    }
}

std::unique_ptr<Layer> Softmax::clone() const {
    return std::make_unique<Softmax>(*this);
}

}  // namespace statfi::nn

#pragma once
// Multi-input elementwise layers: residual Add (ResNet shortcuts, MobileNetV2
// inverted-residual connections) and Softmax (probability head).

#include "nn/layer.hpp"

namespace statfi::nn {

/// Elementwise sum of two same-shaped inputs.
class Add final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "add"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
};

/// ResNet option-A shortcut for CIFAR: spatially subsample by stride 2 and
/// zero-pad the channel dimension. Parameter-free, so it contributes no
/// faults — matching the paper's ResNet-20 layer table (no shortcut rows).
class PadShortcut final : public Layer {
public:
    PadShortcut(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride);

    [[nodiscard]] std::string kind() const override { return "padshortcut"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;

private:
    std::int64_t in_channels_, out_channels_, stride_;
};

/// Row-wise softmax over (N, F) logits.
class Softmax final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "softmax"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;
};

}  // namespace statfi::nn

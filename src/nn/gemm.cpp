#include "nn/gemm.hpp"

#include <cstring>

#include "kernels/registry.hpp"

namespace statfi::nn {

// The forward-pass GEMMs dispatch through the kernel registry (generic or
// AVX2, resolved at startup); the registry's bit-identity contract keeps
// the determinism note in gemm.hpp true for every backend.

void gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                     const float* A, const float* B, float* C) {
    kernels::active().gemm_accumulate(M, N, K, A, B, C);
}

void gemm(std::size_t M, std::size_t N, std::size_t K, const float* A,
          const float* B, float* C) {
    std::memset(C, 0, M * N * sizeof(float));
    gemm_accumulate(M, N, K, A, B, C);
}

// The gradient-side GEMMs below reduce along non-contiguous axes (a
// horizontal dot product per element in gemm_a_bt_accumulate); SIMD-ing a
// reduction reassociates the additions, so they stay scalar on every
// backend. They are training-only paths, never in the campaign hot loop.

void gemm_at_b(std::size_t M, std::size_t N, std::size_t K, const float* A,
               const float* B, float* C) {
    std::memset(C, 0, M * N * sizeof(float));
    // C[i,j] = sum_k A[k,i] * B[k,j]
    for (std::size_t k = 0; k < K; ++k) {
        const float* arow = A + k * M;
        const float* brow = B + k * N;
        for (std::size_t i = 0; i < M; ++i) {
            const float a = arow[i];
            if (a == 0.0f) continue;
            float* crow = C + i * N;
            for (std::size_t j = 0; j < N; ++j) crow[j] += a * brow[j];
        }
    }
}

void gemm_a_bt_accumulate(std::size_t M, std::size_t N, std::size_t K,
                          const float* A, const float* B, float* C) {
    // C[i,j] += sum_k A[i,k] * B[j,k]
    for (std::size_t i = 0; i < M; ++i) {
        const float* arow = A + i * K;
        float* crow = C + i * N;
        for (std::size_t j = 0; j < N; ++j) {
            const float* brow = B + j * K;
            float acc = 0.0f;
            for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
        }
    }
}

}  // namespace statfi::nn

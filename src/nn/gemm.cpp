#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace statfi::nn {

namespace {
// Block sizes tuned for ~32 KiB L1 / 256 KiB L2; the kernel is an i-k-j
// loop nest whose inner loop the compiler auto-vectorizes.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;

void gemm_block(std::size_t m0, std::size_t m1, std::size_t k0, std::size_t k1,
                std::size_t n0, std::size_t n1, std::size_t N, std::size_t K,
                const float* A, const float* B, float* C) {
    for (std::size_t i = m0; i < m1; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
            const float a = A[i * K + k];
            if (a == 0.0f) continue;  // common after ReLU-sparsified inputs
            const float* brow = B + k * N;
            float* crow = C + i * N;
            for (std::size_t j = n0; j < n1; ++j) crow[j] += a * brow[j];
        }
    }
}
}  // namespace

void gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                     const float* A, const float* B, float* C) {
    for (std::size_t k0 = 0; k0 < K; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, K);
        for (std::size_t m0 = 0; m0 < M; m0 += kBlockM) {
            const std::size_t m1 = std::min(m0 + kBlockM, M);
            for (std::size_t n0 = 0; n0 < N; n0 += kBlockN) {
                const std::size_t n1 = std::min(n0 + kBlockN, N);
                gemm_block(m0, m1, k0, k1, n0, n1, N, K, A, B, C);
            }
        }
    }
}

void gemm(std::size_t M, std::size_t N, std::size_t K, const float* A,
          const float* B, float* C) {
    std::memset(C, 0, M * N * sizeof(float));
    gemm_accumulate(M, N, K, A, B, C);
}

void gemm_at_b(std::size_t M, std::size_t N, std::size_t K, const float* A,
               const float* B, float* C) {
    std::memset(C, 0, M * N * sizeof(float));
    // C[i,j] = sum_k A[k,i] * B[k,j]
    for (std::size_t k = 0; k < K; ++k) {
        const float* arow = A + k * M;
        const float* brow = B + k * N;
        for (std::size_t i = 0; i < M; ++i) {
            const float a = arow[i];
            if (a == 0.0f) continue;
            float* crow = C + i * N;
            for (std::size_t j = 0; j < N; ++j) crow[j] += a * brow[j];
        }
    }
}

void gemm_a_bt_accumulate(std::size_t M, std::size_t N, std::size_t K,
                          const float* A, const float* B, float* C) {
    // C[i,j] += sum_k A[i,k] * B[j,k]
    for (std::size_t i = 0; i < M; ++i) {
        const float* arow = A + i * K;
        float* crow = C + i * N;
        for (std::size_t j = 0; j < N; ++j) {
            const float* brow = B + j * K;
            float acc = 0.0f;
            for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
            crow[j] += acc;
        }
    }
}

}  // namespace statfi::nn

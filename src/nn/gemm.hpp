#pragma once
// Small blocked single-precision GEMM. Backs the im2col convolution path and
// the fully-connected layer. Not a BLAS replacement — just cache-blocked,
// vectorizer-friendly loops that are fast enough for fault campaigns on CPU.
// The forward-pass entry points dispatch through kernels::active() (generic
// or AVX2 backend, selected at startup — see kernels/registry.hpp).
//
// Determinism note the campaign engine relies on: each output element
// C[m,n] accumulates its K products in ascending-k order regardless of M or
// N (the blocking never reorders a single element's additions). Rows of C
// are therefore computed identically whether A arrives as one batched
// matrix or row-by-row — which is why the batched golden pass in
// core/classification_core.cpp is bit-identical to per-image passes.

#include <cstddef>

namespace statfi::nn {

/// C[M,N] = A[M,K] * B[K,N]  (row-major, C overwritten).
void gemm(std::size_t M, std::size_t N, std::size_t K, const float* A,
          const float* B, float* C);

/// C[M,N] += A[M,K] * B[K,N]  (row-major).
void gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                     const float* A, const float* B, float* C);

/// C[M,N] = A[K,M]^T * B[K,N]  (row-major) — used by conv weight gradients.
void gemm_at_b(std::size_t M, std::size_t N, std::size_t K, const float* A,
               const float* B, float* C);

/// C[M,N] += A[M,K] * B[N,K]^T (row-major) — used by conv input gradients.
void gemm_a_bt_accumulate(std::size_t M, std::size_t N, std::size_t K,
                          const float* A, const float* B, float* C);

}  // namespace statfi::nn

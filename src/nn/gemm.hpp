#pragma once
// Small blocked single-precision GEMM. Backs the im2col convolution path and
// the fully-connected layer. Not a BLAS replacement — just cache-blocked,
// vectorizer-friendly loops that are fast enough for fault campaigns on CPU.

#include <cstddef>

namespace statfi::nn {

/// C[M,N] = A[M,K] * B[K,N]  (row-major, C overwritten).
void gemm(std::size_t M, std::size_t N, std::size_t K, const float* A,
          const float* B, float* C);

/// C[M,N] += A[M,K] * B[K,N]  (row-major).
void gemm_accumulate(std::size_t M, std::size_t N, std::size_t K,
                     const float* A, const float* B, float* C);

/// C[M,N] = A[K,M]^T * B[K,N]  (row-major) — used by conv weight gradients.
void gemm_at_b(std::size_t M, std::size_t N, std::size_t K, const float* A,
               const float* B, float* C);

/// C[M,N] += A[M,K] * B[N,K]^T (row-major) — used by conv input gradients.
void gemm_a_bt_accumulate(std::size_t M, std::size_t N, std::size_t K,
                          const float* A, const float* B, float* C);

}  // namespace statfi::nn

#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace statfi::nn {

namespace {

/// fan_in/fan_out for (out, in) matrices and (Cout, Cin, K, K) kernels.
std::pair<double, double> fans(const Tensor& weight) {
    const auto& d = weight.shape().dims();
    if (d.size() == 2)
        return {static_cast<double>(d[1]), static_cast<double>(d[0])};
    if (d.size() == 4) {
        const double receptive = static_cast<double>(d[2] * d[3]);
        return {static_cast<double>(d[1]) * receptive,
                static_cast<double>(d[0]) * receptive};
    }
    throw std::invalid_argument("init: unsupported weight rank " +
                                std::to_string(d.size()));
}

}  // namespace

void kaiming_normal(Tensor& weight, stats::Rng& rng) {
    const auto [fan_in, fan_out] = fans(weight);
    (void)fan_out;
    // Depthwise kernels have fan_in = K*K (Cin dim is 1); guard against 0.
    const double std = std::sqrt(2.0 / std::max(fan_in, 1.0));
    for (std::size_t i = 0; i < weight.numel(); ++i)
        weight[i] = static_cast<float>(rng.normal(0.0, std));
}

void xavier_uniform(Tensor& weight, stats::Rng& rng) {
    const auto [fan_in, fan_out] = fans(weight);
    const double a = std::sqrt(6.0 / std::max(fan_in + fan_out, 1.0));
    for (std::size_t i = 0; i < weight.numel(); ++i)
        weight[i] = static_cast<float>(rng.uniform(-a, a));
}

void init_network_kaiming(Network& net, stats::Rng& rng) {
    for (auto& ref : net.weight_layers()) {
        auto stream = rng.fork(ref.name);
        kaiming_normal(*ref.weight, stream);
    }
}

}  // namespace statfi::nn

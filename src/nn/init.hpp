#pragma once
// Weight initialization. The data-aware SFI methodology derives per-bit
// criticalities from the *distribution* of golden weights; Kaiming-normal
// initialization reproduces the distribution shape of trained CNN weights
// (zero-centred, |w| well below 2.0) that drives the paper's Fig. 3/4.

#include "nn/network.hpp"
#include "stats/rng.hpp"

namespace statfi::nn {

/// Kaiming (He) normal init for a conv/FC weight tensor: N(0, sqrt(2/fan_in)).
/// fan_in = Cin*K*K for conv weights (Cout,Cin,K,K), in_features for (out,in).
void kaiming_normal(Tensor& weight, stats::Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6/(fan_in + fan_out)).
void xavier_uniform(Tensor& weight, stats::Rng& rng);

/// Initialize every injectable weight in the network with Kaiming-normal
/// (streams forked per layer name so layer order doesn't matter).
void init_network_kaiming(Network& net, stats::Rng& rng);

}  // namespace statfi::nn

#include "nn/layer.hpp"

namespace statfi::nn {

void ensure_shape(Tensor& t, const Shape& shape) {
    if (t.shape() == shape) return;
    t = Tensor(shape);
}

void Layer::backward(std::span<const Tensor* const>, const Tensor&,
                     const Tensor&, std::vector<Tensor>&) {
    throw std::logic_error("Layer '" + kind() + "' does not support backward()");
}

}  // namespace statfi::nn

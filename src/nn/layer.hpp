#pragma once
// Layer abstraction of the inference engine.
//
// Layers are value-ish objects owned by a Network. They compute forward
// passes into caller-provided output tensors (so campaign executors can
// reuse buffers), optionally expose an injectable weight tensor (conv / FC
// weights — the fault targets of the paper), and optionally support
// backward passes for the built-in SGD trainer.

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace statfi::nn {

/// A (value, gradient) pair for one trainable parameter tensor.
struct ParamRef {
    Tensor* value = nullptr;
    Tensor* grad = nullptr;
};

/// Resizes @p t to @p shape iff necessary (keeps allocation otherwise).
void ensure_shape(Tensor& t, const Shape& shape);

class Layer {
public:
    virtual ~Layer() = default;

    /// Short kind tag, e.g. "conv2d", "linear", "relu".
    [[nodiscard]] virtual std::string kind() const = 0;

    /// Output shape for the given input shapes; throws on mismatch.
    [[nodiscard]] virtual Shape output_shape(
        std::span<const Shape> inputs) const = 0;

    /// Forward pass. @p inputs are the producing nodes' outputs in graph
    /// order; @p out is resized as needed.
    virtual void forward(std::span<const Tensor* const> inputs,
                         Tensor& out) const = 0;

    /// Deep copy (used to give each campaign worker a private network).
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

    // -- fault-injection surface ------------------------------------------

    /// True if this layer owns an injectable weight tensor (conv/FC weight).
    /// BatchNorm parameters and biases are *not* injectable, matching the
    /// paper's fault model (static conv+FC weights only).
    [[nodiscard]] virtual bool has_injectable_weight() const { return false; }
    [[nodiscard]] virtual Tensor* injectable_weight() { return nullptr; }
    [[nodiscard]] virtual const Tensor* injectable_weight() const {
        return nullptr;
    }

    // -- training surface --------------------------------------------------

    [[nodiscard]] virtual bool supports_backward() const { return false; }

    /// Backward pass: given the forward inputs, the produced output, and the
    /// gradient w.r.t. the output, fill @p grad_inputs (one tensor per
    /// input, same shapes as the inputs) and accumulate parameter gradients
    /// internally. Default: unsupported.
    virtual void backward(std::span<const Tensor* const> inputs,
                          const Tensor& output, const Tensor& grad_out,
                          std::vector<Tensor>& grad_inputs);

    /// Trainable parameters with their gradient buffers (empty by default).
    [[nodiscard]] virtual std::vector<ParamRef> params() { return {}; }

    /// Zero all parameter gradients.
    virtual void zero_grad() {}
};

}  // namespace statfi::nn

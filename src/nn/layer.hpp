#pragma once
// Layer abstraction of the inference engine.
//
// Layers are value-ish objects owned by a Network. They compute forward
// passes into caller-provided output tensors (so campaign executors can
// reuse buffers), optionally expose an injectable weight tensor (conv / FC
// weights — the fault targets of the paper), and optionally support
// backward passes for the built-in SGD trainer.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace statfi::nn {

/// A (value, gradient) pair for one trainable parameter tensor.
struct ParamRef {
    Tensor* value = nullptr;
    Tensor* grad = nullptr;
};

/// Resizes @p t to @p shape iff necessary (keeps allocation otherwise).
void ensure_shape(Tensor& t, const Shape& shape);

class Layer {
public:
    virtual ~Layer() = default;

    /// Short kind tag, e.g. "conv2d", "linear", "relu".
    [[nodiscard]] virtual std::string kind() const = 0;

    /// Output shape for the given input shapes; throws on mismatch.
    [[nodiscard]] virtual Shape output_shape(
        std::span<const Shape> inputs) const = 0;

    /// Forward pass. @p inputs are the producing nodes' outputs in graph
    /// order; @p out is resized as needed.
    virtual void forward(std::span<const Tensor* const> inputs,
                         Tensor& out) const = 0;

    /// Deep copy (used to give each campaign worker a private network).
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

    // -- fault-injection surface ------------------------------------------

    /// True if this layer owns an injectable weight tensor (conv/FC weight).
    /// BatchNorm parameters and biases are *not* injectable, matching the
    /// paper's fault model (static conv+FC weights only).
    [[nodiscard]] virtual bool has_injectable_weight() const { return false; }
    [[nodiscard]] virtual Tensor* injectable_weight() { return nullptr; }
    [[nodiscard]] virtual const Tensor* injectable_weight() const {
        return nullptr;
    }

    /// True if forward_row() recomputes less than the full output. The key
    /// observation behind the fault-batched ensemble forward: one corrupted
    /// weight word affects exactly one output slice (conv: the output
    /// channel Cout the word belongs to; linear: one output feature), so a
    /// single-word fault needs only that slice recomputed — the remaining
    /// rows are byte-identical to the golden output.
    [[nodiscard]] virtual bool supports_row_update() const { return false; }

    /// The output slice index a fault at flat weight word @p weight_index
    /// affects (conv: output channel; linear: output feature). -1 when the
    /// layer has no row-update support.
    [[nodiscard]] virtual std::int64_t row_of_weight(
        std::uint64_t weight_index) const {
        (void)weight_index;
        return -1;
    }

    /// Recompute only the output slice affected by weight word
    /// @p weight_index, in the exact arithmetic order forward() uses for
    /// that slice. @p out must already hold this layer's full output for
    /// @p inputs (golden rows stay untouched). The default recomputes
    /// everything — correct for any layer, just without the speedup.
    virtual void forward_row(std::span<const Tensor* const> inputs,
                             std::uint64_t weight_index, Tensor& out) const {
        (void)weight_index;
        forward(inputs, out);
    }

    /// forward_row() that may stash input-derived scratch in @p cache and
    /// reuse it on later calls with the SAME inputs — a conv caches its
    /// im2col matrix here, which the fault-batched ensemble would otherwise
    /// rebuild per lane from an input that never changes (the golden
    /// activation). The caller owns one cache per (layer, input) pair and
    /// must reset it (Tensor{}) whenever the inputs change. Default: ignore
    /// the cache — correct for every layer, just without the reuse.
    virtual void forward_row_cached(std::span<const Tensor* const> inputs,
                                    std::uint64_t weight_index, Tensor& cache,
                                    Tensor& out) const {
        (void)cache;
        forward_row(inputs, weight_index, out);
    }

    // -- training surface --------------------------------------------------

    [[nodiscard]] virtual bool supports_backward() const { return false; }

    /// Backward pass: given the forward inputs, the produced output, and the
    /// gradient w.r.t. the output, fill @p grad_inputs (one tensor per
    /// input, same shapes as the inputs) and accumulate parameter gradients
    /// internally. Default: unsupported.
    virtual void backward(std::span<const Tensor* const> inputs,
                          const Tensor& output, const Tensor& grad_out,
                          std::vector<Tensor>& grad_inputs);

    /// Trainable parameters with their gradient buffers (empty by default).
    [[nodiscard]] virtual std::vector<ParamRef> params() { return {}; }

    /// Zero all parameter gradients.
    virtual void zero_grad() {}
};

}  // namespace statfi::nn

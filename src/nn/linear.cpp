#include "nn/linear.hpp"

#include <stdexcept>

namespace statfi::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_(Shape{out_features, in_features}),
      bias_(with_bias ? Tensor(Shape{out_features}) : Tensor()),
      weight_grad_(Shape{out_features, in_features}),
      bias_grad_(with_bias ? Tensor(Shape{out_features}) : Tensor()) {
    if (in_features <= 0 || out_features <= 0)
        throw std::invalid_argument("Linear: invalid feature counts");
}

Shape Linear::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 1)
        throw std::invalid_argument("Linear: expects 1 input");
    if (inputs[0].rank() != 2 || inputs[0][1] != in_features_)
        throw std::invalid_argument("Linear: expects (N, " +
                                    std::to_string(in_features_) + ") input, got " +
                                    inputs[0].to_string());
    return Shape{inputs[0][0], out_features_};
}

void Linear::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape out_shape = output_shape(std::array{x.shape()});
    ensure_shape(out, out_shape);
    const auto N = static_cast<std::size_t>(x.shape()[0]);
    // Y[N, out] = X[N, in] * W[out, in]^T
    for (std::size_t n = 0; n < N; ++n) {
        const float* xr = x.data() + n * static_cast<std::size_t>(in_features_);
        float* yr = out.data() + n * static_cast<std::size_t>(out_features_);
        for (std::int64_t o = 0; o < out_features_; ++o) {
            const float* wr =
                weight_.data() + static_cast<std::size_t>(o * in_features_);
            float acc = with_bias_ ? bias_[static_cast<std::size_t>(o)] : 0.0f;
            for (std::int64_t i = 0; i < in_features_; ++i) acc += xr[i] * wr[i];
            yr[o] = acc;
        }
    }
}

void Linear::forward_row(std::span<const Tensor* const> inputs,
                         std::uint64_t weight_index, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape out_shape = output_shape(std::array{x.shape()});
    ensure_shape(out, out_shape);
    const auto N = static_cast<std::size_t>(x.shape()[0]);
    const std::int64_t o = row_of_weight(weight_index);
    const float* wr = weight_.data() + static_cast<std::size_t>(o * in_features_);
    for (std::size_t n = 0; n < N; ++n) {
        const float* xr = x.data() + n * static_cast<std::size_t>(in_features_);
        float* yr = out.data() + n * static_cast<std::size_t>(out_features_);
        // Same accumulation order as forward() for feature o.
        float acc = with_bias_ ? bias_[static_cast<std::size_t>(o)] : 0.0f;
        for (std::int64_t i = 0; i < in_features_; ++i) acc += xr[i] * wr[i];
        yr[o] = acc;
    }
}

std::unique_ptr<Layer> Linear::clone() const {
    return std::make_unique<Linear>(*this);
}

void Linear::backward(std::span<const Tensor* const> inputs, const Tensor&,
                      const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    const auto N = static_cast<std::size_t>(x.shape()[0]);
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    grad_inputs[0].zero();

    // dW[out, in] += dY[N, out]^T * X[N, in]; dX[N, in] += dY[N, out] * W.
    for (std::size_t n = 0; n < N; ++n) {
        const float* xr = x.data() + n * static_cast<std::size_t>(in_features_);
        const float* gy =
            grad_out.data() + n * static_cast<std::size_t>(out_features_);
        float* gx =
            grad_inputs[0].data() + n * static_cast<std::size_t>(in_features_);
        for (std::int64_t o = 0; o < out_features_; ++o) {
            const float g = gy[o];
            if (g == 0.0f) continue;
            float* wg =
                weight_grad_.data() + static_cast<std::size_t>(o * in_features_);
            const float* wr =
                weight_.data() + static_cast<std::size_t>(o * in_features_);
            for (std::int64_t i = 0; i < in_features_; ++i) {
                wg[i] += g * xr[i];
                gx[i] += g * wr[i];
            }
            if (with_bias_) bias_grad_[static_cast<std::size_t>(o)] += g;
        }
    }
}

std::vector<ParamRef> Linear::params() {
    std::vector<ParamRef> ps{ParamRef{&weight_, &weight_grad_}};
    if (with_bias_) ps.push_back(ParamRef{&bias_, &bias_grad_});
    return ps;
}

void Linear::zero_grad() {
    weight_grad_.zero();
    if (with_bias_) bias_grad_.zero();
}

}  // namespace statfi::nn

#pragma once
// Fully-connected layer. Its weight matrix is a fault-injection target
// (the paper's ResNet-20 "layer 19": 64x10 = 640 weights). The bias is
// optional and, like BN parameters, never injected.

#include <cstdint>

#include "nn/layer.hpp"

namespace statfi::nn {

class Linear final : public Layer {
public:
    Linear(std::int64_t in_features, std::int64_t out_features,
           bool with_bias = false);

    [[nodiscard]] std::string kind() const override { return "linear"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool has_injectable_weight() const override { return true; }
    [[nodiscard]] Tensor* injectable_weight() override { return &weight_; }
    [[nodiscard]] const Tensor* injectable_weight() const override {
        return &weight_;
    }

    [[nodiscard]] bool supports_row_update() const override { return true; }
    [[nodiscard]] std::int64_t row_of_weight(
        std::uint64_t weight_index) const override {
        return static_cast<std::int64_t>(weight_index) / in_features_;
    }
    void forward_row(std::span<const Tensor* const> inputs,
                     std::uint64_t weight_index, Tensor& out) const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
    [[nodiscard]] std::vector<ParamRef> params() override;
    void zero_grad() override;

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] Tensor& bias() { return bias_; }
    [[nodiscard]] bool with_bias() const { return with_bias_; }
    [[nodiscard]] std::int64_t in_features() const { return in_features_; }
    [[nodiscard]] std::int64_t out_features() const { return out_features_; }

private:
    std::int64_t in_features_, out_features_;
    bool with_bias_;
    Tensor weight_;  // (out, in)
    Tensor bias_;    // (out) if with_bias_
    Tensor weight_grad_;
    Tensor bias_grad_;
};

}  // namespace statfi::nn

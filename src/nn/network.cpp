#include "nn/network.hpp"

#include <stdexcept>

namespace statfi::nn {

int Network::add(std::string name, std::unique_ptr<Layer> layer,
                 std::vector<int> inputs) {
    if (!layer) throw std::invalid_argument("Network::add: null layer");
    const int id = node_count();
    for (int in : inputs)
        if (in != kInputId && (in < 0 || in >= id))
            throw std::invalid_argument(
                "Network::add: node '" + name +
                "' references invalid input id " + std::to_string(in));
    nodes_.push_back(Node{std::move(name), std::move(layer), std::move(inputs)});
    return id;
}

int Network::add(std::string name, std::unique_ptr<Layer> layer) {
    const int prev = nodes_.empty() ? kInputId : node_count() - 1;
    return add(std::move(name), std::move(layer), std::vector<int>{prev});
}

std::size_t Network::checked(int id) const {
    if (id < 0 || id >= node_count())
        throw std::out_of_range("Network: node id " + std::to_string(id) +
                                " out of range");
    return static_cast<std::size_t>(id);
}

std::vector<Shape> Network::infer_shapes(const Shape& input_shape) const {
    std::vector<Shape> shapes;
    shapes.reserve(nodes_.size());
    std::vector<Shape> in_shapes;
    for (const auto& node : nodes_) {
        in_shapes.clear();
        for (int in : node.inputs)
            in_shapes.push_back(in == kInputId ? input_shape
                                               : shapes[static_cast<std::size_t>(in)]);
        try {
            shapes.push_back(node.layer->output_shape(in_shapes));
        } catch (const std::exception& e) {
            throw std::invalid_argument("Network: shape error at node '" +
                                        node.name + "': " + e.what());
        }
    }
    return shapes;
}

void Network::gather_inputs(int id, const Tensor& input,
                            const std::vector<Tensor>& outputs,
                            std::vector<const Tensor*>& ptrs) const {
    const auto& node = nodes_[static_cast<std::size_t>(id)];
    ptrs.clear();
    for (int in : node.inputs)
        ptrs.push_back(in == kInputId ? &input
                                      : &outputs[static_cast<std::size_t>(in)]);
}

Tensor Network::forward(const Tensor& input) const {
    std::vector<Tensor> acts;
    forward_all(input, acts);
    if (acts.empty()) return input;
    return std::move(acts.back());
}

void Network::forward_all(const Tensor& input,
                          std::vector<Tensor>& activations) const {
    activations.resize(nodes_.size());
    std::vector<const Tensor*> ptrs;
    for (int id = 0; id < node_count(); ++id) {
        gather_inputs(id, input, activations, ptrs);
        nodes_[static_cast<std::size_t>(id)].layer->forward(
            ptrs, activations[static_cast<std::size_t>(id)]);
        if (node_hook_) node_hook_(id, activations[static_cast<std::size_t>(id)]);
    }
}

const Tensor& Network::forward_from(int first_dirty, const Tensor& input,
                                    const std::vector<Tensor>& golden,
                                    std::vector<Tensor>& scratch) const {
    if (golden.size() != nodes_.size())
        throw std::invalid_argument("Network::forward_from: golden cache size "
                                    "mismatch");
    if (nodes_.empty()) return input;
    if (first_dirty < 0) first_dirty = 0;
    if (first_dirty >= node_count()) return golden.back();

    scratch.resize(nodes_.size());
    std::vector<const Tensor*> ptrs;
    for (int id = first_dirty; id < node_count(); ++id) {
        const auto& node = nodes_[static_cast<std::size_t>(id)];
        ptrs.clear();
        for (int in : node.inputs) {
            if (in == kInputId)
                ptrs.push_back(&input);
            else if (in < first_dirty)
                ptrs.push_back(&golden[static_cast<std::size_t>(in)]);
            else
                ptrs.push_back(&scratch[static_cast<std::size_t>(in)]);
        }
        node.layer->forward(ptrs, scratch[static_cast<std::size_t>(id)]);
        if (node_hook_) node_hook_(id, scratch[static_cast<std::size_t>(id)]);
    }
    return scratch.back();
}

Network Network::clone() const {
    Network copy;
    copy.nodes_.reserve(nodes_.size());
    for (const auto& node : nodes_)
        copy.nodes_.push_back(
            Node{node.name, node.layer->clone(), node.inputs});
    return copy;
}

std::vector<Network::WeightLayerRef> Network::weight_layers() {
    std::vector<WeightLayerRef> refs;
    for (int id = 0; id < node_count(); ++id) {
        auto& node = nodes_[static_cast<std::size_t>(id)];
        if (node.layer->has_injectable_weight())
            refs.push_back(WeightLayerRef{id, node.name,
                                          node.layer->injectable_weight()});
    }
    return refs;
}

std::uint64_t Network::total_weight_count() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_)
        if (node.layer->has_injectable_weight())
            total += node.layer->injectable_weight()->numel();
    return total;
}

std::vector<ParamRef> Network::params() {
    std::vector<ParamRef> all;
    for (auto& node : nodes_)
        for (auto& p : node.layer->params()) all.push_back(p);
    return all;
}

void Network::zero_grad() {
    for (auto& node : nodes_) node.layer->zero_grad();
}

void Network::backward(const Tensor& input,
                       const std::vector<Tensor>& activations,
                       const Tensor& grad_output) {
    if (activations.size() != nodes_.size())
        throw std::invalid_argument("Network::backward: activation cache size "
                                    "mismatch");
    if (nodes_.empty()) return;

    std::vector<std::optional<Tensor>> grads(nodes_.size());
    grads.back() = grad_output;

    std::vector<const Tensor*> ptrs;
    std::vector<Tensor> grad_inputs;
    for (int id = node_count() - 1; id >= 0; --id) {
        auto& slot = grads[static_cast<std::size_t>(id)];
        if (!slot.has_value()) continue;  // node not on any gradient path
        auto& node = nodes_[static_cast<std::size_t>(id)];
        gather_inputs(id, input, activations, ptrs);
        grad_inputs.clear();
        node.layer->backward(ptrs, activations[static_cast<std::size_t>(id)],
                             *slot, grad_inputs);
        if (grad_inputs.size() != node.inputs.size())
            throw std::logic_error("Network::backward: layer '" + node.name +
                                   "' returned wrong grad_inputs count");
        for (std::size_t k = 0; k < node.inputs.size(); ++k) {
            const int producer = node.inputs[k];
            if (producer == kInputId) continue;  // input gradient unused
            auto& dst = grads[static_cast<std::size_t>(producer)];
            if (!dst.has_value())
                dst = std::move(grad_inputs[k]);
            else
                dst->add_(grad_inputs[k]);
        }
        slot.reset();  // free as soon as consumed
    }
}

int argmax_row(const Tensor& logits, std::int64_t n) {
    const std::int64_t F = logits.shape()[1];
    const float* row = logits.data() + static_cast<std::size_t>(n * F);
    int best = 0;
    for (std::int64_t f = 1; f < F; ++f)
        if (row[f] > row[best]) best = static_cast<int>(f);
    return best;
}

}  // namespace statfi::nn

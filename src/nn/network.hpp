#pragma once
// Network: a DAG of layers executed in topological order.
//
// Construction order IS topological order: add() only accepts inputs with
// smaller node ids (or kInputId for the network input), so no separate
// sorting/cycle detection is needed and "recompute nodes >= k" is a correct
// downstream re-execution set.
//
// Two execution modes matter for fault injection:
//  * forward_all(): computes and keeps every node output (the golden
//    activation cache for a batch of images);
//  * forward_from(k): recomputes only nodes >= k, reading the golden cache
//    for anything older — a permanent fault in node k's weights cannot
//    change nodes < k, which is what makes exhaustive campaigns tractable.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace statfi::nn {

class Network {
public:
    /// Pseudo node id denoting the network's input tensor.
    static constexpr int kInputId = -1;

    Network() = default;
    Network(Network&&) noexcept = default;
    Network& operator=(Network&&) noexcept = default;
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Append a node consuming the given producer ids. Returns its node id.
    /// @throws std::invalid_argument if any input id >= the new node's id.
    int add(std::string name, std::unique_ptr<Layer> layer,
            std::vector<int> inputs);

    /// Append a node consuming the previously added node (or the network
    /// input when the graph is empty).
    int add(std::string name, std::unique_ptr<Layer> layer);

    [[nodiscard]] int node_count() const noexcept {
        return static_cast<int>(nodes_.size());
    }
    [[nodiscard]] Layer& layer(int id) { return *nodes_.at(checked(id)).layer; }
    [[nodiscard]] const Layer& layer(int id) const {
        return *nodes_.at(checked(id)).layer;
    }
    [[nodiscard]] const std::string& node_name(int id) const {
        return nodes_.at(checked(id)).name;
    }
    [[nodiscard]] const std::vector<int>& node_inputs(int id) const {
        return nodes_.at(checked(id)).inputs;
    }

    /// Shape-check the whole graph for a given input shape; returns one
    /// output shape per node. Throws with the offending node's name.
    [[nodiscard]] std::vector<Shape> infer_shapes(const Shape& input_shape) const;

    /// Full forward pass; returns the last node's output.
    [[nodiscard]] Tensor forward(const Tensor& input) const;

    /// Full forward pass keeping every node output in @p activations
    /// (resized to node_count()).
    void forward_all(const Tensor& input, std::vector<Tensor>& activations) const;

    /// Partial re-execution: recompute nodes with id >= @p first_dirty using
    /// @p golden for older inputs; recomputed outputs land in @p scratch
    /// (resized to node_count(); entries < first_dirty are untouched).
    /// Returns the final output (scratch.back(), or golden.back() when
    /// first_dirty is past the end).
    const Tensor& forward_from(int first_dirty, const Tensor& input,
                               const std::vector<Tensor>& golden,
                               std::vector<Tensor>& scratch) const;

    /// Fault-batched ensemble forward: identical contract to forward_from(),
    /// but @p input / @p golden / @p scratch carry F stacked lanes in the
    /// batch dimension — one lane per fault sharing the same first_dirty
    /// node. Every layer computes batch rows independently (convs, linear,
    /// BN in inference mode, activations, pooling), so running F lanes in
    /// one pass is bit-identical to F single-lane forward_from() calls while
    /// paying the per-node dispatch, im2col-setup, and cache-refill costs
    /// once. Callers (core/classification_core.cpp) build the lane-stacked
    /// golden frontier; this wrapper exists to document the contract and to
    /// give the ensemble path a greppable name.
    const Tensor& forward_ensemble(int first_dirty, const Tensor& input,
                                   const std::vector<Tensor>& golden,
                                   std::vector<Tensor>& scratch) const {
        return forward_from(first_dirty, input, golden, scratch);
    }

    /// Deep copy (layers cloned). Used to give campaign workers private
    /// weight storage. The node hook is not copied.
    [[nodiscard]] Network clone() const;

    /// Optional hook run on each node's output right after it is computed,
    /// in both forward_all() and forward_from() (mitigation clipping). The
    /// hook is part of the deployed network: golden passes see it too.
    using NodeHook = std::function<void(int node_id, Tensor& output)>;
    void set_node_hook(NodeHook hook) { node_hook_ = std::move(hook); }

    // -- fault-injection surface ------------------------------------------

    /// One entry per layer owning an injectable weight tensor, in graph
    /// order. This ordering defines the paper's "layer index" (ResNet-20:
    /// 0 = first conv, 19 = FC).
    struct WeightLayerRef {
        int node_id = 0;
        std::string name;
        Tensor* weight = nullptr;
    };
    [[nodiscard]] std::vector<WeightLayerRef> weight_layers();

    /// Total injectable weight count (sum over weight_layers()).
    [[nodiscard]] std::uint64_t total_weight_count() const;

    // -- training surface ---------------------------------------------------

    [[nodiscard]] std::vector<ParamRef> params();
    void zero_grad();

    /// Reverse-mode pass: with @p activations from forward_all() on
    /// @p input, propagate @p grad_output (gradient w.r.t. the last node)
    /// and accumulate parameter gradients. Every layer on a gradient path
    /// must support backward().
    void backward(const Tensor& input, const std::vector<Tensor>& activations,
                  const Tensor& grad_output);

private:
    struct Node {
        std::string name;
        std::unique_ptr<Layer> layer;
        std::vector<int> inputs;
    };

    [[nodiscard]] std::size_t checked(int id) const;
    void gather_inputs(int id, const Tensor& input,
                       const std::vector<Tensor>& outputs,
                       std::vector<const Tensor*>& ptrs) const;

    std::vector<Node> nodes_;
    NodeHook node_hook_;
};

/// Index of the maximum logit in row @p n of a (N, F) tensor.
int argmax_row(const Tensor& logits, std::int64_t n);

}  // namespace statfi::nn

#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

#include "nn/conv.hpp"

namespace statfi::nn {

namespace {
const Shape& require_nchw(std::span<const Shape> inputs, const char* who) {
    if (inputs.size() != 1)
        throw std::invalid_argument(std::string(who) + ": expects 1 input");
    if (inputs[0].rank() != 4)
        throw std::invalid_argument(std::string(who) + ": expects NCHW input");
    return inputs[0];
}
}  // namespace

// -------------------------------------------------------------- AvgPool2d --

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    if (kernel <= 0 || stride_ <= 0)
        throw std::invalid_argument("AvgPool2d: invalid geometry");
}

Shape AvgPool2d::output_shape(std::span<const Shape> inputs) const {
    const auto& in = require_nchw(inputs, "AvgPool2d");
    return Shape{in[0], in[1], conv_out_size(in[2], kernel_, stride_, 0),
                 conv_out_size(in[3], kernel_, stride_, 0)};
}

void AvgPool2d::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape os = output_shape(std::array{x.shape()});
    ensure_shape(out, os);
    const auto& d = x.shape().dims();
    const std::int64_t NC = d[0] * d[1], H = d[2], W = d[3];
    const std::int64_t OH = os[2], OW = os[3];
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (std::int64_t p = 0; p < NC; ++p) {
        const float* src = x.data() + static_cast<std::size_t>(p * H * W);
        float* dst = out.data() + static_cast<std::size_t>(p * OH * OW);
        for (std::int64_t y = 0; y < OH; ++y)
            for (std::int64_t xx = 0; xx < OW; ++xx) {
                float acc = 0.0f;
                for (std::int64_t kh = 0; kh < kernel_; ++kh)
                    for (std::int64_t kw = 0; kw < kernel_; ++kw)
                        acc += src[(y * stride_ + kh) * W + (xx * stride_ + kw)];
                dst[y * OW + xx] = acc * inv;
            }
    }
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
    return std::make_unique<AvgPool2d>(*this);
}

void AvgPool2d::backward(std::span<const Tensor* const> inputs, const Tensor&,
                         const Tensor& grad_out,
                         std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    grad_inputs[0].zero();
    const auto& d = x.shape().dims();
    const std::int64_t NC = d[0] * d[1], H = d[2], W = d[3];
    const std::int64_t OH = grad_out.shape()[2], OW = grad_out.shape()[3];
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (std::int64_t p = 0; p < NC; ++p) {
        const float* go = grad_out.data() + static_cast<std::size_t>(p * OH * OW);
        float* gi = grad_inputs[0].data() + static_cast<std::size_t>(p * H * W);
        for (std::int64_t y = 0; y < OH; ++y)
            for (std::int64_t xx = 0; xx < OW; ++xx) {
                const float g = go[y * OW + xx] * inv;
                for (std::int64_t kh = 0; kh < kernel_; ++kh)
                    for (std::int64_t kw = 0; kw < kernel_; ++kw)
                        gi[(y * stride_ + kh) * W + (xx * stride_ + kw)] += g;
            }
    }
}

// -------------------------------------------------------------- MaxPool2d --

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    if (kernel <= 0 || stride_ <= 0)
        throw std::invalid_argument("MaxPool2d: invalid geometry");
}

Shape MaxPool2d::output_shape(std::span<const Shape> inputs) const {
    const auto& in = require_nchw(inputs, "MaxPool2d");
    return Shape{in[0], in[1], conv_out_size(in[2], kernel_, stride_, 0),
                 conv_out_size(in[3], kernel_, stride_, 0)};
}

void MaxPool2d::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape os = output_shape(std::array{x.shape()});
    ensure_shape(out, os);
    const auto& d = x.shape().dims();
    const std::int64_t NC = d[0] * d[1], H = d[2], W = d[3];
    const std::int64_t OH = os[2], OW = os[3];
    for (std::int64_t p = 0; p < NC; ++p) {
        const float* src = x.data() + static_cast<std::size_t>(p * H * W);
        float* dst = out.data() + static_cast<std::size_t>(p * OH * OW);
        for (std::int64_t y = 0; y < OH; ++y)
            for (std::int64_t xx = 0; xx < OW; ++xx) {
                float best = -std::numeric_limits<float>::infinity();
                for (std::int64_t kh = 0; kh < kernel_; ++kh)
                    for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                        const float v =
                            src[(y * stride_ + kh) * W + (xx * stride_ + kw)];
                        if (v > best) best = v;
                    }
                dst[y * OW + xx] = best;
            }
    }
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
    return std::make_unique<MaxPool2d>(*this);
}

void MaxPool2d::backward(std::span<const Tensor* const> inputs,
                         const Tensor& output, const Tensor& grad_out,
                         std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    grad_inputs[0].zero();
    const auto& d = x.shape().dims();
    const std::int64_t NC = d[0] * d[1], H = d[2], W = d[3];
    const std::int64_t OH = output.shape()[2], OW = output.shape()[3];
    for (std::int64_t p = 0; p < NC; ++p) {
        const float* src = x.data() + static_cast<std::size_t>(p * H * W);
        const float* o = output.data() + static_cast<std::size_t>(p * OH * OW);
        const float* go = grad_out.data() + static_cast<std::size_t>(p * OH * OW);
        float* gi = grad_inputs[0].data() + static_cast<std::size_t>(p * H * W);
        for (std::int64_t y = 0; y < OH; ++y)
            for (std::int64_t xx = 0; xx < OW; ++xx) {
                const float target = o[y * OW + xx];
                const float g = go[y * OW + xx];
                // Route gradient to the first matching argmax element.
                bool routed = false;
                for (std::int64_t kh = 0; kh < kernel_ && !routed; ++kh)
                    for (std::int64_t kw = 0; kw < kernel_ && !routed; ++kw) {
                        const std::int64_t idx =
                            (y * stride_ + kh) * W + (xx * stride_ + kw);
                        if (src[idx] == target) {
                            gi[idx] += g;
                            routed = true;
                        }
                    }
            }
    }
}

// ---------------------------------------------------------- GlobalAvgPool --

Shape GlobalAvgPool::output_shape(std::span<const Shape> inputs) const {
    const auto& in = require_nchw(inputs, "GlobalAvgPool");
    return Shape{in[0], in[1]};
}

void GlobalAvgPool::forward(std::span<const Tensor* const> inputs,
                            Tensor& out) const {
    const Tensor& x = *inputs[0];
    const auto& d = x.shape().dims();
    ensure_shape(out, Shape{d[0], d[1]});
    const std::int64_t NC = d[0] * d[1];
    const std::size_t plane = static_cast<std::size_t>(d[2] * d[3]);
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::int64_t p = 0; p < NC; ++p) {
        const float* src = x.data() + static_cast<std::size_t>(p) * plane;
        float acc = 0.0f;
        for (std::size_t i = 0; i < plane; ++i) acc += src[i];
        out[static_cast<std::size_t>(p)] = acc * inv;
    }
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
    return std::make_unique<GlobalAvgPool>(*this);
}

void GlobalAvgPool::backward(std::span<const Tensor* const> inputs, const Tensor&,
                             const Tensor& grad_out,
                             std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    const auto& d = x.shape().dims();
    const std::int64_t NC = d[0] * d[1];
    const std::size_t plane = static_cast<std::size_t>(d[2] * d[3]);
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::int64_t p = 0; p < NC; ++p) {
        const float g = grad_out[static_cast<std::size_t>(p)] * inv;
        float* gi = grad_inputs[0].data() + static_cast<std::size_t>(p) * plane;
        for (std::size_t i = 0; i < plane; ++i) gi[i] = g;
    }
}

// ---------------------------------------------------------------- Flatten --

Shape Flatten::output_shape(std::span<const Shape> inputs) const {
    if (inputs.size() != 1)
        throw std::invalid_argument("Flatten: expects 1 input");
    const auto& in = inputs[0];
    if (in.rank() < 1) throw std::invalid_argument("Flatten: rank-0 input");
    std::int64_t rest = 1;
    for (std::size_t i = 1; i < in.rank(); ++i) rest *= in[i];
    return Shape{in[0], rest};
}

void Flatten::forward(std::span<const Tensor* const> inputs, Tensor& out) const {
    const Tensor& x = *inputs[0];
    const Shape os = output_shape(std::array{x.shape()});
    ensure_shape(out, os);
    std::copy(x.data(), x.data() + x.numel(), out.data());
}

std::unique_ptr<Layer> Flatten::clone() const {
    return std::make_unique<Flatten>(*this);
}

void Flatten::backward(std::span<const Tensor* const> inputs, const Tensor&,
                       const Tensor& grad_out, std::vector<Tensor>& grad_inputs) {
    const Tensor& x = *inputs[0];
    grad_inputs.resize(1);
    ensure_shape(grad_inputs[0], x.shape());
    std::copy(grad_out.data(), grad_out.data() + grad_out.numel(),
              grad_inputs[0].data());
}

}  // namespace statfi::nn

#pragma once
// Spatial pooling and shape plumbing: average / max pooling, global average
// pooling (the classifier head of both CNNs), and Flatten.

#include <cstdint>

#include "nn/layer.hpp"

namespace statfi::nn {

class AvgPool2d final : public Layer {
public:
    explicit AvgPool2d(std::int64_t kernel, std::int64_t stride = 0);

    [[nodiscard]] std::string kind() const override { return "avgpool2d"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;

    [[nodiscard]] std::int64_t kernel() const { return kernel_; }
    [[nodiscard]] std::int64_t stride() const { return stride_; }

private:
    std::int64_t kernel_, stride_;
};

class MaxPool2d final : public Layer {
public:
    explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = 0);

    [[nodiscard]] std::string kind() const override { return "maxpool2d"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;

private:
    std::int64_t kernel_, stride_;
};

/// (N, C, H, W) -> (N, C): mean over the spatial plane.
class GlobalAvgPool final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "globalavgpool"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
};

/// (N, ...) -> (N, prod(...)).
class Flatten final : public Layer {
public:
    [[nodiscard]] std::string kind() const override { return "flatten"; }
    [[nodiscard]] Shape output_shape(std::span<const Shape> inputs) const override;
    void forward(std::span<const Tensor* const> inputs, Tensor& out) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;

    [[nodiscard]] bool supports_backward() const override { return true; }
    void backward(std::span<const Tensor* const> inputs, const Tensor& output,
                  const Tensor& grad_out, std::vector<Tensor>& grad_inputs) override;
};

}  // namespace statfi::nn

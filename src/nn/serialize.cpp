#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"

namespace statfi::nn {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'I', 'W'};
// v2 appends a CRC32 trailer over everything after the version word and is
// written atomically (temp + rename); v1 files fail the version check and
// the caller (the testbed weight cache) retrains.
constexpr std::uint32_t kVersion = 2;

struct NamedParam {
    std::string key;
    Tensor* tensor;
};

std::vector<NamedParam> named_params(Network& net) {
    std::vector<NamedParam> out;
    for (int id = 0; id < net.node_count(); ++id) {
        auto ps = net.layer(id).params();
        for (std::size_t k = 0; k < ps.size(); ++k)
            out.push_back(
                NamedParam{net.node_name(id) + "#" + std::to_string(k),
                           ps[k].value});
    }
    return out;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error(std::string("load_parameters: truncated while "
                                             "reading ") +
                                 what);
    return v;
}

std::string hex32(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

}  // namespace

void save_parameters(Network& net, const std::string& path) {
    // Serialize the payload up front so its checksum can trail it; weight
    // files are a few MB at most.
    std::ostringstream payload(std::ios::binary);
    auto params = named_params(net);
    write_pod(payload, static_cast<std::uint64_t>(params.size()));
    for (const auto& p : params) {
        write_pod(payload, static_cast<std::uint32_t>(p.key.size()));
        payload.write(p.key.data(), static_cast<std::streamsize>(p.key.size()));
        const auto& dims = p.tensor->shape().dims();
        write_pod(payload, static_cast<std::uint32_t>(dims.size()));
        for (auto d : dims) write_pod(payload, static_cast<std::int64_t>(d));
        payload.write(
            reinterpret_cast<const char*>(p.tensor->data()),
            static_cast<std::streamsize>(p.tensor->numel() * sizeof(float)));
    }
    const std::string body = std::move(payload).str();

    io::write_file_atomic(path, [&](std::ostream& os) {
        os.write(kMagic, sizeof(kMagic));
        write_pod(os, kVersion);
        os.write(body.data(), static_cast<std::streamsize>(body.size()));
        write_pod(os, io::crc32(body.data(), body.size()));
    });
}

void load_parameters(Network& net, const std::string& path) {
    std::string bytes;
    if (!io::read_file(path, bytes))
        throw std::runtime_error("load_parameters: cannot open " + path);
    constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(kVersion);
    constexpr std::size_t kTrailerSize = sizeof(std::uint32_t);
    if (bytes.size() < kHeaderSize + kTrailerSize)
        throw std::runtime_error("load_parameters: short file (" +
                                 std::to_string(bytes.size()) +
                                 " bytes, need at least " +
                                 std::to_string(kHeaderSize + kTrailerSize) +
                                 ") in " + path);
    if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error(
            "load_parameters: bad magic (want \"SFIW\") in " + path);
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
    if (version != kVersion)
        throw std::runtime_error("load_parameters: unsupported version " +
                                 std::to_string(version) + " (supported: " +
                                 std::to_string(kVersion) + ") in " + path);
    const char* body = bytes.data() + kHeaderSize;
    const std::size_t body_size = bytes.size() - kHeaderSize - kTrailerSize;
    std::uint32_t stored = 0;
    std::memcpy(&stored, body + body_size, sizeof(stored));
    const std::uint32_t computed = io::crc32(body, body_size);
    if (stored != computed)
        throw std::runtime_error("load_parameters: checksum mismatch (stored " +
                                 hex32(stored) + ", computed " +
                                 hex32(computed) + ") in " + path);

    std::istringstream is(std::string(body, body_size), std::ios::binary);
    auto params = named_params(net);
    const auto count = read_pod<std::uint64_t>(is, "parameter count");
    if (count != params.size())
        throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                                 std::to_string(count) + ", network " +
                                 std::to_string(params.size()) + ")");
    for (auto& p : params) {
        const auto name_len = read_pod<std::uint32_t>(is, "parameter name length");
        std::string key(name_len, '\0');
        is.read(key.data(), name_len);
        if (!is || key != p.key)
            throw std::runtime_error("load_parameters: parameter '" + p.key +
                                     "' mismatch (file has '" + key + "')");
        const auto rank = read_pod<std::uint32_t>(is, "tensor rank");
        std::vector<std::int64_t> dims(rank);
        for (auto& d : dims) d = read_pod<std::int64_t>(is, "tensor dims");
        if (!(Shape(dims) == p.tensor->shape()))
            throw std::runtime_error("load_parameters: shape mismatch for '" +
                                     p.key + "'");
        is.read(reinterpret_cast<char*>(p.tensor->data()),
                static_cast<std::streamsize>(p.tensor->numel() * sizeof(float)));
        if (!is)
            throw std::runtime_error(
                "load_parameters: truncated tensor data for '" + p.key + "'");
    }
}

}  // namespace statfi::nn

#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace statfi::nn {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'I', 'W'};
constexpr std::uint32_t kVersion = 1;

struct NamedParam {
    std::string key;
    Tensor* tensor;
};

std::vector<NamedParam> named_params(Network& net) {
    std::vector<NamedParam> out;
    for (int id = 0; id < net.node_count(); ++id) {
        auto ps = net.layer(id).params();
        for (std::size_t k = 0; k < ps.size(); ++k)
            out.push_back(
                NamedParam{net.node_name(id) + "#" + std::to_string(k),
                           ps[k].value});
    }
    return out;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is) throw std::runtime_error("serialize: truncated file");
    return v;
}

}  // namespace

void save_parameters(Network& net, const std::string& path) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
    os.write(kMagic, sizeof(kMagic));
    write_pod(os, kVersion);
    auto params = named_params(net);
    write_pod(os, static_cast<std::uint64_t>(params.size()));
    for (const auto& p : params) {
        write_pod(os, static_cast<std::uint32_t>(p.key.size()));
        os.write(p.key.data(), static_cast<std::streamsize>(p.key.size()));
        const auto& dims = p.tensor->shape().dims();
        write_pod(os, static_cast<std::uint32_t>(dims.size()));
        for (auto d : dims) write_pod(os, static_cast<std::int64_t>(d));
        os.write(reinterpret_cast<const char*>(p.tensor->data()),
                 static_cast<std::streamsize>(p.tensor->numel() * sizeof(float)));
    }
    if (!os) throw std::runtime_error("save_parameters: write failed for " + path);
}

void load_parameters(Network& net, const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::string_view(magic, 4) != std::string_view(kMagic, 4))
        throw std::runtime_error("load_parameters: bad magic in " + path);
    const auto version = read_pod<std::uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("load_parameters: unsupported version " +
                                 std::to_string(version));
    auto params = named_params(net);
    const auto count = read_pod<std::uint64_t>(is);
    if (count != params.size())
        throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                                 std::to_string(count) + ", network " +
                                 std::to_string(params.size()) + ")");
    for (auto& p : params) {
        const auto name_len = read_pod<std::uint32_t>(is);
        std::string key(name_len, '\0');
        is.read(key.data(), name_len);
        if (!is || key != p.key)
            throw std::runtime_error("load_parameters: parameter '" + p.key +
                                     "' mismatch (file has '" + key + "')");
        const auto rank = read_pod<std::uint32_t>(is);
        std::vector<std::int64_t> dims(rank);
        for (auto& d : dims) d = read_pod<std::int64_t>(is);
        if (!(Shape(dims) == p.tensor->shape()))
            throw std::runtime_error("load_parameters: shape mismatch for '" +
                                     p.key + "'");
        is.read(reinterpret_cast<char*>(p.tensor->data()),
                static_cast<std::streamsize>(p.tensor->numel() * sizeof(float)));
        if (!is) throw std::runtime_error("load_parameters: truncated data");
    }
}

}  // namespace statfi::nn

#pragma once
// Binary (de)serialization of network parameters. Format "SFIW" v1:
//   magic "SFIW" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u32 rank | i64 dims[rank] |
//              f32 data[numel]
// Little-endian, matching every platform we target. Used to persist the
// trained MicroNet so campaign benches don't retrain.

#include <string>

#include "nn/network.hpp"

namespace statfi::nn {

/// Save every trainable parameter (keyed "<node_name>#<param_index>").
/// @throws std::runtime_error on I/O failure.
void save_parameters(Network& net, const std::string& path);

/// Load parameters written by save_parameters into an identically-built
/// network. @throws std::runtime_error on I/O failure or structure mismatch.
void load_parameters(Network& net, const std::string& path);

}  // namespace statfi::nn

#include "nn/thread_pool.hpp"

#include <algorithm>

namespace statfi::nn {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0)
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        queue_.push(std::move(task));
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    const std::size_t workers = size();
    if (workers <= 1 || count < 2) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    const std::size_t chunks = std::min(workers, count);
    const std::size_t per_chunk = (count + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = c * per_chunk;
        const std::size_t hi = std::min(lo + per_chunk, count);
        if (lo >= hi) break;
        submit([lo, hi, &fn] {
            for (std::size_t i = lo; i < hi; ++i) fn(i);
        });
    }
    wait_idle();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop();
            ++active_;
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
        }
    }
}

}  // namespace statfi::nn

#pragma once
// Small fixed-size thread pool with a parallel_for convenience. Campaign
// executors use it to spread fault batches across cores; on single-core
// hosts it degrades gracefully to inline execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace statfi::nn {

class ThreadPool {
public:
    /// @param threads 0 = hardware_concurrency (at least 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; tasks must not throw (std::terminate otherwise).
    void submit(std::function<void()> task);

    /// Block until every submitted task has completed.
    void wait_idle();

    /// Run fn(i) for i in [0, count), partitioned into contiguous chunks
    /// across the pool (runs inline when the pool has one thread or count
    /// is small). Blocks until done.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

}  // namespace statfi::nn

#include "nn/trainer.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/sampling.hpp"

namespace statfi::nn {

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels,
                             Tensor& grad_logits) {
    const std::int64_t N = logits.shape()[0], F = logits.shape()[1];
    if (labels.size() != static_cast<std::size_t>(N))
        throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
    ensure_shape(grad_logits, logits.shape());
    double loss = 0.0;
    const double inv_n = 1.0 / static_cast<double>(N);
    for (std::int64_t n = 0; n < N; ++n) {
        const float* row = logits.data() + static_cast<std::size_t>(n * F);
        float* grow = grad_logits.data() + static_cast<std::size_t>(n * F);
        float mx = row[0];
        for (std::int64_t f = 1; f < F; ++f) mx = std::max(mx, row[f]);
        double denom = 0.0;
        for (std::int64_t f = 0; f < F; ++f)
            denom += std::exp(static_cast<double>(row[f] - mx));
        const int y = labels[static_cast<std::size_t>(n)];
        if (y < 0 || y >= F)
            throw std::invalid_argument("softmax_cross_entropy: label out of range");
        loss -= (static_cast<double>(row[y] - mx) - std::log(denom)) * inv_n;
        for (std::int64_t f = 0; f < F; ++f) {
            const double p = std::exp(static_cast<double>(row[f] - mx)) / denom;
            grow[f] = static_cast<float>((p - (f == y ? 1.0 : 0.0)) * inv_n);
        }
    }
    return loss;
}

double top1_accuracy(const Tensor& logits, const std::vector<int>& labels) {
    const std::int64_t N = logits.shape()[0];
    if (labels.size() != static_cast<std::size_t>(N))
        throw std::invalid_argument("top1_accuracy: label count mismatch");
    if (N == 0) return 0.0;
    int correct = 0;
    for (std::int64_t n = 0; n < N; ++n)
        if (argmax_row(logits, n) == labels[static_cast<std::size_t>(n)]) ++correct;
    return static_cast<double>(correct) / static_cast<double>(N);
}

SgdOptimizer::SgdOptimizer(Network& net, SgdConfig config)
    : net_(&net), config_(config) {
    for (auto& p : net.params()) velocity_.emplace_back(p.value->shape());
}

void SgdOptimizer::step(double batch_divisor) {
    auto params = net_->params();
    if (params.size() != velocity_.size())
        throw std::logic_error("SgdOptimizer: parameter set changed");
    const auto lr = static_cast<float>(config_.learning_rate);
    const auto mu = static_cast<float>(config_.momentum);
    const auto wd = static_cast<float>(config_.weight_decay);
    const auto inv_div = static_cast<float>(1.0 / batch_divisor);
    for (std::size_t k = 0; k < params.size(); ++k) {
        Tensor& w = *params[k].value;
        Tensor& g = *params[k].grad;
        Tensor& v = velocity_[k];
        for (std::size_t i = 0; i < w.numel(); ++i) {
            const float grad = g[i] * inv_div + wd * w[i];
            v[i] = mu * v[i] + grad;
            w[i] -= lr * v[i];
        }
    }
}

TrainReport train_classifier(Network& net, const Tensor& images,
                             const std::vector<int>& labels, int epochs,
                             std::int64_t batch_size, SgdConfig config,
                             stats::Rng& rng) {
    const auto& d = images.shape().dims();
    if (d.size() != 4)
        throw std::invalid_argument("train_classifier: expects NCHW images");
    const std::int64_t total = d[0];
    if (labels.size() != static_cast<std::size_t>(total))
        throw std::invalid_argument("train_classifier: label count mismatch");
    if (batch_size <= 0 || epochs <= 0)
        throw std::invalid_argument("train_classifier: bad epochs/batch_size");

    const std::size_t image_size = static_cast<std::size_t>(d[1] * d[2] * d[3]);
    SgdOptimizer opt(net, config);
    const double lr0 = config.learning_rate;

    std::vector<std::uint64_t> order(static_cast<std::size_t>(total));
    std::iota(order.begin(), order.end(), 0);

    TrainReport report;
    std::vector<Tensor> acts;
    Tensor batch;
    Tensor grad_logits;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        stats::shuffle(order, rng);
        // Cosine learning-rate decay over the epoch budget.
        const double progress = static_cast<double>(epoch) / epochs;
        opt.set_learning_rate(lr0 * 0.5 * (1.0 + std::cos(progress * 3.14159265)));

        double loss_sum = 0.0, acc_sum = 0.0;
        int batches = 0;
        for (std::int64_t start = 0; start < total; start += batch_size) {
            const std::int64_t bs = std::min(batch_size, total - start);
            ensure_shape(batch, Shape{bs, d[1], d[2], d[3]});
            std::vector<int> batch_labels(static_cast<std::size_t>(bs));
            for (std::int64_t i = 0; i < bs; ++i) {
                const auto src = order[static_cast<std::size_t>(start + i)];
                std::copy(images.data() + src * image_size,
                          images.data() + (src + 1) * image_size,
                          batch.data() + static_cast<std::size_t>(i) * image_size);
                batch_labels[static_cast<std::size_t>(i)] =
                    labels[static_cast<std::size_t>(src)];
            }
            net.zero_grad();
            net.forward_all(batch, acts);
            const Tensor& logits = acts.back();
            loss_sum += softmax_cross_entropy(logits, batch_labels, grad_logits);
            acc_sum += top1_accuracy(logits, batch_labels);
            net.backward(batch, acts, grad_logits);
            opt.step();
            ++batches;
        }
        report.epochs = epoch + 1;
        report.final_train_loss = loss_sum / std::max(batches, 1);
        report.final_train_accuracy = acc_sum / std::max(batches, 1);
    }
    return report;
}

}  // namespace statfi::nn

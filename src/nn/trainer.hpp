#pragma once
// Minimal SGD training loop: enough to train the validation-scale MicroNet
// to a functioning classifier, so criticality campaigns measure real
// mispredictions rather than noise. Not a general training framework.

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "stats/rng.hpp"

namespace statfi::nn {

/// Softmax cross-entropy over (N, F) logits with integer labels.
/// Returns mean loss; fills @p grad_logits (same shape) with d(mean loss)/d(logits).
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels,
                             Tensor& grad_logits);

/// Top-1 accuracy of (N, F) logits against labels, in [0, 1].
double top1_accuracy(const Tensor& logits, const std::vector<int>& labels);

struct SgdConfig {
    double learning_rate = 0.05;
    double momentum = 0.9;
    double weight_decay = 1e-4;
};

/// SGD with classical momentum and decoupled-from-nothing L2 weight decay.
class SgdOptimizer {
public:
    SgdOptimizer(Network& net, SgdConfig config);

    /// Apply one update from the currently accumulated gradients, scaled by
    /// 1/batch_divisor (pass the batch count if gradients are summed over
    /// batches; the built-in loss already averages, so 1.0 is typical).
    void step(double batch_divisor = 1.0);

    void set_learning_rate(double lr) noexcept { config_.learning_rate = lr; }
    [[nodiscard]] double learning_rate() const noexcept {
        return config_.learning_rate;
    }

private:
    Network* net_;
    SgdConfig config_;
    std::vector<Tensor> velocity_;  // one per parameter
};

struct TrainReport {
    int epochs = 0;
    double final_train_loss = 0.0;
    double final_train_accuracy = 0.0;
};

/// Train @p net on (images, labels) with shuffled mini-batches for
/// @p epochs; cosine-decays the learning rate. The network's last node must
/// produce (N, F) logits and every layer must support backward().
TrainReport train_classifier(Network& net, const Tensor& images,
                             const std::vector<int>& labels, int epochs,
                             std::int64_t batch_size, SgdConfig config,
                             stats::Rng& rng);

}  // namespace statfi::nn

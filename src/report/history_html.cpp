#include "report/history_html.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace statfi::report {

namespace {

std::string html_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string fmt_g(double v, int sig = 4) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*g", sig, v);
    return buf;
}

std::string fmt_seconds(double s) {
    if (s >= 3600.0) return fmt_g(s / 3600.0, 3) + " h";
    if (s >= 60.0) return fmt_g(s / 60.0, 3) + " min";
    if (s >= 1.0) return fmt_g(s, 3) + " s";
    return fmt_g(s * 1e3, 3) + " ms";
}

/// One sparkline row: series name, polyline over the shared time axis,
/// first/last values as text (the numbers, not just the mark).
void render_row(std::ostringstream& out, const std::vector<double>& seconds,
                const HistorySeries& s) {
    const int w = 560, h = 54, pad_l = 150, pad_r = 90, pad_t = 10,
              pad_b = 10;
    double lo = s.values.front(), hi = s.values.front();
    for (const double v : s.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    const double t0 = seconds.front();
    const double t_span =
        seconds.back() > t0 ? seconds.back() - t0 : 1.0;
    const auto X = [&](double t) {
        return pad_l + (t - t0) / t_span * (w - pad_l - pad_r);
    };
    const auto Y = [&](double v) {
        return pad_t + (1.0 - (v - lo) / span) * (h - pad_t - pad_b);
    };
    out << "<svg width=\"" << w << "\" height=\"" << h
        << "\" role=\"img\" aria-label=\"" << html_escape(s.name)
        << " over time\">\n<text x=\"" << pad_l - 8 << "\" y=\"" << h / 2 + 4
        << "\" text-anchor=\"end\">" << html_escape(s.name) << "</text>\n"
        << "<polyline fill=\"none\" stroke=\"var(--accent)\" "
           "stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < seconds.size(); ++i)
        out << fmt_g(X(seconds[i])) << "," << fmt_g(Y(s.values[i])) << " ";
    out << "\"/>\n<text class=\"v\" x=\"" << w - pad_r + 6 << "\" y=\""
        << fmt_g(Y(s.values.back()) + 4) << "\">" << fmt_g(s.values.back())
        << "</text>\n</svg>\n";
}

}  // namespace

std::string render_history_html(const std::vector<double>& seconds,
                                const std::vector<HistorySeries>& series,
                                const std::string& title) {
    for (const HistorySeries& s : series)
        if (s.values.size() != seconds.size())
            throw std::invalid_argument(
                "history series '" + s.name + "' has " +
                std::to_string(s.values.size()) + " values for " +
                std::to_string(seconds.size()) + " samples");

    std::ostringstream out;
    out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        << "<meta charset=\"utf-8\">\n"
        << "<meta name=\"viewport\" content=\"width=device-width, "
           "initial-scale=1\">\n"
        << "<meta name=\"generator\" content=\"statfi report\">\n"
        << "<meta name=\"statfi-history-samples\" content=\""
        << seconds.size() << "\">\n"
        << "<title>" << html_escape(title) << "</title>\n"
        << "<style>\n"
           ":root{--bg:#fcfcfb;--card:#ffffff;--ink:#1a1a19;"
           "--ink2:#52514e;--ink3:#898781;--grid:#e3e1dc;--accent:#1f56a0;}"
           "\n"
           "@media (prefers-color-scheme:dark){:root{--bg:#1a1a19;"
           "--card:#232322;--ink:#f4f3f1;--ink2:#b9b7b1;--ink3:#898781;"
           "--grid:#3a3935;--accent:#7faae4;}}\n"
           "body{background:var(--bg);color:var(--ink);margin:0;"
           "font:14px/1.5 system-ui,sans-serif;}\n"
           "main{max-width:760px;margin:0 auto;padding:24px 20px 60px;}\n"
           "h1{font-size:22px;margin:0 0 4px;}\n"
           ".sub{color:var(--ink2);margin:0 0 18px;}\n"
           ".card{background:var(--card);border:1px solid var(--grid);"
           "border-radius:8px;padding:14px;overflow-x:auto;}\n"
           ".note{color:var(--ink3);font-size:12px;margin:6px 0 0;}\n"
           "svg text{fill:var(--ink2);font:11px system-ui,sans-serif;}\n"
           "svg text.v{fill:var(--ink);font-variant-numeric:tabular-nums;}\n"
           "footer{color:var(--ink3);font-size:12px;margin-top:40px;}\n"
           "</style>\n</head>\n<body>\n<main>\n";

    out << "<h1>" << html_escape(title) << "</h1>\n<p class=\"sub\">"
        << seconds.size() << " sample(s)";
    if (!seconds.empty())
        out << " over " << html_escape(fmt_seconds(
                   seconds.back() - seconds.front()));
    out << "</p>\n<div class=\"card\">\n";
    if (seconds.empty()) {
        out << "<p class=\"note\">no samples recorded yet.</p>\n";
    } else {
        for (const HistorySeries& s : series) render_row(out, seconds, s);
        out << "<p class=\"note\">One row per counter, sampled every ~200 ms "
               "while the campaign ran; the number on the right is the "
               "final value.</p>\n";
    }
    out << "</div>\n<footer>statfi report · metrics.tsf · " << series.size()
        << " series</footer>\n</main>\n</body>\n</html>\n";
    return out.str();
}

}  // namespace statfi::report

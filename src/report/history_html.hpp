#pragma once
// Sparkline view of a campaign's durable metrics history (fleet plane,
// DESIGN.md decision 18): one compact SVG row per series, rendered from the
// plain (seconds, values) samples a metrics.tsf ring holds.
//
// Lives in the report library but takes plain vectors — report cannot link
// telemetry (telemetry links report), so the CLI converts a loaded
// HistoryRing into this view. Output follows the observatory's dataviz
// rules: inline CSS + inline SVG only, no scripts, no external references;
// marks are thin polylines with the first/last numbers repeated as text so
// identity never relies on the mark alone.

#include <string>
#include <vector>

namespace statfi::report {

/// One metrics-history series: a name plus one value per sample row.
struct HistorySeries {
    std::string name;
    std::vector<double> values;  ///< same length as the shared seconds axis
};

/// Render a self-contained HTML document with one sparkline row per series
/// over the shared @p seconds axis. Carries the machine-readable marker
/// `<meta name="statfi-history-samples" content="N">` for CI smoke checks.
/// Series whose length disagrees with @p seconds throw std::invalid_argument.
std::string render_history_html(const std::vector<double>& seconds,
                                const std::vector<HistorySeries>& series,
                                const std::string& title);

}  // namespace statfi::report

#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace statfi::report {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c) & 0xFF);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {}

void JsonWriter::newline(std::size_t depth) {
    if (indent_ <= 0) return;
    out_ << '\n';
    for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_); ++i)
        out_ << ' ';
}

void JsonWriter::begin_value() {
    if (done_) throw std::logic_error("JsonWriter: write after finish()");
    if (scopes_.empty()) return;  // the document's root value
    if (scopes_.back() == Scope::Object) {
        if (!key_pending_)
            throw std::logic_error("JsonWriter: value without key in object");
        key_pending_ = false;
        return;  // key() already handled comma/indent
    }
    if (!first_.back()) out_ << ',';
    first_.back() = false;
    newline(scopes_.size());
}

JsonWriter& JsonWriter::key(const std::string& name) {
    if (scopes_.empty() || scopes_.back() != Scope::Object)
        throw std::logic_error("JsonWriter: key() outside an object");
    if (key_pending_) throw std::logic_error("JsonWriter: key after key");
    if (!first_.back()) out_ << ',';
    first_.back() = false;
    newline(scopes_.size());
    out_ << '"' << json_escape(name) << (indent_ > 0 ? "\": " : "\":");
    key_pending_ = true;
    return *this;
}

JsonWriter& JsonWriter::begin_object() {
    begin_value();
    out_ << '{';
    scopes_.push_back(Scope::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    if (scopes_.empty() || scopes_.back() != Scope::Object || key_pending_)
        throw std::logic_error("JsonWriter: mismatched end_object()");
    const bool empty = first_.back();
    scopes_.pop_back();
    first_.pop_back();
    if (!empty) newline(scopes_.size());
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    begin_value();
    out_ << '[';
    scopes_.push_back(Scope::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    if (scopes_.empty() || scopes_.back() != Scope::Array)
        throw std::logic_error("JsonWriter: mismatched end_array()");
    const bool empty = first_.back();
    scopes_.pop_back();
    first_.pop_back();
    if (!empty) newline(scopes_.size());
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
    begin_value();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
    if (!std::isfinite(v)) return null();
    begin_value();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    begin_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    begin_value();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    begin_value();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::null() {
    begin_value();
    out_ << "null";
    return *this;
}

void JsonWriter::finish() {
    if (!scopes_.empty())
        throw std::logic_error("JsonWriter: finish() with open scopes");
    out_ << '\n';
    done_ = true;
}

}  // namespace statfi::report

#pragma once
// Minimal streaming JSON writer for the CLI's --json output mode.
//
// Scope is deliberately narrow: the CLI emits one machine-readable document
// per invocation on stdout (humans get stderr), so the writer only needs to
// serialize — escaping, nesting, comma placement — not parse. Numbers are
// written with enough precision to round-trip a double; non-finite values
// become null (JSON has no NaN/Inf).

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace statfi::report {

/// RFC 8259 string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Stack-based writer: begin/end object/array, key(), value(). Misnesting
/// (value without key inside an object, end without begin) throws
/// std::logic_error — a CLI bug, not an I/O condition.
class JsonWriter {
public:
    /// @p indent spaces per nesting level; 0 writes compact single-line JSON.
    explicit JsonWriter(std::ostream& out, int indent = 2);

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(bool v);
    JsonWriter& null();

    /// key + value in one call.
    template <typename T>
    JsonWriter& field(const std::string& name, T v) {
        key(name);
        return value(v);
    }

    /// Finish the document with a trailing newline (all scopes must be
    /// closed).
    void finish();

private:
    enum class Scope : std::uint8_t { Object, Array };

    void begin_value();  ///< comma/newline/indent bookkeeping before a value
    void newline(std::size_t depth);

    std::ostream& out_;
    int indent_;
    std::vector<Scope> scopes_;
    std::vector<bool> first_;  ///< parallel to scopes_: no element emitted yet
    bool key_pending_ = false;
    bool done_ = false;
};

}  // namespace statfi::report

#include "report/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace statfi::report {

const JsonValue* JsonValue::find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [name, value] : object)
        if (name == key) return &value;
    return nullptr;
}

double JsonValue::get_num(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v ? v->num_or(fallback) : fallback;
}

std::uint64_t JsonValue::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
    const JsonValue* v = find(key);
    return v ? v->uint_or(fallback) : fallback;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
    const JsonValue* v = find(key);
    return v ? v->int_or(fallback) : fallback;
}

std::string JsonValue::get_str(std::string_view key,
                               std::string fallback) const {
    const JsonValue* v = find(key);
    return v ? v->str_or(std::move(fallback)) : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
    const JsonValue* v = find(key);
    return v ? v->bool_or(fallback) : fallback;
}

namespace {

class Parser {
public:
    Parser(std::string_view text, const JsonParseLimits& limits)
        : text_(text), limits_(limits) {}

    JsonValue document() {
        if (text_.size() > limits_.max_bytes)
            fail("input of " + std::to_string(text_.size()) +
                 " bytes exceeds the " + std::to_string(limits_.max_bytes) +
                 "-byte cap");
        JsonValue v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        // 1-based line number of the failure point, so errors in multi-line
        // documents (hand-edited recipes, curl bodies) point at the line.
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n') ++line;
        throw std::runtime_error("json parse error at line " +
                                 std::to_string(line) + ", byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    /// RAII depth guard for the two recursive productions.
    struct Nesting {
        Parser& parser;
        explicit Nesting(Parser& p) : parser(p) {
            if (++parser.depth_ > parser.limits_.max_depth)
                parser.fail("nesting deeper than " +
                            std::to_string(parser.limits_.max_depth) +
                            " levels");
        }
        ~Nesting() { --parser.depth_; }
    };

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': {
                JsonValue v;
                v.type = JsonValue::Type::String;
                v.string = string();
                return v;
            }
            case 't': {
                if (!consume_literal("true")) fail("invalid literal");
                JsonValue v;
                v.type = JsonValue::Type::Bool;
                v.boolean = true;
                return v;
            }
            case 'f': {
                if (!consume_literal("false")) fail("invalid literal");
                JsonValue v;
                v.type = JsonValue::Type::Bool;
                v.boolean = false;
                return v;
            }
            case 'n': {
                if (!consume_literal("null")) fail("invalid literal");
                return JsonValue{};
            }
            default: return number();
        }
    }

    JsonValue object() {
        Nesting depth(*this);
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue array() {
        Nesting depth(*this);
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    unsigned hex4() {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return cp;
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned cp = hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // surrogate pair
                        if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u') {
                            pos_ += 2;
                            const unsigned lo = hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF)
                                fail("invalid low surrogate");
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        } else {
                            fail("lone high surrogate");
                        }
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("lone low surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: fail("invalid escape character");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected after decimal point");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit expected in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        // The slice is a valid JSON number, which strtod parses exactly.
        v.number = std::strtod(std::string(text_.substr(start, pos_ - start))
                                   .c_str(),
                               nullptr);
        return v;
    }

    std::string_view text_;
    JsonParseLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, const JsonParseLimits& limits) {
    return Parser(text, limits).document();
}

std::vector<JsonValue> parse_json_lines(std::string_view text,
                                        const JsonParseLimits& limits) {
    std::vector<JsonValue> docs;
    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - pos);
        ++lineno;
        if (line.find_first_not_of(" \t\r") != std::string_view::npos) {
            try {
                docs.push_back(parse_json(line, limits));
            } catch (const std::runtime_error& e) {
                throw std::runtime_error("line " + std::to_string(lineno) +
                                         ": " + e.what());
            }
        }
        if (eol == std::string_view::npos) break;
        pos = eol + 1;
    }
    return docs;
}

}  // namespace statfi::report

#pragma once
// Minimal recursive-descent JSON parser — the read half of the report
// library, paired with JsonWriter (the write half).
//
// Scope mirrors the writer deliberately: the observatory consumes documents
// this repo itself emitted (event-log lines, --json output), so the parser
// targets exactly RFC 8259 — objects, arrays, strings with escapes
// (\uXXXX included), numbers, booleans, null — and nothing beyond it (no
// comments, no trailing commas, no NaN/Inf literals; the writer never
// produces them). Errors throw std::runtime_error naming the line and byte
// offset, so a truncated or hand-edited event log fails loudly instead of
// rendering a silently wrong report.
//
// Since the service daemon feeds this parser from the network (POST
// /campaigns bodies), every parse is bounded: a nesting-depth limit stops
// stack exhaustion from "[[[[..." bombs and an input-size cap rejects
// oversized documents before any allocation proportional to them. The
// defaults are far above anything the repo emits; callers handling
// untrusted input can tighten them per call (JsonParseLimits).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace statfi::report {

/// One parsed JSON value. Object members keep insertion order (event-log
/// replay tests compare re-serialized lines, so order must round-trip).
class JsonValue {
public:
    enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    [[nodiscard]] bool is_null() const noexcept { return type == Type::Null; }
    [[nodiscard]] bool is_object() const noexcept {
        return type == Type::Object;
    }
    [[nodiscard]] bool is_array() const noexcept { return type == Type::Array; }

    /// Member lookup (objects only); nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const;

    // Typed accessors with defaults — the observatory reads optional schema
    // fields without littering null checks everywhere.
    [[nodiscard]] double num_or(double fallback) const noexcept {
        return type == Type::Number ? number : fallback;
    }
    [[nodiscard]] std::int64_t int_or(std::int64_t fallback) const noexcept {
        return type == Type::Number ? static_cast<std::int64_t>(number)
                                    : fallback;
    }
    [[nodiscard]] std::uint64_t uint_or(std::uint64_t fallback) const noexcept {
        return type == Type::Number && number >= 0
                   ? static_cast<std::uint64_t>(number)
                   : fallback;
    }
    [[nodiscard]] bool bool_or(bool fallback) const noexcept {
        return type == Type::Bool ? boolean : fallback;
    }
    [[nodiscard]] std::string str_or(std::string fallback) const {
        return type == Type::String ? string : std::move(fallback);
    }

    /// find() + num_or and friends in one call.
    [[nodiscard]] double get_num(std::string_view key,
                                 double fallback = 0.0) const;
    [[nodiscard]] std::uint64_t get_uint(std::string_view key,
                                         std::uint64_t fallback = 0) const;
    [[nodiscard]] std::int64_t get_int(std::string_view key,
                                       std::int64_t fallback = 0) const;
    [[nodiscard]] std::string get_str(std::string_view key,
                                      std::string fallback = "") const;
    [[nodiscard]] bool get_bool(std::string_view key,
                                bool fallback = false) const;
};

/// Bounds on one parse — both violations throw std::runtime_error with a
/// line-numbered message before any unbounded work happens.
struct JsonParseLimits {
    /// Maximum container nesting (objects + arrays). The recursive-descent
    /// parser burns one C++ stack frame per level, so this is the defense
    /// against "[[[[..." stack-exhaustion bombs.
    std::size_t max_depth = 64;
    /// Maximum input size in bytes, checked before parsing starts.
    std::size_t max_bytes = 16 * 1024 * 1024;
};

/// Parse exactly one JSON document; trailing non-whitespace throws.
/// @throws std::runtime_error naming the 1-based line and byte offset of
/// the first error (or the violated limit).
JsonValue parse_json(std::string_view text, const JsonParseLimits& limits = {});

/// Parse a JSON-Lines buffer: one document per non-empty line. @p limits
/// applies per line.
/// @throws std::runtime_error naming the 1-based line of the first error.
std::vector<JsonValue> parse_json_lines(std::string_view text,
                                        const JsonParseLimits& limits = {});

}  // namespace statfi::report

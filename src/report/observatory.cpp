#include "report/observatory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace statfi::report {

namespace {

// ---------------------------------------------------------------------------
// model building
// ---------------------------------------------------------------------------

[[noreturn]] void schema_error(std::size_t line, const std::string& what) {
    throw std::runtime_error("eventlog line " + std::to_string(line + 1) +
                             ": " + what);
}

}  // namespace

const ObservatoryModel::Stratum* ObservatoryModel::find_stratum(
    int layer, int bit) const {
    for (const Stratum& s : strata)
        if (s.layer == layer && s.bit == bit) return &s;
    return nullptr;
}

ObservatoryModel model_from_events(const std::vector<JsonValue>& events) {
    ObservatoryModel m;
    std::unordered_map<std::uint64_t, std::size_t> stratum_index;
    std::unordered_map<std::string, std::size_t> phase_index;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue& e = events[i];
        if (!e.is_object()) schema_error(i, "event is not a JSON object");
        if (e.get_int("v", -1) != 1)
            schema_error(i, "unsupported schema version (want v:1)");
        if (e.get_uint("seq", ~0ULL) != i)
            schema_error(i, "sequence gap: expected seq " +
                                std::to_string(i));
        const std::string type = e.get_str("type");
        if (type.empty()) schema_error(i, "missing event type");
        if (i == 0 && type != "campaign_header")
            schema_error(i, "first event must be campaign_header, got " +
                                type);

        if (type == "campaign_header") {
            m.command = e.get_str("command");
            m.model = e.get_str("model");
            m.approach = e.get_str("approach");
            m.dtype = e.get_str("dtype");
            m.format = e.get_str("format");
            if (m.format.empty()) m.format = m.dtype;  // pre-format logs
            m.policy = e.get_str("policy");
            m.seed = e.get_uint("seed");
            m.images = e.get_int("images");
            m.confidence = e.get_num("confidence", 0.99);
            m.error_margin = e.get_num("error_margin", 0.01);
            m.fault_model = e.get_str("fault_model");
            m.mitigation = e.get_str("mitigation");
        } else if (type == "plan") {
            m.universe = e.get_uint("universe");
            m.planned = e.get_uint("planned");
            m.strata_planned = e.get_uint("strata");
            m.bits = static_cast<int>(e.get_int("bits"));
            if (m.approach.empty()) m.approach = e.get_str("approach");
            if (m.fault_model.empty())
                m.fault_model = e.get_str("fault_model");
            m.layers.clear();
            if (const JsonValue* layers = e.find("layers"))
                for (const JsonValue& l : layers->array)
                    m.layers.push_back(
                        {static_cast<int>(l.get_int("layer", -1)),
                         l.get_str("name"), l.get_uint("population")});
        } else if (type == "phase_end") {
            const std::string phase = e.get_str("phase");
            auto [it, fresh] =
                phase_index.try_emplace(phase, m.phases.size());
            if (fresh) m.phases.push_back({phase, 0.0, 0});
            m.phases[it->second].seconds += e.get_num("seconds");
            m.phases[it->second].count += 1;
        } else if (type == "stratum_update") {
            const std::uint64_t id = e.get_uint("stratum");
            auto [it, fresh] =
                stratum_index.try_emplace(id, m.strata.size());
            if (fresh) {
                ObservatoryModel::Stratum s;
                s.id = id;
                s.layer = static_cast<int>(e.get_int("layer", -1));
                s.bit = static_cast<int>(e.get_int("bit", -1));
                s.population = e.get_uint("population");
                s.planned = e.get_uint("planned");
                m.strata.push_back(std::move(s));
            }
            ObservatoryModel::Point p;
            p.done = e.get_uint("done");
            p.critical = e.get_uint("critical");
            p.p_hat = e.get_num("p_hat");
            p.wilson_lo = e.get_num("wilson_lo");
            p.wilson_hi = e.get_num("wilson_hi", 1.0);
            p.wald_lo = e.get_num("wald_lo");
            p.wald_hi = e.get_num("wald_hi", 1.0);
            m.strata[it->second].points.push_back(p);
        } else if (type == "resume") {
            m.resumed += e.get_uint("replayed");
        } else if (type == "shard_begin") {
            ObservatoryModel::Shard s;
            s.shard = e.get_uint("shard");
            s.range_begin = e.get_uint("range_begin");
            s.range_end = e.get_uint("range_end");
            m.shards.push_back(s);
        } else if (type == "shard_end") {
            const std::uint64_t id = e.get_uint("shard");
            for (auto it = m.shards.rbegin(); it != m.shards.rend(); ++it)
                if (it->shard == id) {
                    it->ended = true;
                    it->complete = e.get_bool("complete");
                    it->resumed = e.get_uint("resumed");
                    it->classified = e.get_uint("classified");
                    break;
                }
        } else if (type == "merge_artifact") {
            m.merge_artifacts += 1;
        } else if (type == "campaign_end") {
            m.finished = true;
            m.complete = e.get_str("outcome") == "complete";
            m.injected = e.get_uint("injected");
            m.critical = e.get_uint("critical");
            m.wall_seconds = e.get_num("wall_seconds");
        }
        // phase_begin and unknown (forward-compatible) types carry no
        // model state.
    }
    m.event_count = events.size();
    return m;
}

ObservatoryModel load_event_log(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("observatory: cannot read event log " +
                                 path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty())
        throw std::runtime_error("observatory: event log " + path +
                                 " is empty");
    return model_from_events(parse_json_lines(text));
}

// ---------------------------------------------------------------------------
// HTML rendering
// ---------------------------------------------------------------------------

namespace {

std::string html_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string fmt_g(double v, int sig = 4) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*g", sig, v);
    return buf;
}

std::string fmt_pct(double fraction) { return fmt_g(fraction * 100.0, 3) + "%"; }

std::string fmt_count(std::uint64_t v) {
    // Thousands separators keep universe-scale numbers readable.
    std::string digits = std::to_string(v);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i && (n - i) % 3 == 0) out += ',';
        out += digits[i];
    }
    return out;
}

std::string fmt_seconds(double s) {
    if (s >= 3600.0)
        return fmt_g(s / 3600.0, 3) + " h";
    if (s >= 60.0) return fmt_g(s / 60.0, 3) + " min";
    if (s >= 1.0) return fmt_g(s, 3) + " s";
    return fmt_g(s * 1e3, 3) + " ms";
}

/// Sequential blue ramp (light -> dark), the repo's magnitude scale. Stops
/// validated against the dataviz palette: one hue, monotonic lightness.
struct Rgb {
    int r, g, b;
};

constexpr Rgb kRampStops[] = {
    {0xe9, 0xf1, 0xfc}, {0xcd, 0xe2, 0xfb}, {0xa7, 0xc9, 0xf2},
    {0x7f, 0xaa, 0xe4}, {0x56, 0x88, 0xcf}, {0x36, 0x67, 0xb2},
    {0x1f, 0x4a, 0x8f}, {0x0d, 0x36, 0x6b},
};

std::string ramp_color(double t) {
    t = std::clamp(t, 0.0, 1.0);
    constexpr int kStops = static_cast<int>(std::size(kRampStops));
    const double scaled = t * (kStops - 1);
    const int lo = std::min(static_cast<int>(scaled), kStops - 2);
    const double f = scaled - lo;
    const Rgb& a = kRampStops[lo];
    const Rgb& b = kRampStops[lo + 1];
    char buf[8];
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x",
                  static_cast<int>(std::lround(a.r + f * (b.r - a.r))),
                  static_cast<int>(std::lround(a.g + f * (b.g - a.g))),
                  static_cast<int>(std::lround(a.b + f * (b.b - a.b))));
    return buf;
}

/// Shared document shell: inline CSS only, ink/surface tokens, no external
/// references anywhere (no href, no src — asserted by tests).
void open_document(std::ostringstream& out, const std::string& title,
                   std::uint64_t strata_marker,
                   const std::string& extra_meta) {
    out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        << "<meta charset=\"utf-8\">\n"
        << "<meta name=\"viewport\" content=\"width=device-width, "
           "initial-scale=1\">\n"
        << "<meta name=\"generator\" content=\"statfi report\">\n"
        << "<meta name=\"statfi-schema\" content=\"statfi.eventlog.v1\">\n"
        << "<meta name=\"statfi-strata\" content=\"" << strata_marker
        << "\">\n"
        << extra_meta << "<title>" << html_escape(title) << "</title>\n"
        << "<style>\n"
           ":root{--bg:#fcfcfb;--card:#ffffff;--ink:#1a1a19;"
           "--ink2:#52514e;--ink3:#898781;--grid:#e3e1dc;--accent:#1f56a0;"
           "--band:#cde2fb;}\n"
           "@media (prefers-color-scheme:dark){:root{--bg:#1a1a19;"
           "--card:#232322;--ink:#f4f3f1;--ink2:#b9b7b1;--ink3:#898781;"
           "--grid:#3a3935;--accent:#7faae4;--band:#2c4a74;}}\n"
           "body{background:var(--bg);color:var(--ink);margin:0;"
           "font:14px/1.5 system-ui,sans-serif;}\n"
           "main{max-width:980px;margin:0 auto;padding:24px 20px 60px;}\n"
           "h1{font-size:22px;margin:0 0 4px;}\n"
           "h2{font-size:16px;margin:32px 0 10px;}\n"
           ".sub{color:var(--ink2);margin:0 0 18px;}\n"
           ".tiles{display:flex;flex-wrap:wrap;gap:12px;}\n"
           ".tile{background:var(--card);border:1px solid var(--grid);"
           "border-radius:8px;padding:10px 16px;min-width:118px;}\n"
           ".tile .v{font-size:20px;font-weight:600;}\n"
           ".tile .l{color:var(--ink3);font-size:12px;}\n"
           ".tile .s{color:var(--ink2);font-size:12px;}\n"
           ".card{background:var(--card);border:1px solid var(--grid);"
           "border-radius:8px;padding:14px;overflow-x:auto;}\n"
           ".note{color:var(--ink3);font-size:12px;margin:6px 0 0;}\n"
           "table{border-collapse:collapse;font-size:13px;width:100%;}\n"
           "th{color:var(--ink2);text-align:right;font-weight:500;"
           "border-bottom:1px solid var(--grid);padding:4px 8px;}\n"
           "th.t,td.t{text-align:left;}\n"
           "td{text-align:right;padding:3px 8px;"
           "border-bottom:1px solid var(--grid);}\n"
           "svg text{fill:var(--ink2);font:11px system-ui,sans-serif;}\n"
           "svg text.v{fill:var(--ink);}\n"
           ".mono{font-variant-numeric:tabular-nums;}\n"
           "footer{color:var(--ink3);font-size:12px;margin-top:40px;}\n"
           ".badge{display:inline-block;border-radius:6px;padding:1px 8px;"
           "font-size:12px;border:1px solid var(--grid);}\n"
           "</style>\n</head>\n<body>\n<main>\n";
}

void tile(std::ostringstream& out, const std::string& label,
          const std::string& value, const std::string& sub = "") {
    out << "<div class=\"tile\"><div class=\"l\">" << html_escape(label)
        << "</div><div class=\"v mono\">" << html_escape(value) << "</div>";
    if (!sub.empty())
        out << "<div class=\"s\">" << html_escape(sub) << "</div>";
    out << "</div>\n";
}

/// Activation campaigns stratify over graph nodes; multi-bit upsets over
/// combinadic ranks. Labels follow the campaign's fault model so the
/// heatmap/table rows read as what they are.
bool is_activation_model(const ObservatoryModel& m) {
    return m.fault_model == "activation";
}

bool is_mbu_model(const ObservatoryModel& m) {
    return m.fault_model.rfind("mbu", 0) == 0;
}

/// The strata axis next to the layer: bit position, or combo rank for MBU.
const char* bit_axis_prefix(const ObservatoryModel& m) {
    return is_mbu_model(m) ? "c" : "b";
}

std::string layer_name(const ObservatoryModel& m, int layer) {
    for (const auto& l : m.layers)
        if (l.layer == layer) return l.name;
    if (layer < 0)
        return is_activation_model(m) ? std::string("all nodes")
                                      : std::string("all layers");
    return (is_activation_model(m) ? "node " : "layer ") +
           std::to_string(layer);
}

std::string stratum_label(const ObservatoryModel& m,
                          const ObservatoryModel::Stratum& s) {
    if (s.layer < 0 && s.bit < 0) return "network";
    if (s.bit < 0) return layer_name(m, s.layer);
    return layer_name(m, s.layer) + " " + bit_axis_prefix(m) +
           std::to_string(s.bit);
}

// --- heatmap ---------------------------------------------------------------

void render_heatmap(std::ostringstream& out, const ObservatoryModel& m) {
    // Rows = layers that have at least one per-(bit, layer) stratum, cols =
    // bit index. Network-/layer-wise campaigns have none — skip cleanly.
    std::vector<int> rows;
    double p_max = 0.0;
    for (const auto& s : m.strata) {
        if (s.layer < 0 || s.bit < 0 || !s.final_point() ||
            s.final_point()->done == 0)
            continue;
        if (std::find(rows.begin(), rows.end(), s.layer) == rows.end())
            rows.push_back(s.layer);
        p_max = std::max(p_max, s.final_point()->p_hat);
    }
    if (rows.empty() || m.bits <= 0) return;
    std::sort(rows.begin(), rows.end());
    const double scale_max = p_max > 0 ? p_max : 1.0;

    const int cell = 16, gap = 2, left = 120, top = 24;
    const int legend_h = 40;
    const int width = left + m.bits * (cell + gap) + 20;
    const int height =
        top + static_cast<int>(rows.size()) * (cell + gap) + legend_h;

    const std::string axis = is_mbu_model(m) ? "combo" : "bit";
    const std::string rows_name = is_activation_model(m) ? "node" : "layer";
    out << "<h2>Per-(" << axis << ", " << rows_name
        << ") vulnerability</h2>\n<div class=\"card\">\n"
        << "<svg width=\"" << width << "\" height=\"" << height
        << "\" role=\"img\" aria-label=\"vulnerability heatmap\">\n";
    // bit axis labels every 4 columns
    for (int b = 0; b < m.bits; b += 4)
        out << "<text x=\"" << left + b * (cell + gap) + cell / 2
            << "\" y=\"" << top - 8 << "\" text-anchor=\"middle\">" << b
            << "</text>\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const int y = top + static_cast<int>(r) * (cell + gap);
        out << "<text x=\"" << left - 8 << "\" y=\"" << y + cell - 4
            << "\" text-anchor=\"end\">"
            << html_escape(layer_name(m, rows[r])) << "</text>\n";
        for (int b = 0; b < m.bits; ++b) {
            const auto* s = m.find_stratum(rows[r], b);
            const auto* p = s ? s->final_point() : nullptr;
            const int x = left + b * (cell + gap);
            if (!p || p->done == 0) {
                out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
                    << cell << "\" height=\"" << cell
                    << "\" rx=\"2\" fill=\"none\" stroke=\"var(--grid)\"/>"
                       "\n";
                continue;
            }
            out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
                << cell << "\" height=\"" << cell << "\" rx=\"2\" fill=\""
                << ramp_color(p->p_hat / scale_max) << "\"><title>"
                << html_escape(layer_name(m, rows[r])) << " " << axis << " "
                << b
                << "\np_hat = " << fmt_g(p->p_hat) << " (" << p->critical
                << "/" << p->done << ")\nWilson [" << fmt_g(p->wilson_lo)
                << ", " << fmt_g(p->wilson_hi) << "]</title></rect>\n";
        }
    }
    // legend: the ramp with min/max annotations
    const int ly = top + static_cast<int>(rows.size()) * (cell + gap) + 14;
    const int lw = 160, steps = 32;
    for (int i = 0; i < steps; ++i)
        out << "<rect x=\"" << left + i * lw / steps << "\" y=\"" << ly
            << "\" width=\"" << (lw + steps - 1) / steps
            << "\" height=\"10\" fill=\""
            << ramp_color(static_cast<double>(i) / (steps - 1)) << "\"/>\n";
    out << "<text x=\"" << left << "\" y=\"" << ly + 24 << "\">0</text>\n"
        << "<text x=\"" << left + lw << "\" y=\"" << ly + 24
        << "\" text-anchor=\"end\">" << fmt_g(scale_max) << "</text>\n"
        << "<text x=\"" << left + lw + 12 << "\" y=\"" << ly + 10
        << "\">critical probability p&#770;</text>\n"
        << "</svg>\n"
        << "<p class=\"note\">Cell shade: final p&#770; per (" << axis
        << ", " << rows_name
        << ") stratum, light&#8594;dark over one hue; hover a cell for the "
           "exact estimate and Wilson interval. Outlined cells have no "
           "injections.</p>\n</div>\n";
}

// --- convergence curves ----------------------------------------------------

void render_convergence(std::ostringstream& out, const ObservatoryModel& m) {
    // Small multiples, one per stratum with >= 2 points; when there are
    // more than kMax we keep the highest final p_hat (the interesting,
    // vulnerable strata) and say so.
    constexpr std::size_t kMax = 48;
    std::vector<const ObservatoryModel::Stratum*> picked;
    for (const auto& s : m.strata)
        if (s.points.size() >= 2) picked.push_back(&s);
    if (picked.empty()) return;
    const std::size_t total = picked.size();
    std::stable_sort(picked.begin(), picked.end(),
                     [](const auto* a, const auto* b) {
                         return a->final_point()->p_hat >
                                b->final_point()->p_hat;
                     });
    if (picked.size() > kMax) picked.resize(kMax);

    const int w = 170, h = 96, pad_l = 8, pad_r = 40, pad_t = 18, pad_b = 8;
    out << "<h2>Estimator convergence</h2>\n<div class=\"card\" "
           "style=\"display:flex;flex-wrap:wrap;gap:8px\">\n";
    for (const auto* s : picked) {
        const auto& pts = s->points;
        const double x0 = std::log2(static_cast<double>(
            std::max<std::uint64_t>(1, pts.front().done)));
        const double x1 = std::log2(static_cast<double>(
            std::max<std::uint64_t>(2, pts.back().done)));
        double y_max = 0.0;
        for (const auto& p : pts) y_max = std::max(y_max, p.wilson_hi);
        y_max = std::min(1.0, std::max(y_max, 1e-9) * 1.05);
        const auto X = [&](const ObservatoryModel::Point& p) {
            const double lx = std::log2(
                static_cast<double>(std::max<std::uint64_t>(1, p.done)));
            const double f = x1 > x0 ? (lx - x0) / (x1 - x0) : 1.0;
            return pad_l + f * (w - pad_l - pad_r);
        };
        const auto Y = [&](double v) {
            return pad_t +
                   (1.0 - std::clamp(v, 0.0, y_max) / y_max) *
                       (h - pad_t - pad_b);
        };
        out << "<svg width=\"" << w << "\" height=\"" << h
            << "\" role=\"img\"><title>" << html_escape(stratum_label(m, *s))
            << ": p&#770; vs injections (log2 x), Wilson band</title>\n"
            << "<text x=\"" << pad_l << "\" y=\"12\">"
            << html_escape(stratum_label(m, *s)) << "</text>\n";
        // Wilson band polygon: hi forward, lo backward.
        out << "<polygon fill=\"var(--band)\" points=\"";
        for (const auto& p : pts) out << fmt_g(X(p)) << "," << fmt_g(Y(p.wilson_hi)) << " ";
        for (auto it = pts.rbegin(); it != pts.rend(); ++it)
            out << fmt_g(X(*it)) << "," << fmt_g(Y(it->wilson_lo)) << " ";
        out << "\"/>\n<polyline fill=\"none\" stroke=\"var(--accent)\" "
               "stroke-width=\"2\" points=\"";
        for (const auto& p : pts) out << fmt_g(X(p)) << "," << fmt_g(Y(p.p_hat)) << " ";
        const auto& fin = pts.back();
        out << "\"/>\n<text class=\"v\" x=\"" << w - pad_r + 4 << "\" y=\""
            << fmt_g(Y(fin.p_hat) + 4) << "\">" << fmt_g(fin.p_hat, 3)
            << "</text>\n</svg>\n";
    }
    out << "</div>\n<p class=\"note\">p&#770; (line) with the Wilson "
           "interval (band) as each stratum accumulates injections "
           "(log&#8322; x-axis, one point per doubling)";
    if (total > picked.size())
        out << "; showing the " << picked.size() << " strata with the "
            << "highest final p&#770; of " << total;
    out << ".</p>\n";
}

// --- phase timing ----------------------------------------------------------

void render_phases(std::ostringstream& out, const ObservatoryModel& m) {
    if (m.phases.empty()) return;
    double max_s = 0.0;
    for (const auto& p : m.phases) max_s = std::max(max_s, p.seconds);
    if (max_s <= 0.0) max_s = 1.0;
    const int row = 24, left = 150, bar_w = 420, width = 700;
    const int height = static_cast<int>(m.phases.size()) * row + 8;
    out << "<h2>Phase timing</h2>\n<div class=\"card\">\n<svg width=\""
        << width << "\" height=\"" << height << "\" role=\"img\" "
        << "aria-label=\"phase timing\">\n";
    for (std::size_t i = 0; i < m.phases.size(); ++i) {
        const auto& p = m.phases[i];
        const int y = static_cast<int>(i) * row + 4;
        const double frac = p.seconds / max_s;
        const int bw = std::max(2, static_cast<int>(frac * bar_w));
        out << "<text x=\"" << left - 8 << "\" y=\"" << y + 13
            << "\" text-anchor=\"end\">" << html_escape(p.name)
            << "</text>\n"
            << "<rect x=\"" << left << "\" y=\"" << y << "\" width=\"" << bw
            << "\" height=\"16\" rx=\"4\" fill=\"var(--accent)\"><title>"
            << html_escape(p.name) << ": " << fmt_g(p.seconds) << " s over "
            << p.count << " span(s)</title></rect>\n"
            << "<text class=\"v\" x=\"" << left + bw + 8 << "\" y=\""
            << y + 13 << "\">" << fmt_seconds(p.seconds);
        if (p.count > 1) out << " &#215;" << p.count;
        out << "</text>\n";
    }
    out << "</svg>\n</div>\n";
}

// --- tables ----------------------------------------------------------------

void render_shards(std::ostringstream& out, const ObservatoryModel& m) {
    if (m.shards.empty()) return;
    out << "<h2>Shards</h2>\n<div class=\"card\">\n<table>\n"
           "<tr><th class=\"t\">shard</th><th>items</th><th>range</th>"
           "<th>resumed</th><th>classified</th>"
           "<th class=\"t\">state</th></tr>\n";
    for (const auto& s : m.shards)
        out << "<tr><td class=\"t mono\">" << s.shard << "</td><td "
            << "class=\"mono\">" << fmt_count(s.range_end - s.range_begin)
            << "</td><td class=\"mono\">[" << s.range_begin << ", "
            << s.range_end << ")</td><td class=\"mono\">"
            << fmt_count(s.resumed) << "</td><td class=\"mono\">"
            << fmt_count(s.classified) << "</td><td class=\"t\">"
            << (!s.ended ? "running"
                         : (s.complete ? "complete" : "interrupted"))
            << "</td></tr>\n";
    out << "</table>\n";
    if (m.merge_artifacts)
        out << "<p class=\"note\">" << m.merge_artifacts
            << " shard artifact(s) validated and merged.</p>\n";
    out << "</div>\n";
}

void render_strata_table(std::ostringstream& out,
                         const ObservatoryModel& m) {
    if (m.strata.empty()) return;
    constexpr std::size_t kMaxRows = 1024;
    out << "<h2>Strata</h2>\n<div class=\"card\">\n<table>\n"
           "<tr><th class=\"t\">stratum</th><th>population</th>"
           "<th>planned</th><th>done</th><th>critical</th>"
           "<th>p&#770;</th><th>Wilson CI</th><th>Wald CI (FPC)</th></tr>\n";
    std::size_t shown = 0;
    for (const auto& s : m.strata) {
        if (shown == kMaxRows) break;
        const auto* p = s.final_point();
        out << "<tr><td class=\"t\">" << html_escape(stratum_label(m, s))
            << "</td><td class=\"mono\">" << fmt_count(s.population)
            << "</td><td class=\"mono\">" << fmt_count(s.planned) << "</td>";
        if (p)
            out << "<td class=\"mono\">" << fmt_count(p->done)
                << "</td><td class=\"mono\">" << fmt_count(p->critical)
                << "</td><td class=\"mono\">" << fmt_g(p->p_hat)
                << "</td><td class=\"mono\">[" << fmt_g(p->wilson_lo) << ", "
                << fmt_g(p->wilson_hi) << "]</td><td class=\"mono\">["
                << fmt_g(p->wald_lo) << ", " << fmt_g(p->wald_hi)
                << "]</td>";
        else
            out << "<td class=\"mono\">0</td><td class=\"mono\">0</td>"
                   "<td class=\"mono\">&#8212;</td><td class=\"mono\">"
                   "&#8212;</td><td class=\"mono\">&#8212;</td>";
        out << "</tr>\n";
        ++shown;
    }
    out << "</table>\n";
    if (m.strata.size() > shown)
        out << "<p class=\"note\">showing " << shown << " of "
            << m.strata.size() << " strata.</p>\n";
    out << "</div>\n";
}

std::string describe_recipe(const ObservatoryModel& m) {
    std::string sub = m.model;
    if (!m.approach.empty()) sub += " · " + m.approach;
    if (!m.fault_model.empty()) sub += " · " + m.fault_model;
    if (!m.dtype.empty()) sub += " · " + m.dtype;
    if (!m.policy.empty()) sub += " · " + m.policy;
    sub += " · seed " + std::to_string(m.seed);
    sub += " · " + std::to_string(m.images) + " image(s)";
    sub += " · " + fmt_pct(m.confidence) + " confidence";
    if (!m.mitigation.empty() && m.mitigation != "none")
        sub += " · mitigated: " + m.mitigation;
    return sub;
}

std::uint64_t strata_with_data(const ObservatoryModel& m) {
    std::uint64_t n = 0;
    for (const auto& s : m.strata)
        if (s.final_point() && s.final_point()->done) ++n;
    return n;
}

}  // namespace

std::string render_observatory_html(const ObservatoryModel& m,
                                    const std::string& title) {
    std::ostringstream out;
    open_document(out, title, strata_with_data(m), "");

    out << "<h1>" << html_escape(title) << "</h1>\n<p class=\"sub\">"
        << html_escape(describe_recipe(m)) << "</p>\n";

    // stat tiles — the headline numbers, sample-size savings front and
    // center (the paper's whole point).
    std::uint64_t done_total = 0, crit_total = 0;
    for (const auto& s : m.strata)
        if (const auto* p = s.final_point()) {
            done_total += p->done;
            crit_total += p->critical;
        }
    const std::uint64_t injected = m.finished ? m.injected : done_total;
    const std::uint64_t critical = m.finished ? m.critical : crit_total;
    out << "<section class=\"tiles\">\n";
    tile(out, "status",
         !m.finished ? "in progress" : (m.complete ? "complete" : "interrupted"),
         m.finished ? "wall " + fmt_seconds(m.wall_seconds) : "");
    tile(out, "fault universe", fmt_count(m.universe));
    tile(out, "planned injections", fmt_count(m.planned),
         m.universe ? fmt_pct(static_cast<double>(m.planned) /
                              static_cast<double>(m.universe)) +
                          " of universe"
                    : "");
    if (m.universe && m.planned && m.planned <= m.universe)
        tile(out, "savings vs exhaustive",
             fmt_pct(1.0 - static_cast<double>(m.planned) /
                               static_cast<double>(m.universe)),
             fmt_count(m.universe - m.planned) + " injections avoided");
    tile(out, "injected", fmt_count(injected));
    tile(out, "critical", fmt_count(critical),
         injected ? "rate " + fmt_g(static_cast<double>(critical) /
                                    static_cast<double>(injected))
                  : "");
    if (m.resumed) tile(out, "resumed from journal", fmt_count(m.resumed));
    out << "</section>\n";

    render_heatmap(out, m);
    render_convergence(out, m);
    render_phases(out, m);
    render_shards(out, m);
    render_strata_table(out, m);

    out << "<footer>statfi report · statfi.eventlog.v1 · "
        << m.event_count << " events</footer>\n"
        << "</main>\n</body>\n</html>\n";
    return out.str();
}

DiffReport diff_observatories(const ObservatoryModel& a,
                              const ObservatoryModel& b) {
    DiffReport d;
    for (const auto& sa : a.strata) {
        const auto* sb = b.find_stratum(sa.layer, sa.bit);
        const auto* pa = sa.final_point();
        if (!sb || !sb->final_point()) {
            if (pa && pa->done) ++d.a_only;
            continue;
        }
        const auto* pb = sb->final_point();
        if (!pa || pa->done == 0 || pb->done == 0) continue;
        ++d.compared;
        const bool disjoint =
            pa->wilson_hi < pb->wilson_lo || pb->wilson_hi < pa->wilson_lo;
        if (!disjoint) continue;
        StratumDiff sd;
        sd.layer = sa.layer;
        sd.bit = sa.bit;
        sd.a_p = pa->p_hat;
        sd.a_lo = pa->wilson_lo;
        sd.a_hi = pa->wilson_hi;
        sd.b_p = pb->p_hat;
        sd.b_lo = pb->wilson_lo;
        sd.b_hi = pb->wilson_hi;
        sd.regression = pb->wilson_lo > pa->wilson_hi;
        d.flagged.push_back(sd);
    }
    for (const auto& sb : b.strata) {
        if (!sb.final_point() || sb.final_point()->done == 0) continue;
        if (!a.find_stratum(sb.layer, sb.bit)) ++d.b_only;
    }
    return d;
}

std::string render_diff_html(const ObservatoryModel& a,
                             const ObservatoryModel& b, const DiffReport& d,
                             const std::string& title) {
    std::ostringstream out;
    std::ostringstream extra;
    extra << "<meta name=\"statfi-diff-flagged\" content=\""
          << d.flagged.size() << "\">\n";
    open_document(out, title, d.compared, extra.str());
    out << "<h1>" << html_escape(title) << "</h1>\n<p class=\"sub\">A: "
        << html_escape(describe_recipe(a)) << "<br>B: "
        << html_escape(describe_recipe(b)) << "</p>\n";
    out << "<section class=\"tiles\">\n";
    tile(out, "strata compared", fmt_count(d.compared));
    tile(out, "flagged (disjoint CIs)", fmt_count(d.flagged.size()),
         d.flagged.empty() ? "A and B agree within their intervals" : "");
    if (d.a_only) tile(out, "A only", fmt_count(d.a_only));
    if (d.b_only) tile(out, "B only", fmt_count(d.b_only));
    out << "</section>\n";
    if (!d.flagged.empty()) {
        out << "<h2>Flagged strata</h2>\n<div class=\"card\">\n<table>\n"
               "<tr><th class=\"t\">stratum</th>"
               "<th>A p&#770; [Wilson]</th><th>B p&#770; [Wilson]</th>"
               "<th class=\"t\">direction</th></tr>\n";
        for (const auto& f : d.flagged) {
            ObservatoryModel::Stratum key;
            key.layer = f.layer;
            key.bit = f.bit;
            out << "<tr><td class=\"t\">"
                << html_escape(stratum_label(a, key))
                << "</td><td class=\"mono\">" << fmt_g(f.a_p) << " ["
                << fmt_g(f.a_lo) << ", " << fmt_g(f.a_hi)
                << "]</td><td class=\"mono\">" << fmt_g(f.b_p) << " ["
                << fmt_g(f.b_lo) << ", " << fmt_g(f.b_hi)
                << "]</td><td class=\"t\">"
                << (f.regression ? "&#9650; B higher (more vulnerable)"
                                 : "&#9660; B lower (less vulnerable)")
                << "</td></tr>\n";
        }
        out << "</table>\n<p class=\"note\">A stratum is flagged when its "
               "final Wilson intervals in A and B do not overlap — the two "
               "campaigns disagree beyond their stated uncertainty.</p>\n"
               "</div>\n";
    }
    out << "<footer>statfi report --diff · statfi.eventlog.v1"
        << "</footer>\n</main>\n</body>\n</html>\n";
    return out.str();
}

std::uint64_t MatrixReport::divergent() const noexcept {
    std::uint64_t n = 0;
    for (const auto& p : pairs)
        if (p.same_format) n += p.diff.flagged.size();
    return n;
}

MatrixReport matrix_compare(const std::vector<ObservatoryModel>& logs) {
    MatrixReport r;
    for (std::size_t i = 0; i < logs.size(); ++i)
        for (std::size_t j = i + 1; j < logs.size(); ++j) {
            MatrixReport::Pair p;
            p.a = i;
            p.b = j;
            p.same_format = logs[i].format == logs[j].format;
            p.diff = diff_observatories(logs[i], logs[j]);
            r.pairs.push_back(std::move(p));
        }
    return r;
}

namespace {

void render_pair_table(std::ostringstream& out,
                       const std::vector<ObservatoryModel>& logs,
                       const std::vector<std::string>& labels,
                       const MatrixReport::Pair& p) {
    out << "<table>\n<tr><th class=\"t\">stratum</th><th>"
        << html_escape(logs[p.a].format) << " p&#770; [Wilson]</th><th>"
        << html_escape(logs[p.b].format) << " p&#770; [Wilson]</th>"
        << "<th class=\"t\">direction</th></tr>\n";
    for (const auto& f : p.diff.flagged) {
        ObservatoryModel::Stratum key;
        key.layer = f.layer;
        key.bit = f.bit;
        out << "<tr><td class=\"t\">"
            << html_escape(stratum_label(logs[p.a], key))
            << "</td><td class=\"mono\">" << fmt_g(f.a_p) << " ["
            << fmt_g(f.a_lo) << ", " << fmt_g(f.a_hi)
            << "]</td><td class=\"mono\">" << fmt_g(f.b_p) << " ["
            << fmt_g(f.b_lo) << ", " << fmt_g(f.b_hi)
            << "]</td><td class=\"t\">"
            << (f.regression ? "&#9650; higher in "
                             : "&#9660; lower in ")
            << html_escape(labels[p.b]) << "</td></tr>\n";
    }
    out << "</table>\n";
}

}  // namespace

std::string render_matrix_html(const std::vector<ObservatoryModel>& logs,
                               const std::vector<std::string>& labels,
                               const MatrixReport& r,
                               const std::string& title) {
    std::ostringstream out;
    std::ostringstream extra;
    extra << "<meta name=\"statfi-matrix-logs\" content=\"" << logs.size()
          << "\">\n"
          << "<meta name=\"statfi-matrix-flagged\" content=\""
          << r.divergent() << "\">\n";
    std::uint64_t strata_marker = 0;
    for (const auto& m : logs) strata_marker += strata_with_data(m);
    open_document(out, title, strata_marker, extra.str());

    out << "<h1>" << html_escape(title) << "</h1>\n<p class=\"sub\">"
        << logs.size() << " campaign log(s) side by side; same-format "
        << "disagreement is a divergence, cross-format shifts are the "
        << "measurement.</p>\n";

    out << "<section class=\"tiles\">\n";
    tile(out, "logs", fmt_count(logs.size()));
    tile(out, "pairs compared", fmt_count(r.pairs.size()));
    tile(out, "divergent strata", fmt_count(r.divergent()),
         r.divergent() == 0 ? "same-format campaigns agree" : "");
    std::uint64_t cross = 0;
    for (const auto& p : r.pairs)
        if (!p.same_format) cross += p.diff.flagged.size();
    tile(out, "cross-format shifts", fmt_count(cross),
         "disjoint CIs across formats");
    out << "</section>\n";

    // One heatmap section per log, labeled with its format and source.
    for (std::size_t i = 0; i < logs.size(); ++i) {
        const ObservatoryModel& m = logs[i];
        out << "<h2>" << html_escape(m.format.empty() ? m.dtype : m.format)
            << " &#8212; " << html_escape(labels[i]) << "</h2>\n"
            << "<p class=\"sub\">" << html_escape(describe_recipe(m))
            << "</p>\n";
        render_heatmap(out, m);
    }

    // Divergences first (they gate), then the cross-format picture.
    bool any_divergent = false;
    for (const auto& p : r.pairs) {
        if (!p.same_format || p.diff.flagged.empty()) continue;
        if (!any_divergent)
            out << "<h2>Divergent strata (same format)</h2>\n";
        any_divergent = true;
        out << "<div class=\"card\">\n<p class=\"note\">"
            << html_escape(labels[p.a]) << " vs "
            << html_escape(labels[p.b]) << " (both "
            << html_escape(logs[p.a].format)
            << "): these campaigns should agree within their intervals "
               "and do not.</p>\n";
        render_pair_table(out, logs, labels, p);
        out << "</div>\n";
    }

    bool any_cross = false;
    for (const auto& p : r.pairs) {
        if (p.same_format || p.diff.flagged.empty()) continue;
        if (!any_cross)
            out << "<h2>Cross-format differences</h2>\n"
                   "<p class=\"sub\">Strata whose Wilson intervals are "
                   "disjoint across formats — where reduced precision "
                   "changes the vulnerability profile (informational, "
                   "never gated).</p>\n";
        any_cross = true;
        out << "<div class=\"card\">\n<p class=\"note\">"
            << html_escape(labels[p.a]) << " ("
            << html_escape(logs[p.a].format) << ") vs "
            << html_escape(labels[p.b]) << " ("
            << html_escape(logs[p.b].format) << "); strata matched on "
            << "(layer, bit) over the common bit range.</p>\n";
        render_pair_table(out, logs, labels, p);
        out << "</div>\n";
    }

    out << "<footer>statfi report --matrix · statfi.eventlog.v1"
        << "</footer>\n</main>\n</body>\n</html>\n";
    return out.str();
}

}  // namespace statfi::report

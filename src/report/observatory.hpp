#pragma once
// Observatory report: turn a statfi.eventlog.v1 JSONL stream into an
// in-memory campaign model, a self-contained single-file HTML report, and
// an A/B stratum diff (DESIGN.md §5.13).
//
// The HTML is deliberately dependency-free — inline CSS, inline SVG, no
// scripts, no external fetches of any kind (the tests assert the file
// contains no src=/href= attribute at all) — so a report scp'd off a
// cluster node opens anywhere. Chart grammar follows the repo's dataviz
// conventions: magnitude (the per-(bit, layer) vulnerability heatmap) uses
// one sequential blue ramp light->dark; identity never relies on color
// alone (every mark carries a text <title> and the tables repeat the
// numbers); marks are thin with recessive axes.
//
// The model is tolerant of *interrupted* logs (a valid prefix is a valid
// report — the writer flushes per event) but strict about schema: a log
// whose first event is not a campaign_header, or whose envelope is
// malformed, throws with the offending line number.

#include <cstdint>
#include <string>
#include <vector>

#include "report/json_parse.hpp"

namespace statfi::report {

/// One campaign reconstructed from its event log.
struct ObservatoryModel {
    // campaign_header
    std::string command;
    std::string model;
    std::string approach;
    std::string dtype;
    /// Number format the weights were stored in ("fp32", "fp16", "bf16",
    /// "int8") — the header's `format` field, falling back to `dtype` for
    /// logs written before the field existed. Drives matrix grouping: only
    /// same-format campaigns are expected to agree statistically.
    std::string format;
    std::string policy;
    std::uint64_t seed = 0;
    std::int64_t images = 0;
    double confidence = 0.99;
    double error_margin = 0.01;
    /// Fault-model spelling ("stuck-at", "flip", "mbu-k2", "activation")
    /// from the header, falling back to the plan event; empty for pre-fault-
    /// model logs. Drives stratum labeling: activation strata are graph
    /// nodes, mbu strata axis is the combo rank, not a bit position.
    std::string fault_model;
    std::string mitigation;  ///< mitigation descriptor ("none" when absent)

    // plan
    std::uint64_t universe = 0;
    std::uint64_t planned = 0;
    std::uint64_t strata_planned = 0;
    int bits = 0;
    struct Layer {
        int layer = -1;
        std::string name;
        std::uint64_t population = 0;
    };
    std::vector<Layer> layers;

    // phase_begin/phase_end pairs, aggregated by phase name in first-seen
    // order (nested and repeated phases sum their durations).
    struct Phase {
        std::string name;
        double seconds = 0.0;
        std::uint64_t count = 0;  ///< completed begin/end pairs
    };
    std::vector<Phase> phases;

    // stratum_update series, keyed by stratum id in first-seen order.
    struct Point {
        std::uint64_t done = 0;
        std::uint64_t critical = 0;
        double p_hat = 0.0;
        double wilson_lo = 0.0, wilson_hi = 1.0;
        double wald_lo = 0.0, wald_hi = 1.0;
    };
    struct Stratum {
        std::uint64_t id = 0;
        int layer = -1;
        int bit = -1;
        std::uint64_t population = 0;
        std::uint64_t planned = 0;
        std::vector<Point> points;  ///< ascending done (emission order)

        [[nodiscard]] const Point* final_point() const noexcept {
            return points.empty() ? nullptr : &points.back();
        }
    };
    std::vector<Stratum> strata;

    // shard lifecycle
    struct Shard {
        std::uint64_t shard = 0;
        std::uint64_t range_begin = 0, range_end = 0;
        bool ended = false;
        bool complete = false;
        std::uint64_t resumed = 0, classified = 0;
    };
    std::vector<Shard> shards;
    std::uint64_t merge_artifacts = 0;

    std::uint64_t resumed = 0;  ///< items replayed from a journal

    // campaign_end (absent for interrupted-mid-write logs)
    bool finished = false;
    bool complete = false;
    std::uint64_t injected = 0;
    std::uint64_t critical = 0;
    double wall_seconds = 0.0;

    std::uint64_t event_count = 0;

    /// Stratum for (layer, bit), or nullptr.
    [[nodiscard]] const Stratum* find_stratum(int layer, int bit) const;
};

/// Build the model from parsed event-log lines (one JsonValue per line).
/// @throws std::runtime_error on schema violations, naming the line.
ObservatoryModel model_from_events(const std::vector<JsonValue>& events);

/// Read + parse + model a JSONL event log from disk.
/// @throws std::runtime_error when the file cannot be read or parsed.
ObservatoryModel load_event_log(const std::string& path);

/// Render the self-contained single-file HTML report. The document carries
/// a machine-readable marker `<meta name="statfi-strata" content="N">`
/// (N = number of strata with data) that CI smoke checks grep for.
std::string render_observatory_html(const ObservatoryModel& m,
                                    const std::string& title);

/// One stratum whose A/B confidence intervals no longer overlap.
struct StratumDiff {
    int layer = -1;
    int bit = -1;
    double a_p = 0.0, a_lo = 0.0, a_hi = 0.0;
    double b_p = 0.0, b_lo = 0.0, b_hi = 0.0;
    bool regression = false;  ///< true: B's interval sits above A's
};

struct DiffReport {
    std::vector<StratumDiff> flagged;  ///< disjoint-CI strata, A order
    std::uint64_t compared = 0;        ///< strata present in both logs
    std::uint64_t a_only = 0;
    std::uint64_t b_only = 0;
};

/// Compare final Wilson intervals stratum-by-stratum (matched on
/// (layer, bit)); a stratum is flagged when the intervals are disjoint —
/// the two campaigns disagree beyond their own stated uncertainty.
DiffReport diff_observatories(const ObservatoryModel& a,
                              const ObservatoryModel& b);

/// Render the A/B diff as the same kind of self-contained HTML document.
std::string render_diff_html(const ObservatoryModel& a,
                             const ObservatoryModel& b, const DiffReport& d,
                             const std::string& title);

/// Matrix comparison over N campaign logs (`report --matrix`): every
/// unordered pair is diffed; pairs whose campaigns used the *same* number
/// format and disagree are divergences (exit 3 in the CLI), pairs across
/// formats are informational — reduced precision legitimately shifts
/// vulnerability, that shift is what the matrix view is for.
struct MatrixReport {
    struct Pair {
        std::size_t a = 0, b = 0;  ///< indices into the input log list
        bool same_format = false;
        DiffReport diff;
    };
    std::vector<Pair> pairs;  ///< all (i, j), i < j, in input order

    /// Strata flagged across same-format pairs — the divergence count the
    /// CLI gates on and the HTML carries in `statfi-matrix-flagged`.
    [[nodiscard]] std::uint64_t divergent() const noexcept;
};

MatrixReport matrix_compare(const std::vector<ObservatoryModel>& logs);

/// Render N logs side by side — one heatmap section per log, a per-format
/// stratum comparison, and the divergence/cross-format tables — as one
/// self-contained HTML document. Machine-readable markers:
/// `statfi-matrix-logs` (N) and `statfi-matrix-flagged` (same-format
/// divergent strata). `labels` names each log (typically its path).
std::string render_matrix_html(const std::vector<ObservatoryModel>& logs,
                               const std::vector<std::string>& labels,
                               const MatrixReport& r,
                               const std::string& title);

}  // namespace statfi::report

#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace statfi::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table::add_row: expected " +
                                    std::to_string(headers_.size()) +
                                    " cells, got " + std::to_string(cells.size()));
    rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    for (char c : s)
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == ',' || c == '-' || c == '+' || c == '%' || c == 'e' ||
              c == 'E'))
            return false;
    return true;
}

std::string csv_escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

void Table::print(std::ostream& os) const {
    const std::size_t cols = headers_.size();
    std::vector<std::size_t> widths(cols);
    std::vector<bool> numeric(cols, true);
    for (std::size_t c = 0; c < cols; ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < cols; ++c) {
            widths[c] = std::max(widths[c], row[c].size());
            if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
        }

    auto print_row = [&](const std::vector<std::string>& row, bool align) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c) os << "  ";
            if (align && numeric[c])
                os << std::setw(static_cast<int>(widths[c])) << std::right
                   << row[c];
            else
                os << std::setw(static_cast<int>(widths[c])) << std::left
                   << row[c];
        }
        os << '\n';
    };
    print_row(headers_, false);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row, true);
}

std::string Table::to_string() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

void Table::write_csv(std::ostream& os) const {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c) os << ',';
        os << csv_escape(headers_[c]);
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << csv_escape(row[c]);
        }
        os << '\n';
    }
}

std::string fmt_u64(std::uint64_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0) out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string fmt_double(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string fmt_percent(double fraction, int precision) {
    return fmt_double(fraction * 100.0, precision);
}

std::string bar(const std::string& label, double value, double max_value,
                int width, int label_width) {
    std::ostringstream os;
    os << std::setw(label_width) << std::left << label << ' ';
    int filled = 0;
    if (max_value > 0.0 && value > 0.0)
        filled = static_cast<int>(
            std::lround(value / max_value * static_cast<double>(width)));
    filled = std::clamp(filled, value > 0.0 ? 1 : 0, width);
    os << std::string(static_cast<std::size_t>(filled), '#')
       << std::string(static_cast<std::size_t>(width - filled), '.') << ' '
       << fmt_double(value, 6);
    return os.str();
}

}  // namespace statfi::report

#pragma once
// Text reporting: aligned ASCII tables (what the bench binaries print to
// mirror the paper's tables), CSV export, and simple text "series" used for
// figure reproduction on a terminal.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace statfi::report {

/// Column-aligned ASCII table with a header row.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Appends one row; must match the header count.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    /// Render with column alignment; numbers (right-alignable cells) are
    /// right-aligned, text left-aligned.
    void print(std::ostream& os) const;
    [[nodiscard]] std::string to_string() const;

    /// CSV form (RFC-4180-style quoting for cells with commas/quotes).
    void write_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across benches.
std::string fmt_u64(std::uint64_t value);                  // 1,234,567
std::string fmt_double(double value, int precision = 4);   // fixed precision
std::string fmt_percent(double fraction, int precision = 2);  // 12.34

/// Horizontal text bar chart row: label, bar scaled to width, value.
std::string bar(const std::string& label, double value, double max_value,
                int width = 48, int label_width = 14);

}  // namespace statfi::report

#include "service/cache.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

namespace statfi::service {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec)
        throw std::runtime_error("result cache: cannot create " + root_ +
                                 ": " + ec.message());
}

std::string ResultCache::dir_of(const std::string& fingerprint) const {
    return root_ + "/" + fingerprint;
}

std::string ResultCache::ensure_dir(const std::string& fingerprint) const {
    const std::string dir = dir_of(fingerprint);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        throw std::runtime_error("result cache: cannot create " + dir + ": " +
                                 ec.message());
    return dir;
}

bool ResultCache::complete(const std::string& fingerprint) const {
    const std::string dir = dir_of(fingerprint);
    return fs::exists(result_json_path(dir)) &&
           fs::exists(events_path(dir)) && fs::exists(report_html_path(dir));
}

std::string ResultCache::recipe_path(const std::string& dir) {
    return dir + "/recipe.json";
}
std::string ResultCache::manifest_path(const std::string& dir) {
    return dir + "/manifest.sfim";
}
std::string ResultCache::result_json_path(const std::string& dir) {
    return dir + "/result.json";
}
std::string ResultCache::events_path(const std::string& dir) {
    return dir + "/events.jsonl";
}
std::string ResultCache::report_html_path(const std::string& dir) {
    return dir + "/report.html";
}
std::string ResultCache::outcomes_path(const std::string& dir) {
    return dir + "/outcomes.sfio";
}
std::string ResultCache::history_path(const std::string& dir) {
    return dir + "/metrics.tsf";
}
std::string ResultCache::trace_path(const std::string& dir) {
    return dir + "/trace.json";
}

}  // namespace statfi::service

#pragma once
// Content-addressed result cache: one directory per recipe fingerprint,
// holding every durable artifact a campaign produced.
//
//   <root>/<fingerprint>/
//     recipe.json    canonical recipe (human-debuggable index of the entry)
//     manifest.sfim  the frozen shard manifest — pins the plan AND the
//                    partition, so a resubmission reuses the exact item
//                    ranges its cached shard results cover
//     shard_<k>.sfis completed shard results (written by shard::run_shard)
//     shard_<k>.sfij checkpoint journals of interrupted shards
//     result.json    deterministic merged result document
//     events.jsonl   the campaign's statfi.eventlog.v1 log
//     report.html    self-contained observatory report
//     outcomes.sfio  dense outcome table (census campaigns only)
//
// The cache needs no index file: the fingerprint IS the key, the directory
// listing IS the entry, and each artifact is individually checksummed by
// its own format (SFIM/SFIS CRC frames, the event log's schema). Partial
// entries are useful, not corrupt — a killed campaign leaves valid shard
// results and journals that the next run of the same recipe picks up via
// shard_result_valid() and --resume semantics. An entry is COMPLETE (a
// full cache hit, zero inference) once the three merged artifacts exist.

#include <string>

namespace statfi::service {

class ResultCache {
public:
    /// Anchor the cache at @p root (created, parents included).
    /// @throws std::runtime_error when the directory cannot be created.
    explicit ResultCache(std::string root);

    [[nodiscard]] const std::string& root() const noexcept { return root_; }

    /// The entry directory for @p fingerprint (not created).
    [[nodiscard]] std::string dir_of(const std::string& fingerprint) const;

    /// dir_of, created on demand.
    std::string ensure_dir(const std::string& fingerprint) const;

    /// Full cache hit: result.json, events.jsonl, and report.html all
    /// present — the scheduler then completes the job without building a
    /// fixture or running a single inference.
    [[nodiscard]] bool complete(const std::string& fingerprint) const;

    // Conventional artifact paths inside an entry directory.
    static std::string recipe_path(const std::string& dir);
    static std::string manifest_path(const std::string& dir);
    static std::string result_json_path(const std::string& dir);
    static std::string events_path(const std::string& dir);
    static std::string report_html_path(const std::string& dir);
    static std::string outcomes_path(const std::string& dir);
    /// Fleet plane artifacts (DESIGN.md decision 18): the periodic metrics
    /// history ring and the merged per-job Chrome trace.
    static std::string history_path(const std::string& dir);
    static std::string trace_path(const std::string& dir);

private:
    std::string root_;
};

}  // namespace statfi::service

#include "service/daemon.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "io/atomic_file.hpp"
#include "report/json.hpp"
#include "service/recipe_json.hpp"
#include "telemetry/history.hpp"
#include "telemetry/trace.hpp"

namespace statfi::service {

namespace {

using telemetry::HttpRequest;
using telemetry::HttpResponse;

/// Validate options and make sure the state directory exists — called from
/// the first member initializer so every subsequent member can rely on it.
DaemonOptions prepare(DaemonOptions options) {
    if (options.state_dir.empty())
        throw std::invalid_argument("service: state_dir must be set");
    std::error_code ec;
    std::filesystem::create_directories(options.state_dir, ec);
    if (ec)
        throw std::runtime_error("service: cannot create state directory " +
                                 options.state_dir + ": " + ec.message());
    if (options.log_path.empty())
        options.log_path = options.state_dir + "/service.jsonl";
    if (options.default_shards == 0) options.default_shards = 1;
    return options;
}

telemetry::HttpServer::Options http_options(const DaemonOptions& options) {
    telemetry::HttpServer::Options http;
    http.port = options.port;
    http.handler_threads = 4;
    http.max_request_bytes = options.max_request_bytes;
    return http;
}

HttpResponse json_response(int status, const std::string& body) {
    return HttpResponse{status, "application/json", body + "\n"};
}

/// Wilson score interval for x criticals out of n faults at ~95% — the
/// same interval family the estimator reports, reduced to the two numbers
/// a fleet dashboard plots around p̂. Zero-sample jobs get [0, 1].
struct WilsonInterval {
    double p_hat = 0.0, low = 0.0, high = 1.0;
};

WilsonInterval wilson95(double x, double n) {
    WilsonInterval w;
    if (n <= 0.0) return w;
    constexpr double z = 1.959963984540054;  // Phi^-1(0.975)
    const double p = x / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    w.p_hat = p;
    w.low = std::max(0.0, center - half);
    w.high = std::min(1.0, center + half);
    return w;
}

void job_json_fields(report::JsonWriter& json, const Job& job) {
    json.field("id", job.id)
        .field("state", to_string(job.state))
        .field("fingerprint", job.fingerprint)
        .field("model", job.recipe.model)
        .field("approach", core::to_string(job.recipe.approach))
        .field("fault_model", job.recipe.fault_model.describe())
        .field("dtype", fault::to_string(job.recipe.dtype))
        .field("seed", job.recipe.seed)
        .field("shards", static_cast<std::uint64_t>(job.shards))
        .field("shards_total", job.shards_total)
        .field("shards_done", job.shards_done)
        .field("cached_shards", job.cached_shards)
        .field("cache_hit", job.cache_hit)
        .field("resumed", job.resumed)
        .field("classified", job.classified)
        .field("critical", job.critical)
        .field("injected", job.injected);
    if (job.trace_id != 0)
        json.field("trace_id", telemetry::format_trace_id(job.trace_id));
    if (!job.error.empty()) json.field("error", job.error);
}

std::string job_json(const Job& job) {
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object();
    job_json_fields(json, job);
    json.end_object();
    return out.str();
}

/// Per-job Prometheus gauges — enough for a dashboard to plot progress and
/// alert on failure without parsing JSON.
std::string job_metrics(const Job& job) {
    std::ostringstream out;
    const std::string label = "{job=\"" + std::to_string(job.id) + "\"}";
    out << "# TYPE statfi_job_shards_total gauge\n"
        << "statfi_job_shards_total" << label << " " << job.shards_total
        << "\n"
        << "# TYPE statfi_job_shards_done gauge\n"
        << "statfi_job_shards_done" << label << " " << job.shards_done << "\n"
        << "# TYPE statfi_job_cached_shards gauge\n"
        << "statfi_job_cached_shards" << label << " " << job.cached_shards
        << "\n"
        << "# TYPE statfi_job_resumed gauge\n"
        << "statfi_job_resumed" << label << " " << job.resumed << "\n"
        << "# TYPE statfi_job_classified gauge\n"
        << "statfi_job_classified" << label << " " << job.classified << "\n"
        << "# TYPE statfi_job_critical gauge\n"
        << "statfi_job_critical" << label << " " << job.critical << "\n"
        << "# TYPE statfi_job_done gauge\n"
        << "statfi_job_done" << label << " " << (job.terminal() ? 1 : 0)
        << "\n";
    return out.str();
}

}  // namespace

ServiceDaemon::ServiceDaemon(const DaemonOptions& options)
    : options_(prepare(options)),
      cache_(options_.state_dir + "/cache"),
      queue_(options_.state_dir + "/queue.sfiq"),
      log_(options_.log_path),
      scheduler_(queue_, cache_, &log_,
                 SchedulerOptions{options_.workers, options_.engine_threads,
                                  options_.fleet}),
      http_(http_options(options_)) {
    http_.route("POST", "/campaigns", [this](const HttpRequest& req) {
        return post_campaign(req);
    });
    http_.route("GET", "/campaigns",
                [this](const HttpRequest&) { return list_campaigns(); });
    http_.route_prefix("GET", "/campaigns/", [this](const HttpRequest& req) {
        return campaign_route(req);
    });
    http_.route("GET", "/fleet",
                [this](const HttpRequest&) { return fleet_view(); });
    http_.route("GET", "/healthz",
                [this](const HttpRequest&) { return healthz(); });
    http_.route("GET", "/", [](const HttpRequest&) {
        return HttpResponse{
            200, "text/plain",
            "statfi service\n"
            "  POST /campaigns                  submit a campaign recipe\n"
            "  GET  /campaigns                  list jobs\n"
            "  GET  /campaigns/<id>/status      job status JSON\n"
            "  GET  /campaigns/<id>/metrics     job Prometheus gauges\n"
            "  GET  /campaigns/<id>/events      campaign event log (JSONL;\n"
            "                                   ?follow=1 tails it live)\n"
            "  GET  /campaigns/<id>/history     durable metrics history\n"
            "  GET  /campaigns/<id>/trace       merged fleet Chrome trace\n"
            "  GET  /campaigns/<id>/report.html observatory report\n"
            "  GET  /campaigns/<id>/result.json merged result document\n"
            "  GET  /fleet                      all jobs + live progress\n"
            "  GET  /healthz                    liveness + queue depth\n"};
    });
}

ServiceDaemon::~ServiceDaemon() { stop(); }

void ServiceDaemon::start() {
    http_.start();
    scheduler_.start();
}

void ServiceDaemon::stop() {
    http_.stop();
    scheduler_.stop();
}

HttpResponse ServiceDaemon::post_campaign(const HttpRequest& req) {
    Submission sub;
    try {
        sub = parse_submission(req.body);
    } catch (const std::invalid_argument& e) {
        return HttpResponse{400, "text/plain", std::string(e.what()) + "\n"};
    }
    Job job;
    job.recipe = sub.recipe;
    job.shards = sub.shards == 0 ? options_.default_shards : sub.shards;
    job.recipe_json = canonical_recipe_json(job.recipe);
    job.fingerprint = recipe_fingerprint(job.recipe);

    // An identical recipe already queued or running: point the client at
    // it rather than racing two workers over one cache entry. (Terminal
    // jobs do NOT dedupe — resubmitting a finished recipe creates a new
    // job that completes from the cache, which is the cache-hit path.)
    if (const auto active = queue_.active_with_fingerprint(job.fingerprint)) {
        job.id = *active;
        log_.job_submitted(job, /*deduplicated=*/true,
                           cache_.complete(job.fingerprint));
        std::ostringstream out;
        report::JsonWriter json(out, 0);
        json.begin_object()
            .field("id", *active)
            .field("fingerprint", job.fingerprint)
            .field("deduplicated", true)
            .end_object();
        return json_response(200, out.str());
    }

    const bool cached = cache_.complete(job.fingerprint);
    const std::uint64_t id = queue_.submit(job);
    job.id = id;
    log_.job_submitted(job, /*deduplicated=*/false, cached);
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object()
        .field("id", id)
        .field("fingerprint", job.fingerprint)
        .field("state", "queued")
        .field("cached", cached)
        .end_object();
    return json_response(202, out.str());
}

HttpResponse ServiceDaemon::list_campaigns() const {
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object().key("jobs").begin_array();
    for (const Job& job : queue_.snapshot()) {
        json.begin_object();
        job_json_fields(json, job);
        json.end_object();
    }
    json.end_array().end_object();
    return json_response(200, out.str());
}

HttpResponse ServiceDaemon::campaign_route(const HttpRequest& req) const {
    // Target shape: /campaigns/<id>[/<artifact>].
    const std::string rest = req.target.substr(std::string("/campaigns/").size());
    const std::size_t slash = rest.find('/');
    const std::string id_text = rest.substr(0, slash);
    const std::string sub =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos)
        return HttpResponse{404, "text/plain",
                            "campaign ids are decimal integers\n"};
    const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);
    const std::optional<Job> job = queue_.get(id);
    if (!job)
        return HttpResponse{404, "text/plain",
                            "no campaign with id " + id_text + "\n"};

    if (sub.empty() || sub == "status")
        return json_response(200, job_json(*job));
    if (sub == "metrics")
        return HttpResponse{200, "text/plain; version=0.0.4",
                            job_metrics(*job)};

    const std::string dir = cache_.dir_of(job->fingerprint);
    const auto serve_file = [](const std::string& path,
                               const std::string& content_type,
                               const std::string& missing) {
        std::string text;
        if (!io::read_file(path, text))
            return HttpResponse{404, "text/plain", missing};
        return HttpResponse{200, content_type, std::move(text)};
    };
    if (sub == "events") {
        const std::string path = ResultCache::events_path(dir);
        if (req.query_flag("follow")) return follow_events(id, path);
        return serve_file(path, "application/x-ndjson",
                          "no events recorded for this campaign yet\n");
    }
    if (sub == "history") {
        std::ostringstream out;
        try {
            telemetry::HistoryRing::load(ResultCache::history_path(dir))
                .write_json(out);
        } catch (const std::exception&) {
            return HttpResponse{404, "text/plain",
                                "no metrics history for this campaign yet\n"};
        }
        return HttpResponse{200, "application/json", out.str() + "\n"};
    }
    if (sub == "trace")
        return serve_file(ResultCache::trace_path(dir), "application/json",
                          "trace not ready: the campaign has not "
                          "completed\n");
    if (sub == "report.html")
        return serve_file(ResultCache::report_html_path(dir), "text/html",
                          "report not ready: the campaign has not "
                          "completed\n");
    if (sub == "result.json" || sub == "result")
        return serve_file(ResultCache::result_json_path(dir),
                          "application/json",
                          "result not ready: the campaign has not "
                          "completed\n");
    return HttpResponse{404, "text/plain",
                        "unknown campaign endpoint '" + sub +
                            "' (status|metrics|events|history|trace|"
                            "report.html|result.json)\n"};
}

HttpResponse ServiceDaemon::follow_events(std::uint64_t id,
                                          const std::string& path) const {
    // Chunked live tail: stream whatever the log already holds, then new
    // bytes as the scheduler appends them, and finish once the job turns
    // terminal (one final drain catches the tail written while we checked).
    // The sink goes false on client disconnect or server stop, and a safety
    // deadline bounds a follow of a job that never finishes.
    HttpResponse response(200, "application/x-ndjson", "");
    response.stream = [this, id, path](const telemetry::ChunkSink& sink) {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::minutes(10);
        std::size_t offset = 0;
        const auto drain = [&]() -> bool {  // false = client gone
            std::string text;
            if (!io::read_file(path, text) || text.size() <= offset)
                return true;
            const std::string_view fresh =
                std::string_view(text).substr(offset);
            offset = text.size();
            return sink(fresh);
        };
        for (;;) {
            if (!drain()) return;
            const std::optional<Job> job = queue_.get(id);
            if (!job || job->terminal()) {
                drain();
                return;
            }
            if (http_.stopping() ||
                std::chrono::steady_clock::now() > deadline)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    };
    return response;
}

HttpResponse ServiceDaemon::fleet_view() const {
    // One document a dashboard polls: every known job with its state and
    // convergence progress (live sampler stats while running, final
    // counters once terminal), plus worker utilization and cache totals.
    std::uint64_t cache_hits = 0;
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object().key("jobs").begin_array();
    for (const Job& job : queue_.snapshot()) {
        if (job.cache_hit) ++cache_hits;
        const std::optional<JobLiveStats> live =
            scheduler_.live_stats(job.id);
        const double faults =
            live ? static_cast<double>(live->faults)
                 : static_cast<double>(job.resumed + job.classified);
        const double critical = live ? static_cast<double>(live->critical)
                                     : static_cast<double>(job.critical);
        const WilsonInterval ci = wilson95(critical, faults);
        json.begin_object()
            .field("id", job.id)
            .field("state", to_string(job.state))
            .field("model", job.recipe.model)
            .field("fingerprint", job.fingerprint)
            .field("cache_hit", job.cache_hit)
            .field("shards_done", job.shards_done)
            .field("shards_total", job.shards_total)
            .field("injected", job.injected)
            .field("faults", static_cast<std::uint64_t>(faults))
            .field("p_hat", ci.p_hat)
            .field("ci_low", ci.low)
            .field("ci_high", ci.high)
            .field("faults_per_second", live ? live->faults_per_second : 0.0);
        if (job.trace_id != 0)
            json.field("trace_id", telemetry::format_trace_id(job.trace_id));
        if (!job.error.empty()) json.field("error", job.error);
        json.end_object();
    }
    json.end_array();
    json.key("workers")
        .begin_object()
        .field("total", static_cast<std::uint64_t>(options_.workers))
        .field("busy", static_cast<std::uint64_t>(scheduler_.active()))
        .end_object();
    json.key("totals")
        .begin_object()
        .field("jobs", static_cast<std::uint64_t>(queue_.size()))
        .field("queued", static_cast<std::uint64_t>(queue_.queued()))
        .field("completed", scheduler_.jobs_completed())
        .field("failed", scheduler_.jobs_failed())
        .field("cache_hits", cache_hits)
        .end_object();
    json.field("fleet", options_.fleet).end_object();
    return json_response(200, out.str());
}

HttpResponse ServiceDaemon::healthz() const {
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object()
        .field("status", "ok")
        .field("jobs", static_cast<std::uint64_t>(queue_.size()))
        .field("queued", static_cast<std::uint64_t>(queue_.queued()))
        .field("active", static_cast<std::uint64_t>(scheduler_.active()))
        .field("completed", scheduler_.jobs_completed())
        .field("failed", scheduler_.jobs_failed())
        .end_object();
    return json_response(200, out.str());
}

}  // namespace statfi::service

#pragma once
// ServiceDaemon: the long-running StatFI service — HTTP front end, durable
// job queue, worker-pool scheduler, and content-addressed result cache
// wired together under one state directory (`statfi serve`).
//
//   <state>/queue.sfiq     persistent job queue (framed, CRC'd, atomic)
//   <state>/cache/<fp>/    one content-addressed entry per recipe
//   <state>/service.jsonl  service event log (or --log-out's path)
//
// HTTP surface (loopback only, inherited from telemetry::HttpServer):
//   POST /campaigns                     submit a recipe (JSON body);
//                                       202 {id, fingerprint, cached} or
//                                       200 {id, deduplicated:true} when an
//                                       identical recipe is already in
//                                       flight; 400 names the first problem
//   GET  /campaigns                     all jobs, summarized
//   GET  /campaigns/<id>[/status]       one job's full JSON status
//   GET  /campaigns/<id>/metrics        per-job Prometheus gauges
//   GET  /campaigns/<id>/events         the campaign's JSONL event log;
//                                       ?follow=1 switches to a chunked
//                                       live tail that ends when the job
//                                       turns terminal
//   GET  /campaigns/<id>/history        durable metrics history (JSON view
//                                       of the cache entry's metrics.tsf)
//   GET  /campaigns/<id>/trace          merged Chrome trace (daemon spans +
//                                       every shard, one trace_id)
//   GET  /campaigns/<id>/report.html    self-contained observatory report
//   GET  /campaigns/<id>/result.json    deterministic merged result
//   GET  /fleet                         every known job with live progress,
//                                       worker utilization, cache totals
//   GET  /healthz                       liveness + queue depth
//   GET  /                              text index
//
// Artifact endpoints serve straight from the cache entry, so many clients
// can poll and download concurrently without touching the scheduler.

#include <cstdint>
#include <string>

#include "service/cache.hpp"
#include "service/events.hpp"
#include "service/queue.hpp"
#include "service/scheduler.hpp"
#include "telemetry/http.hpp"

namespace statfi::service {

struct DaemonOptions {
    std::uint16_t port = 0;          ///< 0 picks a free port
    std::size_t workers = 2;         ///< concurrent campaigns
    std::string state_dir;           ///< required
    std::uint32_t default_shards = 2;  ///< partition width per job
    std::size_t engine_threads = 1;  ///< engine workers per shard run
    std::string log_path;            ///< "" = <state>/service.jsonl
    std::size_t max_request_bytes = 1 << 20;
    /// Fleet observability plane (traces, metrics history, live stats).
    /// Off disables only observation — outcomes are bit-identical.
    bool fleet = true;
};

class ServiceDaemon {
public:
    /// Open the state directory (created if absent), load the queue —
    /// jobs accepted by a previous life come back Queued — and bind the
    /// port. Nothing runs until start().
    /// @throws std::invalid_argument when state_dir is empty and
    /// std::runtime_error when the state cannot be opened or the port
    /// cannot be bound.
    explicit ServiceDaemon(const DaemonOptions& options);
    ~ServiceDaemon();

    void start();
    /// Graceful shutdown: stop accepting HTTP, cancel in-flight shards
    /// (they checkpoint and requeue), join everything. Idempotent.
    void stop();

    [[nodiscard]] std::uint16_t port() const noexcept { return http_.port(); }
    [[nodiscard]] JobQueue& queue() noexcept { return queue_; }
    [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
    [[nodiscard]] const Scheduler& scheduler() const noexcept {
        return scheduler_;
    }

private:
    telemetry::HttpResponse post_campaign(const telemetry::HttpRequest& req);
    telemetry::HttpResponse list_campaigns() const;
    telemetry::HttpResponse campaign_route(
        const telemetry::HttpRequest& req) const;
    telemetry::HttpResponse fleet_view() const;
    telemetry::HttpResponse follow_events(std::uint64_t id,
                                          const std::string& path) const;
    telemetry::HttpResponse healthz() const;

    DaemonOptions options_;
    ResultCache cache_;
    JobQueue queue_;
    ServiceLog log_;
    Scheduler scheduler_;
    telemetry::HttpServer http_;
};

}  // namespace statfi::service

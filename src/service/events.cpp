#include "service/events.hpp"

#include "core/convergence.hpp"
#include "kernels/registry.hpp"

namespace statfi::service {

ServiceLog::ServiceLog(const std::string& path) : log_(path) {
    const core::CampaignHeaderInfo info{
        .command = "serve",
        .model = "service",
        .approach = "service",
        .dtype = "-",
        .policy = "-",
        .kernels = kernels::active().name,
    };
    core::emit_campaign_header(log_, info);
}

void ServiceLog::job_submitted(const Job& job, bool deduplicated,
                               bool cached) {
    telemetry::Event e("job_submitted");
    e.field("job", job.id)
        .field("fingerprint", job.fingerprint)
        .field("model", job.recipe.model)
        .field("approach", core::to_string(job.recipe.approach))
        .field("fault_model", job.recipe.fault_model.describe())
        .field("shards", static_cast<std::uint64_t>(job.shards))
        .field("deduplicated", deduplicated)
        .field("cached", cached);
    log_.emit(e);
}

void ServiceLog::job_scheduled(const Job& job, std::size_t worker) {
    telemetry::Event e("job_scheduled");
    e.field("job", job.id)
        .field("worker", static_cast<std::uint64_t>(worker))
        .field("fingerprint", job.fingerprint);
    log_.emit(e);
}

void ServiceLog::job_done(const Job& job, const std::string& outcome) {
    telemetry::Event e("job_done");
    e.field("job", job.id)
        .field("outcome", outcome)
        .field("fingerprint", job.fingerprint)
        .field("shards_done", job.shards_done)
        .field("cached_shards", job.cached_shards)
        .field("resumed", job.resumed)
        .field("classified", job.classified)
        .field("critical", job.critical);
    log_.emit(e);
}

}  // namespace statfi::service

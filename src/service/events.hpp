#pragma once
// Service event log: the daemon's own statfi.eventlog.v1 stream, recording
// the job lifecycle (submission -> scheduling -> completion) the way a
// campaign log records strata.
//
// Reusing the frozen eventlog schema — envelope, header-first invariant,
// per-event flush — means the existing tooling works unchanged: the log
// can be tailed live, validated by tools/check_eventlog.py (which knows
// the three job_* types), and correlated with per-campaign logs through
// the fingerprint each event carries. The header's `command` is "serve";
// recipe-shaped header fields that have no service-wide value are the
// schema's canonical defaults.
//
// Event types (validated in CI):
//   job_submitted  job, fingerprint, model, approach, fault_model, shards,
//                  deduplicated, cached
//   job_scheduled  job, worker, fingerprint
//   job_done       job, outcome ("complete"|"cached"|"failed"),
//                  fingerprint, shards_done, cached_shards, resumed,
//                  classified, critical

#include <string>

#include "service/queue.hpp"
#include "telemetry/eventlog.hpp"

namespace statfi::service {

class ServiceLog {
public:
    /// Open (truncate) the log at @p path and emit the service header.
    explicit ServiceLog(const std::string& path);

    void job_submitted(const Job& job, bool deduplicated, bool cached);
    void job_scheduled(const Job& job, std::size_t worker);
    void job_done(const Job& job, const std::string& outcome);

private:
    telemetry::EventLog log_;
};

}  // namespace statfi::service

#include "service/queue.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/artifact.hpp"
#include "service/recipe_json.hpp"
#include "telemetry/trace.hpp"

namespace statfi::service {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'I', 'Q'};
// v2 appends the per-job fleet trace_id. The queue is a local scratch
// artifact rewritten on every transition, so no cross-version loader: a v1
// file refuses loudly (read_framed's unsupported-version error) instead of
// silently dropping the field.
constexpr std::uint32_t kVersion = 2;

void put_u8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& out, const std::string& s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

class Reader {
public:
    explicit Reader(const std::string& payload) : payload_(payload) {}

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(payload_[pos_++]);
    }
    std::uint32_t u32() {
        need(sizeof(std::uint32_t));
        std::uint32_t v;
        std::memcpy(&v, payload_.data() + pos_, sizeof(v));
        pos_ += sizeof(v);
        return v;
    }
    std::uint64_t u64() {
        need(sizeof(std::uint64_t));
        std::uint64_t v;
        std::memcpy(&v, payload_.data() + pos_, sizeof(v));
        pos_ += sizeof(v);
        return v;
    }
    std::string str() {
        const std::uint32_t len = u32();
        need(len);
        std::string s = payload_.substr(pos_, len);
        pos_ += len;
        return s;
    }
    [[nodiscard]] bool done() const noexcept {
        return pos_ == payload_.size();
    }

private:
    void need(std::size_t n) const {
        if (pos_ + n > payload_.size())
            throw std::runtime_error("job queue: truncated payload");
    }
    const std::string& payload_;
    std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(JobState state) noexcept {
    switch (state) {
        case JobState::Queued: return "queued";
        case JobState::Planning: return "planning";
        case JobState::Running: return "running";
        case JobState::Merging: return "merging";
        case JobState::Done: return "done";
        case JobState::Failed: return "failed";
    }
    return "?";
}

JobQueue::JobQueue(std::string path) : path_(std::move(path)) {
    if (!std::filesystem::exists(path_)) return;
    const std::string payload =
        io::read_framed(path_, kMagic, kVersion, "job queue");
    Reader in(payload);
    next_id_ = in.u64();
    const std::uint32_t count = in.u32();
    jobs_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Job job;
        job.id = in.u64();
        const std::uint8_t raw_state = in.u8();
        if (raw_state > static_cast<std::uint8_t>(JobState::Failed))
            throw std::runtime_error("job queue: unknown job state " +
                                     std::to_string(raw_state));
        job.state = static_cast<JobState>(raw_state);
        job.shards = in.u32();
        job.fingerprint = in.str();
        job.recipe_json = in.str();
        job.cache_hit = in.u8() != 0;
        job.shards_total = in.u64();
        job.shards_done = in.u64();
        job.cached_shards = in.u64();
        job.resumed = in.u64();
        job.classified = in.u64();
        job.critical = in.u64();
        job.injected = in.u64();
        job.trace_id = in.u64();
        job.error = in.str();
        try {
            job.recipe = parse_submission(job.recipe_json).recipe;
        } catch (const std::invalid_argument& e) {
            throw std::runtime_error("job queue: job " +
                                     std::to_string(job.id) +
                                     " has an unreadable recipe: " + e.what());
        }
        // Whatever was in flight when the previous process died goes back
        // to the queue; the cache entry's shard results and journals carry
        // the actual progress, so the counters restart from zero.
        if (!job.terminal() && job.state != JobState::Queued) {
            job.state = JobState::Queued;
            job.shards_total = job.shards_done = job.cached_shards = 0;
            job.resumed = job.classified = job.critical = job.injected = 0;
        }
        jobs_.push_back(std::move(job));
    }
    if (!in.done()) throw std::runtime_error("job queue: trailing bytes");
    // The collapse above is itself a transition worth persisting, so a
    // crash loop cannot observe half-collapsed states.
    std::lock_guard<std::mutex> lock(mutex_);
    save_locked();
}

std::uint64_t JobQueue::submit(Job job) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.id = next_id_++;
    job.state = JobState::Queued;
    // Fleet trace identity, fixed for the job's whole life (restarts
    // included, since it persists with the queue). Derivation keeps
    // resubmissions of one recipe distinguishable (the id differs) while
    // needing no shared id allocator.
    if (job.trace_id == 0)
        job.trace_id = telemetry::derive_trace_id(
            "job:" + std::to_string(job.id) + ":" + job.fingerprint);
    const std::uint64_t id = job.id;
    jobs_.push_back(std::move(job));
    save_locked();
    return id;
}

std::optional<Job> JobQueue::claim() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Job& job : jobs_) {
        if (job.state != JobState::Queued) continue;
        job.state = JobState::Planning;
        save_locked();
        return job;
    }
    return std::nullopt;
}

void JobQueue::update(const Job& job) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Job& existing : jobs_) {
        if (existing.id != job.id) continue;
        existing = job;
        save_locked();
        return;
    }
    throw std::invalid_argument("job queue: no job with id " +
                                std::to_string(job.id));
}

std::optional<Job> JobQueue::get(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Job& job : jobs_)
        if (job.id == id) return job;
    return std::nullopt;
}

std::vector<Job> JobQueue::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_;
}

std::optional<std::uint64_t> JobQueue::active_with_fingerprint(
    const std::string& fingerprint) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Job& job : jobs_)
        if (!job.terminal() && job.fingerprint == fingerprint) return job.id;
    return std::nullopt;
}

std::size_t JobQueue::queued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const Job& job : jobs_)
        if (job.state == JobState::Queued) ++n;
    return n;
}

std::size_t JobQueue::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

void JobQueue::save_locked() const {
    std::string payload;
    put_u64(payload, next_id_);
    put_u32(payload, static_cast<std::uint32_t>(jobs_.size()));
    for (const Job& job : jobs_) {
        put_u64(payload, job.id);
        put_u8(payload, static_cast<std::uint8_t>(job.state));
        put_u32(payload, job.shards);
        put_str(payload, job.fingerprint);
        put_str(payload, job.recipe_json);
        put_u8(payload, job.cache_hit ? 1 : 0);
        put_u64(payload, job.shards_total);
        put_u64(payload, job.shards_done);
        put_u64(payload, job.cached_shards);
        put_u64(payload, job.resumed);
        put_u64(payload, job.classified);
        put_u64(payload, job.critical);
        put_u64(payload, job.injected);
        put_u64(payload, job.trace_id);
        put_str(payload, job.error);
    }
    io::write_framed_atomic(path_, kMagic, kVersion, payload);
}

}  // namespace statfi::service

#pragma once
// Persistent job queue: the daemon's crash-safe record of every accepted
// campaign submission.
//
// Durability discipline matches the repo's other artifacts (DESIGN.md §16):
// the whole queue is one framed "SFIQ" file ([magic][version][payload]
// [CRC32], written via temp-file + rename), rewritten atomically on every
// state transition. A reader therefore sees either the previous complete
// queue or the new one — never a torn file — and any bit rot is caught by
// the frame checksum at load. The queue is small (jobs, not items), so the
// whole-file rewrite costs microseconds; per-item durability lives where
// it belongs, in the shard runners' checkpoint journals.
//
// Restart semantics: non-terminal states (Planning/Running/Merging)
// collapse back to Queued on load — whatever was in flight when the
// process died is simply re-claimed. No work is lost or repeated because
// the real progress lives in the cache entry's shard results and journals:
// the re-run skips valid shard results and resumes interrupted ones.
//
// Recipes persist as their canonical JSON (service/recipe_json) and are
// re-parsed on load, so the queue file never encodes recipe structure
// twice and a queue written by one daemon version rehydrates exactly like
// a fresh submission.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "shard/manifest.hpp"

namespace statfi::service {

enum class JobState : std::uint8_t {
    Queued = 0,
    Planning = 1,  ///< claimed; freezing the manifest
    Running = 2,   ///< executing shards
    Merging = 3,   ///< all shards done; merging + writing artifacts
    Done = 4,
    Failed = 5,
};

const char* to_string(JobState state) noexcept;

struct Job {
    std::uint64_t id = 0;
    std::string fingerprint;   ///< recipe content address (cache key)
    std::string recipe_json;   ///< canonical recipe JSON (persisted form)
    shard::CampaignRecipe recipe;
    std::uint32_t shards = 2;  ///< requested partition width
    JobState state = JobState::Queued;
    /// Fleet trace id (DESIGN.md decision 18): assigned at submission,
    /// persisted so a restarted daemon resumes the job under the SAME
    /// trace. 0 only for jobs queued before the fleet plane existed.
    std::uint64_t trace_id = 0;

    // Progress/outcome counters (reset to zero when a restart re-queues).
    bool cache_hit = false;           ///< completed with zero inference
    std::uint64_t shards_total = 0;
    std::uint64_t shards_done = 0;
    std::uint64_t cached_shards = 0;  ///< shard results reused from the cache
    std::uint64_t resumed = 0;        ///< items replayed from journals
    std::uint64_t classified = 0;     ///< items newly classified
    std::uint64_t critical = 0;
    std::uint64_t injected = 0;       ///< total items of the campaign
    std::string error;                ///< Failed: what()

    [[nodiscard]] bool terminal() const noexcept {
        return state == JobState::Done || state == JobState::Failed;
    }
};

class JobQueue {
public:
    /// Open (or create) the queue persisted at @p path. @throws
    /// std::runtime_error when an existing file is corrupt — a damaged
    /// queue must stop the daemon loudly, not silently drop jobs.
    explicit JobQueue(std::string path);

    /// Append @p job (id assigned here), persist, return the id.
    std::uint64_t submit(Job job);

    /// Claim the oldest Queued job: its state becomes Planning, the queue
    /// persists, and a copy is returned. Empty when nothing is queued.
    std::optional<Job> claim();

    /// Store @p job back by id (state transitions, counters) and persist.
    void update(const Job& job);

    [[nodiscard]] std::optional<Job> get(std::uint64_t id) const;
    [[nodiscard]] std::vector<Job> snapshot() const;

    /// The id of a non-terminal job with @p fingerprint, if any — the
    /// daemon folds duplicate in-flight submissions onto it instead of
    /// racing two workers over one cache entry.
    [[nodiscard]] std::optional<std::uint64_t> active_with_fingerprint(
        const std::string& fingerprint) const;

    [[nodiscard]] std::size_t queued() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void save_locked() const;

    mutable std::mutex mutex_;
    std::string path_;
    std::vector<Job> jobs_;
    std::uint64_t next_id_ = 1;
};

}  // namespace statfi::service

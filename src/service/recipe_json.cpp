#include "service/recipe_json.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "models/registry.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace statfi::service {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("recipe: " + what);
}

std::string need_str(const std::string& key, const report::JsonValue& v) {
    if (v.type != report::JsonValue::Type::String)
        fail("'" + key + "' must be a string");
    return v.string;
}

double need_num(const std::string& key, const report::JsonValue& v) {
    if (v.type != report::JsonValue::Type::Number)
        fail("'" + key + "' must be a number");
    return v.number;
}

bool need_bool(const std::string& key, const report::JsonValue& v) {
    if (v.type != report::JsonValue::Type::Bool)
        fail("'" + key + "' must be a boolean");
    return v.boolean;
}

std::uint64_t need_uint(const std::string& key, const report::JsonValue& v) {
    const double n = need_num(key, v);
    if (n < 0 || n != std::floor(n))
        fail("'" + key + "' must be a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

core::ClassificationPolicy parse_policy(const std::string& s) {
    if (s == "any") return core::ClassificationPolicy::AnyMisprediction;
    if (s == "golden") return core::ClassificationPolicy::GoldenMismatch;
    if (s == "drop") return core::ClassificationPolicy::AccuracyDrop;
    fail("unknown policy '" + s + "' (expected any|golden|drop)");
}

const char* policy_name(core::ClassificationPolicy policy) {
    switch (policy) {
        case core::ClassificationPolicy::AnyMisprediction: return "any";
        case core::ClassificationPolicy::GoldenMismatch: return "golden";
        case core::ClassificationPolicy::AccuracyDrop: return "drop";
    }
    return "any";
}

fault::DataType parse_dtype(const std::string& s) {
    if (s == "fp32") return fault::DataType::Float32;
    if (s == "fp16") return fault::DataType::Float16;
    if (s == "bf16") return fault::DataType::BFloat16;
    if (s == "int8") return fault::DataType::Int8;
    fail("unknown format '" + s + "' (expected fp32|fp16|bf16|int8)");
}

}  // namespace

Submission parse_submission(const std::string& body) {
    // Submissions are small by construction; a tight per-parse bound keeps
    // a hostile body from costing anything before it is rejected.
    report::JsonParseLimits limits;
    limits.max_depth = 8;
    limits.max_bytes = 64 * 1024;
    report::JsonValue doc;
    try {
        doc = report::parse_json(body, limits);
    } catch (const std::runtime_error& e) {
        fail(e.what());
    }
    if (!doc.is_object()) fail("the submission must be a JSON object");

    Submission sub;
    shard::CampaignRecipe& r = sub.recipe;
    bool approach_given = false;
    // "format" and "dtype" name the same field; remember which spellings
    // appeared so a submission saying both (with different values) is a
    // contradiction, not a silent last-one-wins.
    bool dtype_given = false, format_given = false;
    fault::DataType dtype_value = fault::DataType::Float32;
    fault::DataType format_value = fault::DataType::Float32;
    for (const auto& [key, value] : doc.object) {
        if (key == "model") {
            r.model = need_str(key, value);
        } else if (key == "approach") {
            try {
                r.approach =
                    core::approach_from_string(need_str(key, value));
            } catch (const std::invalid_argument& e) {
                fail(e.what());
            }
            approach_given = true;
        } else if (key == "fault_model") {
            try {
                r.fault_model =
                    fault::fault_model_from_string(need_str(key, value));
            } catch (const std::invalid_argument& e) {
                fail(e.what());
            }
        } else if (key == "mbu_k") {
            r.fault_model.mbu_k = static_cast<int>(need_uint(key, value));
        } else if (key == "margin") {
            r.error_margin = need_num(key, value);
        } else if (key == "confidence") {
            r.confidence = need_num(key, value);
        } else if (key == "images") {
            r.images = static_cast<std::int64_t>(need_uint(key, value));
        } else if (key == "policy") {
            r.policy = parse_policy(need_str(key, value));
        } else if (key == "drop_threshold") {
            r.accuracy_drop_threshold = need_num(key, value);
        } else if (key == "train") {
            r.train = need_bool(key, value);
        } else if (key == "dtype") {
            dtype_value = parse_dtype(need_str(key, value));
            r.dtype = dtype_value;
            dtype_given = true;
        } else if (key == "format") {
            format_value = parse_dtype(need_str(key, value));
            r.dtype = format_value;
            format_given = true;
        } else if (key == "seed") {
            r.seed = need_uint(key, value);
        } else if (key == "clips") {
            if (!value.is_array()) fail("'clips' must be an array");
            for (const report::JsonValue& c : value.array) {
                if (!c.is_object())
                    fail("each clip must be {node, lo, hi}");
                fault::ClipRule rule;
                for (const auto& [ck, cv] : c.object) {
                    if (ck == "node") rule.node = need_str("clips.node", cv);
                    else if (ck == "lo")
                        rule.lo = static_cast<float>(need_num("clips.lo", cv));
                    else if (ck == "hi")
                        rule.hi = static_cast<float>(need_num("clips.hi", cv));
                    else
                        fail("unknown clip key '" + ck + "'");
                }
                if (rule.node.empty()) fail("each clip needs a 'node'");
                r.mitigation.clips.push_back(std::move(rule));
            }
        } else if (key == "tmr") {
            if (!value.is_array()) fail("'tmr' must be an array");
            for (const report::JsonValue& t : value.array) {
                if (t.type != report::JsonValue::Type::String)
                    fail("each tmr entry must be a layer name string");
                r.mitigation.tmr.push_back(fault::TmrRule{t.string});
            }
        } else if (key == "shards") {
            sub.shards = static_cast<std::uint32_t>(need_uint(key, value));
        } else {
            fail("unknown key '" + key + "'");
        }
    }

    if (dtype_given && format_given && dtype_value != format_value)
        fail("'format' and 'dtype' disagree (they are aliases)");

    // Cross-field validation — the same ranges the CLI enforces, so a
    // submission can never describe a campaign the CLI could not run.
    bool known_model = false;
    for (const auto& info : models::available_models())
        if (info.name == r.model) known_model = true;
    if (!known_model) fail("unknown model '" + r.model + "'");
    if (r.error_margin <= 0 || r.error_margin >= 1)
        fail("'margin' must be in (0,1)");
    if (r.confidence <= 0 || r.confidence >= 1)
        fail("'confidence' must be in (0,1)");
    if (r.images <= 0) fail("'images' must be positive");
    if (r.fault_model.kind == fault::FaultModelKind::MultiBitUpset &&
        (r.fault_model.mbu_k < 2 || r.fault_model.mbu_k > 16))
        fail("'mbu_k' must be in [2,16]");
    if (sub.shards > 4096) fail("'shards' must be at most 4096");
    // Data-aware planning needs single-bit weight strata; when the fault
    // model has none and none was asked for, fall back to layer-wise —
    // mirroring the CLI so the same submission and command line plan alike.
    if (!approach_given &&
        (r.fault_model.kind == fault::FaultModelKind::ActivationBitFlip ||
         r.fault_model.kind == fault::FaultModelKind::MultiBitUpset))
        r.approach = core::Approach::LayerWise;
    else if (!approach_given)
        r.approach = core::Approach::DataAware;
    return sub;
}

std::string canonical_recipe_json(const shard::CampaignRecipe& recipe) {
    std::ostringstream out;
    report::JsonWriter json(out, 0);
    json.begin_object()
        .field("model", recipe.model)
        .field("approach", core::to_string(recipe.approach))
        .field("fault_model", recipe.fault_model.describe())
        .field("margin", recipe.error_margin)
        .field("confidence", recipe.confidence)
        .field("images", static_cast<std::int64_t>(recipe.images))
        .field("policy", policy_name(recipe.policy))
        .field("drop_threshold", recipe.accuracy_drop_threshold)
        .field("train", recipe.train)
        .field("dtype", fault::to_string(recipe.dtype))
        .field("seed", recipe.seed);
    json.key("clips").begin_array();
    for (const fault::ClipRule& c : recipe.mitigation.clips)
        json.begin_object()
            .field("node", c.node)
            .field("lo", static_cast<double>(c.lo))
            .field("hi", static_cast<double>(c.hi))
            .end_object();
    json.end_array();
    json.key("tmr").begin_array();
    for (const fault::TmrRule& t : recipe.mitigation.tmr) json.value(t.layer);
    json.end_array().end_object();
    // No finish(): the canonical form is the document alone, no newline.
    return out.str();
}

std::string recipe_fingerprint(const shard::CampaignRecipe& recipe) {
    const std::string canon = canonical_recipe_json(recipe);
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
    for (const char c : canon) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[h & 0xF];
        h >>= 4;
    }
    return out;
}

}  // namespace statfi::service

#pragma once
// Recipe wire format: the service boundary between untrusted JSON and the
// typed shard::CampaignRecipe every other subsystem consumes.
//
// Three jobs, one canonicalization:
//   * parse_submission — decode a POST /campaigns body. Strict by design:
//     unknown keys, wrong value types, and out-of-range parameters are all
//     rejected with an actionable message, because a silently-defaulted
//     typo ("margni": 0.05) would run a campaign the client did not ask
//     for and cache it under the wrong identity.
//   * canonical_recipe_json — re-serialize a recipe with a FIXED key order
//     and the canonical to_string() spellings, so two submissions that
//     describe the same campaign (whatever their key order or formatting)
//     produce identical bytes. The canonical form round-trips through
//     parse_submission, which is how the persistent job queue rehydrates
//     recipes after a daemon restart.
//   * recipe_fingerprint — the content address of a campaign: a 64-bit
//     FNV-1a over the canonical JSON, printed as 16 hex digits. The result
//     cache keys every artifact (manifest, shard results, merged report)
//     on it, so resubmitting an identical recipe finds completed work.
//
// Deliberately NOT in the fingerprint: the requested shard count. The
// partition width never changes a merged result (the shard merge identity
// contract), so recipes differing only in `shards` share one cache entry —
// the entry's frozen manifest pins whichever partition ran first.

#include <cstdint>
#include <string>

#include "shard/manifest.hpp"

namespace statfi::service {

/// One decoded POST /campaigns body: the recipe plus service-level knobs
/// that are not part of the campaign identity.
struct Submission {
    shard::CampaignRecipe recipe;
    std::uint32_t shards = 0;  ///< requested partition width; 0 = daemon default
};

/// Decode an untrusted submission document. Accepted keys: model, approach,
/// fault_model, mbu_k, margin, confidence, images, policy, drop_threshold,
/// train, dtype, seed, clips, tmr, shards — all optional except model's
/// value having to name a registered topology. Unknown keys are rejected.
/// When `approach` is absent and the fault model has no single-bit weight
/// strata (activation, mbu), the layer-wise planner is selected, mirroring
/// the CLI's fallback.
/// @throws std::invalid_argument describing the first violation.
Submission parse_submission(const std::string& body);

/// Compact, key-ordered, canonically-spelled JSON of @p recipe. Identical
/// campaigns serialize to identical bytes; the output re-parses through
/// parse_submission.
std::string canonical_recipe_json(const shard::CampaignRecipe& recipe);

/// 16-hex-digit content address: FNV-1a 64 over canonical_recipe_json.
std::string recipe_fingerprint(const shard::CampaignRecipe& recipe);

}  // namespace statfi::service

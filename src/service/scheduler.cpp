#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <utility>

#include "core/convergence.hpp"
#include "core/engine.hpp"
#include "core/estimator.hpp"
#include "io/atomic_file.hpp"
#include "kernels/registry.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/observatory.hpp"
#include "service/recipe_json.hpp"
#include "shard/driver.hpp"
#include "shard/fixture.hpp"
#include "shard/merge.hpp"
#include "shard/runner.hpp"

namespace statfi::service {

namespace {

namespace fs = std::filesystem;

core::CampaignHeaderInfo header_of(const shard::CampaignRecipe& recipe) {
    core::CampaignHeaderInfo info;
    info.command = "serve";
    info.model = recipe.model;
    info.approach = core::to_string(recipe.approach);
    info.dtype = fault::to_string(recipe.dtype);
    info.policy = core::to_string(recipe.policy);
    info.seed = recipe.seed;
    info.images = recipe.images;
    info.confidence = recipe.confidence;
    info.error_margin = recipe.error_margin;
    info.fault_model = recipe.fault_model.describe();
    info.mitigation = recipe.mitigation.describe();
    info.kernels = kernels::active().name;
    return info;
}

/// The deterministic merged-result document. Field names and spellings
/// match the CLI's --json documents exactly, so "service result equals
/// direct CLI result" is a plain comparison of the shared keys; wall
/// times, kernel names, and anything else non-deterministic is left out,
/// making the file byte-stable across reruns of the same recipe.
void write_result_json(const std::string& path,
                       const shard::ShardManifest& manifest,
                       const shard::MergedCampaign& merged,
                       const fault::FaultUniverse& universe) {
    io::write_file_atomic(path, [&](std::ostream& out) {
        const shard::CampaignRecipe& recipe = manifest.recipe;
        report::JsonWriter json(out);
        json.begin_object()
            .field("model", recipe.model)
            .field("approach", core::to_string(recipe.approach))
            .field("fault_model", recipe.fault_model.describe())
            .field("mitigation", recipe.mitigation.describe())
            .field("dtype", fault::to_string(recipe.dtype))
            .field("policy", core::to_string(recipe.policy))
            .field("seed", recipe.seed)
            .field("images", static_cast<std::int64_t>(recipe.images))
            .field("universe_size", universe.total());
        if (merged.kind == shard::CampaignKind::Census) {
            json.field("total_injected", universe.total())
                .field("total_critical",
                       merged.outcomes.critical_count(0, universe.total()))
                .field("critical_rate",
                       merged.outcomes.network_critical_rate());
            json.key("layers").begin_array();
            for (int l = 0; l < universe.layer_count(); ++l)
                json.begin_object()
                    .field("layer", l)
                    .field("name", universe.layer(l).name)
                    .field("critical_rate",
                           merged.outcomes.layer_critical_rate(universe, l))
                    .end_object();
            json.end_array();
        } else {
            core::EstimatorConfig est;
            est.confidence = recipe.confidence;
            const auto network =
                core::estimate_network(universe, merged.result, est);
            json.field("total_injected", merged.result.total_injected())
                .field("total_critical", merged.result.total_critical());
            json.key("network")
                .begin_object()
                .field("rate", network.rate)
                .field("margin", network.margin)
                .end_object();
            json.key("layers").begin_array();
            for (const auto& le :
                 core::estimate_layers(universe, merged.result, est))
                json.begin_object()
                    .field("layer", le.layer)
                    .field("name", universe.layer(le.layer).name)
                    .field("rate", le.estimate.rate)
                    .field("margin", le.estimate.margin)
                    .field("injected", le.estimate.injected)
                    .end_object();
            json.end_array();
        }
        json.end_object();
        json.finish();
    });
}

}  // namespace

Scheduler::Scheduler(JobQueue& queue, ResultCache& cache, ServiceLog* log,
                     SchedulerOptions options)
    : queue_(queue), cache_(cache), log_(log), options_(options) {}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
    if (!workers_.empty()) return;  // already started
    const std::size_t pool = options_.workers == 0 ? 1 : options_.workers;
    workers_.reserve(pool);
    for (std::size_t w = 0; w < pool; ++w)
        workers_.emplace_back(&Scheduler::worker_loop, this, w);
}

void Scheduler::stop() {
    cancel_.request_stop();
    for (std::thread& t : workers_)
        if (t.joinable()) t.join();
    workers_.clear();
}

void Scheduler::worker_loop(std::size_t worker) {
    while (!stopping()) {
        std::optional<Job> job = queue_.claim();
        if (!job) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        active_.fetch_add(1, std::memory_order_relaxed);
        run_job(std::move(*job), worker);
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
}

void Scheduler::run_job(Job job, std::size_t worker) {
    if (log_) log_->job_scheduled(job, worker);
    const auto job_start = std::chrono::steady_clock::now();
    try {
        const std::string dir = cache_.ensure_dir(job.fingerprint);
        if (!fs::exists(ResultCache::recipe_path(dir)))
            io::write_file_atomic(
                ResultCache::recipe_path(dir),
                [&](std::ostream& out) { out << job.recipe_json << "\n"; });

        // Full cache hit: the merged artifacts already exist — complete the
        // job without a fixture, a golden pass, or a single injection.
        if (cache_.complete(job.fingerprint)) {
            const auto manifest =
                shard::ShardManifest::load(ResultCache::manifest_path(dir));
            job.shards_total = manifest.shards.size();
            job.shards_done = job.cached_shards = job.shards_total;
            job.injected = manifest.item_count;
            job.cache_hit = true;
            job.state = JobState::Done;
            queue_.update(job);
            completed_.fetch_add(1, std::memory_order_relaxed);
            if (log_) log_->job_done(job, "cached");
            return;
        }

        if (stopping()) {  // shutdown won the race; hand the job back
            job.state = JobState::Queued;
            queue_.update(job);
            return;
        }

        // Freeze (or reuse) the manifest. Reusing skips planning — the
        // data-aware analysis and its golden pass — AND pins the partition
        // the cached shard results were produced under, so a resubmission
        // with a different requested width still finds them.
        auto fx = shard::build_fixture(job.recipe);
        const std::string manifest_path = ResultCache::manifest_path(dir);
        shard::ShardManifest manifest;
        bool frozen = false;
        if (fs::exists(manifest_path)) {
            try {
                manifest = shard::ShardManifest::load(manifest_path);
                frozen = true;
            } catch (const std::exception&) {
                frozen = false;  // damaged entry: re-freeze below
            }
        }
        if (!frozen) {
            core::CampaignEngine engine(fx.net, fx.eval, fx.config);
            manifest.recipe = job.recipe;
            manifest.fingerprint =
                engine.fingerprint(fx.universe, job.recipe.model);
            manifest.layer_count =
                static_cast<std::uint32_t>(fx.universe.layer_count());
            if (job.recipe.approach == core::Approach::Exhaustive) {
                manifest.plan.approach = core::Approach::Exhaustive;
                manifest.item_count = fx.universe.total();
            } else {
                manifest.plan =
                    engine.plan(fx.universe, shard::campaign_spec(job.recipe));
                manifest.item_count = manifest.plan.total_sample_size();
            }
            const std::uint64_t want = job.shards == 0 ? 1 : job.shards;
            manifest.shards = shard::partition_items(
                manifest.item_count,
                static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(want, manifest.item_count)));
            manifest.save(manifest_path);
        }

        // The per-campaign event log: header + plan now, shard lifecycle
        // as it happens, strata + end after the merge. Scoped so the file
        // is closed before the report renderer reads it back.
        const std::string events_path = ResultCache::events_path(dir);
        {
            telemetry::EventLog events(events_path);
            core::emit_campaign_header(events, header_of(job.recipe));
            if (manifest.kind() == shard::CampaignKind::Census)
                core::emit_plan_event_census(events, fx.universe);
            else
                core::emit_plan_event(events, fx.universe, manifest.plan);

            job.state = JobState::Running;
            job.shards_total = manifest.shards.size();
            job.injected = manifest.item_count;
            queue_.update(job);

            for (std::uint32_t k = 0; k < manifest.shards.size(); ++k) {
                if (stopping()) {
                    job.state = JobState::Queued;
                    queue_.update(job);
                    return;
                }
                telemetry::Event begin("shard_begin");
                begin.field("shard", static_cast<std::uint64_t>(k))
                    .field("range_begin", manifest.shards[k].begin)
                    .field("range_end", manifest.shards[k].end);
                events.emit(begin);
                if (shard::shard_result_valid(manifest, manifest_path, k)) {
                    ++job.cached_shards;
                    ++job.shards_done;
                    queue_.update(job);
                    telemetry::Event end("shard_end");
                    end.field("shard", static_cast<std::uint64_t>(k))
                        .field("complete", true)
                        .field("resumed", std::uint64_t{0})
                        .field("classified", std::uint64_t{0})
                        .field("cached", true);
                    events.emit(end);
                    continue;
                }
                shard::ShardRunOptions run_options;
                run_options.shard = k;
                run_options.resume = true;
                run_options.threads = options_.engine_threads;
                run_options.cancel = &cancel_;
                const shard::ShardRunReport run =
                    shard::run_shard(manifest, manifest_path, run_options);
                telemetry::Event end("shard_end");
                end.field("shard", static_cast<std::uint64_t>(k))
                    .field("complete", run.complete)
                    .field("resumed", run.resumed)
                    .field("classified", run.classified)
                    .field("cached", false);
                events.emit(end);
                if (!run.complete) {
                    // Interrupted by shutdown: the engine already flushed
                    // its journal; the job goes back to the queue and the
                    // next claim resumes exactly here.
                    job.state = JobState::Queued;
                    queue_.update(job);
                    return;
                }
                job.resumed += run.resumed;
                job.classified += run.classified;
                ++job.shards_done;
                queue_.update(job);
            }

            job.state = JobState::Merging;
            queue_.update(job);
            const shard::MergedCampaign merged =
                shard::merge_shards(manifest, manifest_path);
            std::uint64_t critical = 0;
            if (merged.kind == shard::CampaignKind::Census) {
                core::emit_census_strata(events, fx.universe, merged.outcomes,
                                         job.recipe.confidence);
                critical =
                    merged.outcomes.critical_count(0, fx.universe.total());
                merged.outcomes.save(ResultCache::outcomes_path(dir));
            } else {
                core::emit_final_strata(events, merged.result);
                critical = merged.result.total_critical();
            }
            core::emit_campaign_end(
                events, true, manifest.item_count, critical,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job_start)
                    .count());
            write_result_json(ResultCache::result_json_path(dir), manifest,
                              merged, fx.universe);
            job.critical = critical;
        }

        // Render the report from the log just written — the same pipeline
        // `statfi report --log` uses, so service reports and CLI reports
        // are one code path.
        std::string log_text;
        io::read_file(events_path, log_text);
        const report::ObservatoryModel model =
            report::model_from_events(report::parse_json_lines(log_text));
        const std::string html = report::render_observatory_html(
            model, model.model + " " + model.command + " — statfi observatory");
        io::write_file_atomic(ResultCache::report_html_path(dir),
                              [&](std::ostream& out) { out << html; });

        job.state = JobState::Done;
        queue_.update(job);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (log_) log_->job_done(job, "complete");
    } catch (const std::exception& e) {
        job.state = JobState::Failed;
        job.error = e.what();
        queue_.update(job);
        failed_.fetch_add(1, std::memory_order_relaxed);
        if (log_) log_->job_done(job, "failed");
    }
}

}  // namespace statfi::service

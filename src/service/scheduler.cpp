#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/convergence.hpp"
#include "core/engine.hpp"
#include "core/estimator.hpp"
#include "io/atomic_file.hpp"
#include "kernels/registry.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/observatory.hpp"
#include "service/recipe_json.hpp"
#include "shard/driver.hpp"
#include "shard/fixture.hpp"
#include "shard/merge.hpp"
#include "shard/runner.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/history.hpp"
#include "telemetry/session.hpp"
#include "telemetry/trace.hpp"

namespace statfi::service {

namespace {

namespace fs = std::filesystem;

core::CampaignHeaderInfo header_of(const shard::CampaignRecipe& recipe) {
    core::CampaignHeaderInfo info;
    info.command = "serve";
    info.model = recipe.model;
    info.approach = core::to_string(recipe.approach);
    info.dtype = fault::to_string(recipe.dtype);
    info.policy = core::to_string(recipe.policy);
    info.seed = recipe.seed;
    info.images = recipe.images;
    info.confidence = recipe.confidence;
    info.error_margin = recipe.error_margin;
    info.fault_model = recipe.fault_model.describe();
    info.mitigation = recipe.mitigation.describe();
    info.kernels = kernels::active().name;
    return info;
}

/// The deterministic merged-result document. Field names and spellings
/// match the CLI's --json documents exactly, so "service result equals
/// direct CLI result" is a plain comparison of the shared keys; wall
/// times, kernel names, and anything else non-deterministic is left out,
/// making the file byte-stable across reruns of the same recipe.
void write_result_json(const std::string& path,
                       const shard::ShardManifest& manifest,
                       const shard::MergedCampaign& merged,
                       const fault::FaultUniverse& universe) {
    io::write_file_atomic(path, [&](std::ostream& out) {
        const shard::CampaignRecipe& recipe = manifest.recipe;
        report::JsonWriter json(out);
        json.begin_object()
            .field("model", recipe.model)
            .field("approach", core::to_string(recipe.approach))
            .field("fault_model", recipe.fault_model.describe())
            .field("mitigation", recipe.mitigation.describe())
            .field("dtype", fault::to_string(recipe.dtype))
            .field("policy", core::to_string(recipe.policy))
            .field("seed", recipe.seed)
            .field("images", static_cast<std::int64_t>(recipe.images))
            .field("universe_size", universe.total());
        if (merged.kind == shard::CampaignKind::Census) {
            json.field("total_injected", universe.total())
                .field("total_critical",
                       merged.outcomes.critical_count(0, universe.total()))
                .field("critical_rate",
                       merged.outcomes.network_critical_rate());
            json.key("layers").begin_array();
            for (int l = 0; l < universe.layer_count(); ++l)
                json.begin_object()
                    .field("layer", l)
                    .field("name", universe.layer(l).name)
                    .field("critical_rate",
                           merged.outcomes.layer_critical_rate(universe, l))
                    .end_object();
            json.end_array();
        } else {
            core::EstimatorConfig est;
            est.confidence = recipe.confidence;
            const auto network =
                core::estimate_network(universe, merged.result, est);
            json.field("total_injected", merged.result.total_injected())
                .field("total_critical", merged.result.total_critical());
            json.key("network")
                .begin_object()
                .field("rate", network.rate)
                .field("margin", network.margin)
                .end_object();
            json.key("layers").begin_array();
            for (const auto& le :
                 core::estimate_layers(universe, merged.result, est))
                json.begin_object()
                    .field("layer", le.layer)
                    .field("name", universe.layer(le.layer).name)
                    .field("rate", le.estimate.rate)
                    .field("margin", le.estimate.margin)
                    .field("injected", le.estimate.injected)
                    .end_object();
            json.end_array();
        }
        json.end_object();
        json.finish();
    });
}

/// Fleet history sampler: one background thread per running job that
/// periodically folds the active shard Session's counters (plus the totals
/// of already-finished shards) into a HistoryRing and persists it to the
/// cache entry's metrics.tsf — the durable, crash-survivable progress curve
/// behind /campaigns/<id>/history and `statfi report` sparklines. The same
/// sample feeds the scheduler's live-stats registry for /fleet.
///
/// Thread-safety: the worker PRE-FREEZES each shard session's registry with
/// the exact worker count the engine will resolve before publishing the
/// session here, so sample() only ever snapshots a frozen registry — a
/// documented-safe concurrent read against the injection hot path.
class JobSampler {
public:
    using Publish = std::function<void(const JobLiveStats&)>;

    JobSampler(std::string history_path, Publish publish)
        : path_(std::move(history_path)),
          ring_(resume_ring(path_)),
          publish_(std::move(publish)),
          start_(std::chrono::steady_clock::now()) {
        const auto samples = ring_.samples();
        if (!samples.empty()) seconds_offset_ = samples.back().seconds;
        thread_ = std::thread([this] { loop(); });
    }

    JobSampler(const JobSampler&) = delete;
    JobSampler& operator=(const JobSampler&) = delete;
    ~JobSampler() { stop(); }

    /// Publish the session the next samples should read (nullptr detaches).
    void set_session(telemetry::Session* session) {
        std::lock_guard<std::mutex> lock(mutex_);
        session_ = session;
    }

    /// Fold a finishing shard's totals into the base and detach it — called
    /// by the worker BEFORE the shard Session is destroyed.
    void absorb(const telemetry::Session& session) {
        const Totals totals = totals_of(session.metrics().snapshot());
        std::lock_guard<std::mutex> lock(mutex_);
        session_ = nullptr;
        base_.add(totals);
    }

    /// Take one final sample, then join the thread. Idempotent.
    void stop() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopped_) return;
            stopped_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

private:
    struct Totals {
        double faults = 0, critical = 0, masked = 0, inferences = 0;
        double evaluate_seconds = 0;
        void add(const Totals& o) {
            faults += o.faults;
            critical += o.critical;
            masked += o.masked;
            inferences += o.inferences;
            evaluate_seconds += o.evaluate_seconds;
        }
    };

    static std::vector<std::string> series_names() {
        return {"faults", "critical", "masked", "inferences",
                "evaluate_seconds"};
    }

    /// A re-claimed job continues the history a previous life persisted —
    /// seconds stay monotonic via the offset captured in the constructor.
    /// Anything unreadable (absent, corrupt, older series set) starts fresh.
    static telemetry::HistoryRing resume_ring(const std::string& path) {
        try {
            telemetry::HistoryRing ring = telemetry::HistoryRing::load(path);
            if (ring.series() == series_names()) return ring;
        } catch (const std::exception&) {
        }
        return telemetry::HistoryRing(series_names());
    }

    static double counter_of(const telemetry::MetricsSnapshot& snap,
                             const char* name) {
        const telemetry::MetricValue* m = snap.find(name);
        return m ? static_cast<double>(m->counter) : 0.0;
    }

    static Totals totals_of(const telemetry::MetricsSnapshot& snap) {
        Totals t;
        t.faults = counter_of(snap, "statfi_faults_total");
        t.critical = counter_of(snap, "statfi_faults_critical_total");
        t.masked = counter_of(snap, "statfi_faults_masked_total");
        t.inferences = counter_of(snap, "statfi_inferences_total");
        if (const auto* h = snap.find("statfi_evaluate_seconds"))
            t.evaluate_seconds = h->sum;
        return t;
    }

    void sample() {
        Totals t;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            t = base_;
            if (session_) t.add(totals_of(session_->metrics().snapshot()));
        }
        const double run_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
        const double seconds = seconds_offset_ + run_seconds;
        ring_.append(seconds, {t.faults, t.critical, t.masked, t.inferences,
                               t.evaluate_seconds});
        try {
            ring_.save(path_);
        } catch (const std::exception&) {
            // History is advisory: a full disk must not fail the campaign.
        }
        if (publish_) {
            JobLiveStats live;
            live.seconds = seconds;
            live.faults = static_cast<std::uint64_t>(t.faults);
            live.critical = static_cast<std::uint64_t>(t.critical);
            live.inferences = static_cast<std::uint64_t>(t.inferences);
            live.faults_per_second =
                run_seconds > 0.0 ? t.faults / run_seconds : 0.0;
            publish_(live);
        }
    }

    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            cv_.wait_for(lock, std::chrono::milliseconds(200),
                         [this] { return stopped_; });
            const bool last = stopped_;
            lock.unlock();
            sample();  // stop() still gets a final, completed-totals sample
            if (last) return;
            lock.lock();
        }
    }

    std::string path_;
    telemetry::HistoryRing ring_;
    Publish publish_;
    std::chrono::steady_clock::time_point start_;
    double seconds_offset_ = 0.0;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopped_ = false;
    telemetry::Session* session_ = nullptr;
    Totals base_;
    std::thread thread_;
};

}  // namespace

Scheduler::Scheduler(JobQueue& queue, ResultCache& cache, ServiceLog* log,
                     SchedulerOptions options)
    : queue_(queue), cache_(cache), log_(log), options_(options) {}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
    if (!workers_.empty()) return;  // already started
    const std::size_t pool = options_.workers == 0 ? 1 : options_.workers;
    workers_.reserve(pool);
    for (std::size_t w = 0; w < pool; ++w)
        workers_.emplace_back(&Scheduler::worker_loop, this, w);
}

void Scheduler::stop() {
    cancel_.request_stop();
    for (std::thread& t : workers_)
        if (t.joinable()) t.join();
    workers_.clear();
}

void Scheduler::worker_loop(std::size_t worker) {
    while (!stopping()) {
        std::optional<Job> job = queue_.claim();
        if (!job) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        const std::uint64_t id = job->id;
        active_.fetch_add(1, std::memory_order_relaxed);
        run_job(std::move(*job), worker);
        active_.fetch_sub(1, std::memory_order_relaxed);
        // However the run ended (done, failed, requeued), the job is no
        // longer live on this worker.
        clear_live(id);
    }
}

std::optional<JobLiveStats> Scheduler::live_stats(std::uint64_t job_id) const {
    std::lock_guard<std::mutex> lock(live_mutex_);
    const auto it = live_.find(job_id);
    if (it == live_.end()) return std::nullopt;
    return it->second;
}

void Scheduler::publish_live(std::uint64_t job_id, const JobLiveStats& stats) {
    std::lock_guard<std::mutex> lock(live_mutex_);
    live_[job_id] = stats;
}

void Scheduler::clear_live(std::uint64_t job_id) {
    std::lock_guard<std::mutex> lock(live_mutex_);
    live_.erase(job_id);
}

void Scheduler::run_job(Job job, std::size_t worker) {
    if (log_) log_->job_scheduled(job, worker);
    const auto job_start = std::chrono::steady_clock::now();
    // Fleet plane (DESIGN.md decision 18): every observer of this job —
    // the daemon-side trace spans, the campaign event log, each in-process
    // shard session — shares the trace identity persisted at submission.
    // All of it only observes; with fleet off none of it exists and the
    // campaign outcome is bit-identical (tests/service/fleet_test).
    const bool fleet = options_.fleet && job.trace_id != 0;
    telemetry::TraceContext job_ctx;
    if (fleet) {
        job_ctx.trace_id = job.trace_id;
        job_ctx.span_id = telemetry::derive_trace_id(
            "daemon:job:" + std::to_string(job.id));
    }
    telemetry::TraceRecorder daemon_trace;
    telemetry::TraceRecorder* const tracer = fleet ? &daemon_trace : nullptr;
    if (fleet) daemon_trace.set_context(job_ctx);
    try {
        const std::string dir = cache_.ensure_dir(job.fingerprint);
        if (!fs::exists(ResultCache::recipe_path(dir)))
            io::write_file_atomic(
                ResultCache::recipe_path(dir),
                [&](std::ostream& out) { out << job.recipe_json << "\n"; });

        // Full cache hit: the merged artifacts already exist — complete the
        // job without a fixture, a golden pass, or a single injection.
        if (cache_.complete(job.fingerprint)) {
            const auto manifest =
                shard::ShardManifest::load(ResultCache::manifest_path(dir));
            job.shards_total = manifest.shards.size();
            job.shards_done = job.cached_shards = job.shards_total;
            job.injected = manifest.item_count;
            job.cache_hit = true;
            job.state = JobState::Done;
            queue_.update(job);
            completed_.fetch_add(1, std::memory_order_relaxed);
            if (log_) log_->job_done(job, "cached");
            return;
        }

        if (stopping()) {  // shutdown won the race; hand the job back
            job.state = JobState::Queued;
            queue_.update(job);
            return;
        }

        // Freeze (or reuse) the manifest. Reusing skips planning — the
        // data-aware analysis and its golden pass — AND pins the partition
        // the cached shard results were produced under, so a resubmission
        // with a different requested width still finds them.
        telemetry::Span plan_span(tracer, "service_plan");
        auto fx = shard::build_fixture(job.recipe);
        const std::string manifest_path = ResultCache::manifest_path(dir);
        shard::ShardManifest manifest;
        bool frozen = false;
        if (fs::exists(manifest_path)) {
            try {
                manifest = shard::ShardManifest::load(manifest_path);
                frozen = true;
            } catch (const std::exception&) {
                frozen = false;  // damaged entry: re-freeze below
            }
        }
        if (!frozen) {
            core::CampaignEngine engine(fx.net, fx.eval, fx.config);
            manifest.recipe = job.recipe;
            manifest.fingerprint =
                engine.fingerprint(fx.universe, job.recipe.model);
            manifest.layer_count =
                static_cast<std::uint32_t>(fx.universe.layer_count());
            if (job.recipe.approach == core::Approach::Exhaustive) {
                manifest.plan.approach = core::Approach::Exhaustive;
                manifest.item_count = fx.universe.total();
            } else {
                manifest.plan =
                    engine.plan(fx.universe, shard::campaign_spec(job.recipe));
                manifest.item_count = manifest.plan.total_sample_size();
            }
            const std::uint64_t want = job.shards == 0 ? 1 : job.shards;
            manifest.shards = shard::partition_items(
                manifest.item_count,
                static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(want, manifest.item_count)));
            manifest.save(manifest_path);
        }
        plan_span.close();

        // The per-campaign event log: header + plan now, shard lifecycle
        // as it happens, strata + end after the merge. Scoped so the file
        // is closed before the report renderer reads it back.
        const std::string events_path = ResultCache::events_path(dir);
        std::unique_ptr<JobSampler> sampler;
        {
            telemetry::EventLog events(events_path);
            if (fleet) events.set_trace(job_ctx);
            core::emit_campaign_header(events, header_of(job.recipe));
            if (manifest.kind() == shard::CampaignKind::Census)
                core::emit_plan_event_census(events, fx.universe);
            else
                core::emit_plan_event(events, fx.universe, manifest.plan);

            job.state = JobState::Running;
            job.shards_total = manifest.shards.size();
            job.injected = manifest.item_count;
            queue_.update(job);
            if (fleet)
                sampler = std::make_unique<JobSampler>(
                    ResultCache::history_path(dir),
                    [this, id = job.id](const JobLiveStats& stats) {
                        publish_live(id, stats);
                    });

            for (std::uint32_t k = 0; k < manifest.shards.size(); ++k) {
                if (stopping()) {
                    job.state = JobState::Queued;
                    queue_.update(job);
                    return;
                }
                telemetry::Event begin("shard_begin");
                begin.field("shard", static_cast<std::uint64_t>(k))
                    .field("range_begin", manifest.shards[k].begin)
                    .field("range_end", manifest.shards[k].end);
                events.emit(begin);
                if (shard::shard_result_valid(manifest, manifest_path, k)) {
                    ++job.cached_shards;
                    ++job.shards_done;
                    queue_.update(job);
                    telemetry::Event end("shard_end");
                    end.field("shard", static_cast<std::uint64_t>(k))
                        .field("complete", true)
                        .field("resumed", std::uint64_t{0})
                        .field("classified", std::uint64_t{0})
                        .field("cached", true);
                    events.emit(end);
                    continue;
                }
                shard::ShardRunOptions run_options;
                run_options.shard = k;
                run_options.resume = true;
                run_options.threads = options_.engine_threads;
                run_options.cancel = &cancel_;
                std::unique_ptr<telemetry::Session> shard_session;
                telemetry::Span shard_span(tracer,
                                           "shard_" + std::to_string(k));
                if (fleet) {
                    telemetry::SessionOptions session_options;
                    session_options.trace_context.trace_id = job.trace_id;
                    session_options.trace_context.parent_span_id =
                        job_ctx.span_id;
                    session_options.trace_context.span_id =
                        telemetry::derive_trace_id(
                            "shard:" + std::to_string(k) + ":" +
                            telemetry::format_trace_id(job.trace_id));
                    shard_session = std::make_unique<telemetry::Session>(
                        session_options);
                    // Pre-freeze the registry with the exact worker count
                    // the engine will resolve, so the sampler's concurrent
                    // snapshot() never races the freeze.
                    const std::size_t engine_workers =
                        options_.engine_threads == 0
                            ? std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())
                            : options_.engine_threads;
                    shard_session->bind_workers(engine_workers);
                    run_options.telemetry = shard_session.get();
                    if (sampler) sampler->set_session(shard_session.get());
                }
                const shard::ShardRunReport run =
                    shard::run_shard(manifest, manifest_path, run_options);
                if (shard_session) {
                    if (sampler) sampler->absorb(*shard_session);
                    shard_span.close();
                    try {
                        // The shard's own Chrome trace, one file per shard
                        // in the cache entry — merged below and by
                        // `statfi trace merge`.
                        telemetry::export_trace_file(
                            *shard_session, shard::shard_trace_path(dir, k));
                    } catch (const std::exception& e) {
                        std::cerr << "statfi: shard " << k
                                  << " trace not written: " << e.what()
                                  << "\n";
                    }
                }
                telemetry::Event end("shard_end");
                end.field("shard", static_cast<std::uint64_t>(k))
                    .field("complete", run.complete)
                    .field("resumed", run.resumed)
                    .field("classified", run.classified)
                    .field("cached", false);
                events.emit(end);
                if (!run.complete) {
                    // Interrupted by shutdown: the engine already flushed
                    // its journal; the job goes back to the queue and the
                    // next claim resumes exactly here.
                    job.state = JobState::Queued;
                    queue_.update(job);
                    return;
                }
                job.resumed += run.resumed;
                job.classified += run.classified;
                ++job.shards_done;
                queue_.update(job);
            }

            job.state = JobState::Merging;
            queue_.update(job);
            telemetry::Span merge_span(tracer, "service_merge");
            const shard::MergedCampaign merged =
                shard::merge_shards(manifest, manifest_path);
            merge_span.close();
            std::uint64_t critical = 0;
            if (merged.kind == shard::CampaignKind::Census) {
                core::emit_census_strata(events, fx.universe, merged.outcomes,
                                         job.recipe.confidence);
                critical =
                    merged.outcomes.critical_count(0, fx.universe.total());
                merged.outcomes.save(ResultCache::outcomes_path(dir));
            } else {
                core::emit_final_strata(events, merged.result);
                critical = merged.result.total_critical();
            }
            core::emit_campaign_end(
                events, true, manifest.item_count, critical,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job_start)
                    .count());
            write_result_json(ResultCache::result_json_path(dir), manifest,
                              merged, fx.universe);
            job.critical = critical;
        }

        // The job is about to turn terminal: flush the sampler's final,
        // completed-totals sample first so the persisted history ends on
        // the campaign's true counters.
        if (sampler) sampler->stop();
        sampler.reset();

        // Render the report from the log just written — the same pipeline
        // `statfi report --log` uses, so service reports and CLI reports
        // are one code path.
        telemetry::Span report_span(tracer, "service_report");
        std::string log_text;
        io::read_file(events_path, log_text);
        const report::ObservatoryModel model =
            report::model_from_events(report::parse_json_lines(log_text));
        const std::string html = report::render_observatory_html(
            model, model.model + " " + model.command + " — statfi observatory");
        io::write_file_atomic(ResultCache::report_html_path(dir),
                              [&](std::ostream& out) { out << html; });
        report_span.close();

        // Stitch the daemon's spans with every shard's trace into the
        // entry's correlated timeline (served as /campaigns/<id>/trace).
        if (fleet) {
            std::vector<telemetry::TraceMergeInput> inputs;
            {
                std::ostringstream own;
                daemon_trace.write_chrome_trace(own);
                inputs.push_back({"daemon", own.str()});
            }
            for (std::uint32_t k = 0; k < manifest.shards.size(); ++k) {
                std::string text;
                if (io::read_file(shard::shard_trace_path(dir, k), text))
                    inputs.push_back({"shard " + std::to_string(k),
                                      std::move(text)});
            }
            try {
                const std::string merged_trace =
                    telemetry::merge_chrome_traces(inputs);
                io::write_file_atomic(
                    ResultCache::trace_path(dir),
                    [&](std::ostream& out) { out << merged_trace; });
            } catch (const std::exception& e) {
                std::cerr << "statfi: job " << job.id
                          << " trace merge failed: " << e.what() << "\n";
            }
        }

        job.state = JobState::Done;
        queue_.update(job);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (log_) log_->job_done(job, "complete");
    } catch (const std::exception& e) {
        job.state = JobState::Failed;
        job.error = e.what();
        queue_.update(job);
        failed_.fetch_add(1, std::memory_order_relaxed);
        if (log_) log_->job_done(job, "failed");
    }
}

}  // namespace statfi::service

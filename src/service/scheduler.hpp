#pragma once
// Scheduler: the daemon's worker pool, executing queued jobs end-to-end
// through the UNMODIFIED shard pipeline.
//
// Each worker claims one job and carries it through the same stages the
// CLI exposes as separate commands — freeze the recipe into an SFIM
// manifest (shard plan), run every shard in-process via shard::run_shard
// (shard run --resume), merge and write artifacts (shard merge + report).
// Because every stage is the existing code path, a service-run campaign is
// bit-identical to a CLI-run one by construction, and the service's
// caching falls out of the pipeline's own durability:
//
//   * full hit   — the cache entry already has result.json / events.jsonl /
//                  report.html: the job completes without building a
//                  fixture or running one inference;
//   * plan hit   — the entry has a frozen manifest: planning (including
//                  the data-aware analysis and golden pass it implies) is
//                  skipped and the pinned partition is reused;
//   * shard hit  — shard_result_valid() results are skipped, journals of
//                  interrupted shards are resumed (the runner's own
//                  --resume semantics).
//
// Shutdown: stop() fires an internal cancellation token that every
// in-flight shard run polls; the engine checkpoints to its journal, the
// job transitions back to Queued (persisted), and the worker joins. A
// restarted daemon re-claims the job and resumes from the journals.
// Jobs-level concurrency (not shard-level): N workers run N campaigns
// concurrently, and one campaign's shards run sequentially in its worker —
// matching the service's goal of multi-campaign throughput with bounded
// memory (one fixture per worker).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "service/cache.hpp"
#include "service/events.hpp"
#include "service/queue.hpp"

namespace statfi::service {

struct SchedulerOptions {
    std::size_t workers = 2;
    std::size_t engine_threads = 1;  ///< engine workers per shard run
    /// Fleet observability plane (DESIGN.md decision 18): per-job trace
    /// correlation, durable metrics history, live stats. Observes only —
    /// campaign outcomes are bit-identical with it off.
    bool fleet = true;
};

/// Live progress of one in-flight job, published by its fleet sampler at
/// ~200 ms cadence and served by the daemon's /fleet endpoint. Absent for
/// jobs that are queued, terminal, or running with the fleet plane off.
struct JobLiveStats {
    double seconds = 0.0;  ///< wall time since this run of the job started
    std::uint64_t faults = 0;
    std::uint64_t critical = 0;
    std::uint64_t inferences = 0;
    double faults_per_second = 0.0;
};

class Scheduler {
public:
    /// @p queue and @p cache are borrowed and must outlive the scheduler;
    /// @p log may be null (no service event log).
    Scheduler(JobQueue& queue, ResultCache& cache, ServiceLog* log,
              SchedulerOptions options);
    ~Scheduler();

    void start();
    /// Cooperative shutdown: cancel in-flight shard runs (they checkpoint),
    /// requeue their jobs, join every worker. Idempotent.
    void stop();

    [[nodiscard]] std::uint64_t jobs_completed() const noexcept {
        return completed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t jobs_failed() const noexcept {
        return failed_.load(std::memory_order_relaxed);
    }
    /// Workers currently executing a job.
    [[nodiscard]] std::size_t active() const noexcept {
        return active_.load(std::memory_order_relaxed);
    }

    /// Latest fleet sample for @p job_id; empty when the job has no live
    /// sampler (queued, terminal, or fleet plane off).
    [[nodiscard]] std::optional<JobLiveStats> live_stats(
        std::uint64_t job_id) const;

private:
    void worker_loop(std::size_t worker);
    void run_job(Job job, std::size_t worker);
    void publish_live(std::uint64_t job_id, const JobLiveStats& stats);
    void clear_live(std::uint64_t job_id);
    [[nodiscard]] bool stopping() const noexcept {
        return cancel_.stop_requested();
    }

    JobQueue& queue_;
    ResultCache& cache_;
    ServiceLog* log_;
    SchedulerOptions options_;
    core::CancellationToken cancel_;
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::size_t> active_{0};
    mutable std::mutex live_mutex_;
    std::map<std::uint64_t, JobLiveStats> live_;
    std::vector<std::thread> workers_;
};

}  // namespace statfi::service

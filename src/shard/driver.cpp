#include "shard/driver.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <stdexcept>

#include "shard/result.hpp"

namespace statfi::shard {

namespace {

pid_t spawn_shard(const std::string& binary, const std::string& manifest_path,
                  std::uint32_t shard, const DriveOptions& options) {
    std::vector<std::string> args = {
        binary,         "shard",
        "run",          "--manifest",
        manifest_path,  "--shard",
        std::to_string(shard),
        "--threads",    std::to_string(options.threads),
        "--resume",
    };
    if (options.trace.valid()) {
        args.push_back("--trace-id");
        args.push_back(telemetry::format_trace_id(options.trace.trace_id));
        args.push_back("--parent-span");
        args.push_back(telemetry::format_trace_id(options.trace.span_id));
    }
    if (!options.trace_dir.empty()) {
        args.push_back("--trace-out");
        args.push_back(shard_trace_path(options.trace_dir, shard));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error(std::string("shard driver: fork failed: ") +
                                 std::strerror(errno));
    if (pid == 0) {
        // Child: keep the driver's stdout clean for scripted consumers.
        ::dup2(STDERR_FILENO, STDOUT_FILENO);
        ::execv(binary.c_str(), argv.data());
        std::cerr << "statfi: cannot exec " << binary << ": "
                  << std::strerror(errno) << "\n";
        ::_exit(127);
    }
    return pid;
}

int exit_code_of(int wait_status) {
    if (WIFEXITED(wait_status)) return WEXITSTATUS(wait_status);
    if (WIFSIGNALED(wait_status)) return 128 + WTERMSIG(wait_status);
    return 255;
}

}  // namespace

std::string shard_trace_path(const std::string& trace_dir,
                             std::uint32_t shard) {
    const bool needs_sep = !trace_dir.empty() && trace_dir.back() != '/';
    return trace_dir + (needs_sep ? "/" : "") + "trace_shard_" +
           std::to_string(shard) + ".json";
}

std::string ShardStatus::describe() const {
    if (skipped) return "skipped (already complete)";
    if (exit_code == 0) return "ok";
    // 130 is SIGINT whichever way it arrived — the child exiting 130 after
    // checkpointing, or dying on the signal raw. Either way the journal
    // holds the progress and a rerun resumes it.
    if (exit_code == 130)
        return "failed (exit 130: interrupted, rerun to resume)";
    if (exit_code > 128) {
        const int signo = exit_code - 128;
        const char* name = ::strsignal(signo);
        return "killed (signal " + std::to_string(signo) +
               (name ? std::string(": ") + name : std::string()) + ")";
    }
    std::string hint;
    if (exit_code == 127) hint = ": cannot exec the statfi binary";
    return "failed (exit " + std::to_string(exit_code) + hint + ")";
}

bool shard_result_valid(const ShardManifest& manifest,
                        const std::string& manifest_path,
                        std::uint32_t shard) {
    try {
        const ShardResult r =
            ShardResult::load(shard_result_path(manifest_path, shard));
        return r.manifest_crc == manifest.crc() && r.shard_id == shard &&
               r.range == manifest.shards[shard];
    } catch (const std::exception&) {
        return false;
    }
}

DriveReport run_all_shards(const ShardManifest& manifest,
                           const std::string& manifest_path,
                           const DriveOptions& options) {
    manifest.validate();
    if (options.statfi_binary.empty())
        throw std::invalid_argument("shard driver: statfi_binary not set");
    const std::size_t jobs = options.jobs == 0 ? 1 : options.jobs;

    DriveReport report;
    report.shards.resize(manifest.shards.size());
    std::vector<std::uint32_t> pending;
    for (std::uint32_t k = 0; k < manifest.shards.size(); ++k) {
        report.shards[k].shard = k;
        if (shard_result_valid(manifest, manifest_path, k)) {
            report.shards[k].skipped = true;
            std::cerr << "statfi: shard " << k
                      << " already has a valid result, skipping\n";
        } else {
            pending.push_back(k);
        }
    }

    std::map<pid_t, std::uint32_t> running;
    std::size_t next = 0;
    while (next < pending.size() || !running.empty()) {
        while (next < pending.size() && running.size() < jobs) {
            const std::uint32_t shard = pending[next++];
            const pid_t pid = spawn_shard(options.statfi_binary, manifest_path,
                                          shard, options);
            std::cerr << "statfi: shard " << shard << " -> pid " << pid << "\n";
            running.emplace(pid, shard);
        }
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(
                std::string("shard driver: waitpid failed: ") +
                std::strerror(errno));
        }
        const auto it = running.find(pid);
        if (it == running.end()) continue;  // not one of ours
        const std::uint32_t shard = it->second;
        running.erase(it);
        report.shards[shard].exit_code = exit_code_of(status);
        std::cerr << "statfi: shard " << shard << " "
                  << report.shards[shard].describe() << "\n";
    }
    return report;
}

}  // namespace statfi::shard

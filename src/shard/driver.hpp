#pragma once
// Local shard driver: fan a manifest's shards out over subprocesses on this
// machine (`statfi shard run-all --jobs J`).
//
// Each shard runs as a child `statfi shard run --resume` process, so a
// crashing or killed shard cannot take the driver (or sibling shards) down,
// and a rerun of the driver resumes every incomplete shard from its journal.
// Shards whose result artifact already exists and validates against the
// manifest are skipped — run-all is idempotent. Child stdout is redirected
// onto stderr so the driver's own stdout stays clean for scripted use.
//
// This is the single-machine reference driver; on a cluster the same
// manifest is handed to one `statfi shard run` job per shard instead.

#include <cstdint>
#include <string>
#include <vector>

#include "shard/manifest.hpp"
#include "telemetry/trace.hpp"

namespace statfi::shard {

struct DriveOptions {
    std::size_t jobs = 1;      ///< concurrent shard subprocesses
    std::size_t threads = 1;   ///< engine workers per shard (0 = hardware)
    std::string statfi_binary; ///< executable to spawn (the CLI passes its own)
    /// Fleet trace identity (DESIGN.md decision 18). When valid, every
    /// child is spawned with `--trace-id <hex> --parent-span <hex>` (the
    /// driver's own span as the parent) so shard logs and traces correlate
    /// with the driver's.
    telemetry::TraceContext trace{};
    /// When non-empty, each child also gets `--trace-out
    /// <trace_dir>/trace_shard_<k>.json` so the driver can stitch a merged
    /// fleet trace afterwards.
    std::string trace_dir;
};

/// The per-shard Chrome trace path children write under
/// DriveOptions::trace_dir (and trace merges read back).
std::string shard_trace_path(const std::string& trace_dir,
                             std::uint32_t shard);

struct ShardStatus {
    std::uint32_t shard = 0;
    bool skipped = false;  ///< valid result artifact already present
    int exit_code = 0;     ///< 128+signal when the child died on a signal

    /// "ok" / "skipped (already complete)" / "failed (exit 127: cannot
    /// exec)" / "killed (SIGKILL)" — the per-shard line fleet output and
    /// --json both carry, so one failed shard among dozens cannot hide.
    [[nodiscard]] std::string describe() const;
};

struct DriveReport {
    std::vector<ShardStatus> shards;
    [[nodiscard]] bool ok() const {
        for (const auto& s : shards)
            if (s.exit_code != 0) return false;
        return true;
    }
    /// The exit code the driver's caller should propagate: the first
    /// nonzero child exit code in shard order (0 when every shard
    /// succeeded). A signal death surfaces as the conventional 128+signo.
    [[nodiscard]] int first_failure() const {
        for (const auto& s : shards)
            if (s.exit_code != 0) return s.exit_code;
        return 0;
    }
};

/// True when a result artifact for @p shard exists next to @p manifest_path,
/// loads cleanly, and provably belongs to this manifest and slot (CRC,
/// shard id, range). The driver skips such shards; the service's
/// content-addressed cache uses the same predicate to count cache hits.
bool shard_result_valid(const ShardManifest& manifest,
                        const std::string& manifest_path, std::uint32_t shard);

/// Run every incomplete shard of @p manifest as a subprocess, at most
/// @p options.jobs at a time. Returns per-shard statuses; does not throw on
/// child failure (the report carries the exit codes) but does throw when the
/// driver itself cannot fork.
DriveReport run_all_shards(const ShardManifest& manifest,
                           const std::string& manifest_path,
                           const DriveOptions& options);

}  // namespace statfi::shard

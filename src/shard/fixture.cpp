#include "shard/fixture.hpp"

#include <iostream>

#include "formats/quantized_store.hpp"
#include "models/registry.hpp"
#include "nn/init.hpp"
#include "nn/trainer.hpp"
#include "report/table.hpp"

namespace statfi::shard {

CampaignFixture build_fixture(const CampaignRecipe& recipe) {
    auto net = models::build_model(recipe.model);
    stats::Rng rng(recipe.seed);
    auto init_rng = rng.fork("init");
    nn::init_network_kaiming(net, init_rng);
    double test_accuracy = 0.0;
    if (recipe.train) {
        data::SyntheticSpec spec;
        spec.seed = recipe.seed;
        const auto train = data::make_synthetic(spec, 1024, "train");
        std::cerr << "training " << recipe.model << " on synthetic data...\n";
        auto train_rng = rng.fork("train");
        nn::train_classifier(net, train.images, train.labels, 8, 32,
                             nn::SgdConfig{}, train_rng);
        const auto test = data::make_synthetic(spec, 256, "test");
        test_accuracy = nn::top1_accuracy(net.forward(test.images), test.labels);
        std::cerr << "test accuracy: "
                  << report::fmt_percent(test_accuracy, 1) << "%\n";
    }
    data::SyntheticSpec spec;
    spec.seed = recipe.seed;
    auto eval = data::make_synthetic(spec, recipe.images, "test");
    core::ExecutorConfig config;
    config.policy = recipe.policy;
    config.accuracy_drop_threshold = recipe.accuracy_drop_threshold;
    config.dtype = recipe.dtype;
    config.mitigation = recipe.mitigation;
    // Reduced-precision campaigns run against the weights the device would
    // hold: snapshot into the format's encoded words and deploy the decoded
    // values, so the golden pass and every kernel compute with quantized
    // weights. The store's per-tensor scales travel in the config — deriving
    // them again from the deployed weights would drift by an ulp.
    if (recipe.dtype != fault::DataType::Float32) {
        const formats::QuantizedStore store(net, recipe.dtype);
        store.deploy(net);
        config.layer_quant = store.all_params();
    }
    auto universe = fault::FaultUniverse::make(
        net, recipe.fault_model, Shape{spec.channels, spec.height, spec.width},
        recipe.dtype);
    return CampaignFixture{std::move(net), std::move(eval),
                           std::move(universe), config, test_accuracy};
}

core::CampaignSpec campaign_spec(const CampaignRecipe& recipe) {
    core::CampaignSpec spec;
    spec.approach = recipe.approach;
    spec.sample.error_margin = recipe.error_margin;
    spec.sample.confidence = recipe.confidence;
    return spec;
}

}  // namespace statfi::shard

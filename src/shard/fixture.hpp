#pragma once
// Campaign fixture reconstruction: recipe -> (network, evaluation set, fault
// universe, executor config), identically in every process.
//
// The shard determinism contract hinges on this being a pure function of
// the recipe: the planning process, each shard runner (possibly on another
// machine), and the unsharded reference run all call build_fixture and land
// on bit-identical weights and evaluation tensors — verified at run time by
// comparing campaign fingerprints against the manifest. The `statfi` CLI
// routes its campaign/exhaustive commands through the same function, so the
// CLI and the shard subsystem cannot drift apart.

#include "core/engine.hpp"
#include "data/synthetic.hpp"
#include "shard/manifest.hpp"

namespace statfi::shard {

struct CampaignFixture {
    nn::Network net;
    data::Dataset eval;
    fault::FaultUniverse universe;
    core::ExecutorConfig config;
    /// Held-out test accuracy when recipe.train is set, else 0.
    double test_accuracy = 0.0;
};

/// Rebuild the campaign fixture from a recipe: build the model, initialize
/// Kaiming from Rng(seed).fork("init"), optionally train on 1024 synthetic
/// images (Rng(seed).fork("train")), generate the evaluation set, and
/// enumerate the recipe's fault-model universe for its dtype (stuck-at,
/// bit-flip, multi-bit, or activation — fault::FaultUniverse::make). The
/// recipe's mitigation config is carried into the executor config, so every
/// runner deploys the same hardened network. Training progress goes to
/// stderr.
CampaignFixture build_fixture(const CampaignRecipe& recipe);

/// The campaign spec a recipe's statistical parameters describe.
core::CampaignSpec campaign_spec(const CampaignRecipe& recipe);

}  // namespace statfi::shard

#include "shard/manifest.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "io/artifact.hpp"
#include "io/checksum.hpp"

namespace statfi::shard {

namespace {

constexpr char kManifestMagic[4] = {'S', 'F', 'I', 'M'};
// v2 adds the fault-model spec + mitigation config to the recipe and the
// fault_model/mbu_k/mitigation_hash fields to the fingerprint.
constexpr std::uint32_t kManifestVersion = 2;

// --- payload encode/decode (machine-local byte order, like every other
// statfi artifact) ---------------------------------------------------------

void put_u8(std::string& buf, std::uint8_t v) {
    buf.push_back(static_cast<char>(v));
}
void put_u32(std::string& buf, std::uint32_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_u64(std::string& buf, std::uint64_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_i32(std::string& buf, std::int32_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_f64(std::string& buf, double v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_string(std::string& buf, const std::string& s) {
    put_u32(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

/// Bounds-checked cursor over a decoded payload; any overrun means a
/// truncated or internally inconsistent artifact.
struct Reader {
    const std::string& buf;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        if (pos + n > buf.size())
            throw std::runtime_error(
                "shard manifest: truncated payload (field at byte " +
                std::to_string(pos) + " overruns " +
                std::to_string(buf.size()) + "-byte payload)");
    }
    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v;
        std::memcpy(&v, buf.data() + pos, sizeof(v));
        pos += sizeof(v);
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, buf.data() + pos, sizeof(v));
        pos += sizeof(v);
        return v;
    }
    std::int32_t i32() {
        need(4);
        std::int32_t v;
        std::memcpy(&v, buf.data() + pos, sizeof(v));
        pos += sizeof(v);
        return v;
    }
    double f64() {
        need(8);
        double v;
        std::memcpy(&v, buf.data() + pos, sizeof(v));
        pos += sizeof(v);
        return v;
    }
    std::string str() {
        const std::uint32_t n = u32();
        need(n);
        std::string s = buf.substr(pos, n);
        pos += n;
        return s;
    }
};

std::string encode(const ShardManifest& m) {
    std::string body;
    // recipe
    put_string(body, m.recipe.model);
    put_u8(body, static_cast<std::uint8_t>(m.recipe.approach));
    put_f64(body, m.recipe.error_margin);
    put_f64(body, m.recipe.confidence);
    put_u64(body, static_cast<std::uint64_t>(m.recipe.images));
    put_u8(body, static_cast<std::uint8_t>(m.recipe.policy));
    put_f64(body, m.recipe.accuracy_drop_threshold);
    put_u8(body, m.recipe.train ? 1 : 0);
    put_u8(body, static_cast<std::uint8_t>(m.recipe.dtype));
    put_u64(body, m.recipe.seed);
    put_u8(body, static_cast<std::uint8_t>(m.recipe.fault_model.kind));
    put_i32(body, m.recipe.fault_model.mbu_k);
    put_u32(body, static_cast<std::uint32_t>(m.recipe.mitigation.clips.size()));
    for (const auto& clip : m.recipe.mitigation.clips) {
        put_string(body, clip.node);
        put_f64(body, clip.lo);
        put_f64(body, clip.hi);
    }
    put_u32(body, static_cast<std::uint32_t>(m.recipe.mitigation.tmr.size()));
    for (const auto& tmr : m.recipe.mitigation.tmr) put_string(body, tmr.layer);
    // fingerprint
    put_string(body, m.fingerprint.model_id);
    put_u64(body, m.fingerprint.universe_size);
    put_u8(body, m.fingerprint.dtype);
    put_u8(body, m.fingerprint.policy);
    put_f64(body, m.fingerprint.accuracy_drop_threshold);
    put_u32(body, m.fingerprint.eval_hash);
    put_u32(body, m.fingerprint.weights_hash);
    put_u8(body, m.fingerprint.fault_model);
    put_u8(body, m.fingerprint.mbu_k);
    put_u32(body, m.fingerprint.mitigation_hash);
    // plan
    put_u8(body, static_cast<std::uint8_t>(m.plan.approach));
    put_f64(body, m.plan.spec.error_margin);
    put_f64(body, m.plan.spec.confidence);
    put_f64(body, m.plan.spec.p);
    put_u8(body, static_cast<std::uint8_t>(m.plan.spec.mode));
    put_u64(body, m.plan.subpops.size());
    for (const auto& sp : m.plan.subpops) {
        put_i32(body, sp.layer);
        put_i32(body, sp.bit);
        put_u64(body, sp.population);
        put_f64(body, sp.p);
        put_u64(body, sp.sample_size);
    }
    // item space + shards
    put_u32(body, m.layer_count);
    put_u64(body, m.item_count);
    put_u32(body, static_cast<std::uint32_t>(m.shards.size()));
    for (const auto& range : m.shards) {
        put_u64(body, range.begin);
        put_u64(body, range.end);
    }
    return body;
}

ShardManifest decode(const std::string& body) {
    Reader in{body};
    ShardManifest m;
    m.recipe.model = in.str();
    m.recipe.approach = static_cast<core::Approach>(in.u8());
    m.recipe.error_margin = in.f64();
    m.recipe.confidence = in.f64();
    m.recipe.images = static_cast<std::int64_t>(in.u64());
    m.recipe.policy = static_cast<core::ClassificationPolicy>(in.u8());
    m.recipe.accuracy_drop_threshold = in.f64();
    m.recipe.train = in.u8() != 0;
    m.recipe.dtype = static_cast<fault::DataType>(in.u8());
    m.recipe.seed = in.u64();
    m.recipe.fault_model.kind = static_cast<fault::FaultModelKind>(in.u8());
    m.recipe.fault_model.mbu_k = in.i32();
    const std::uint32_t clip_count = in.u32();
    m.recipe.mitigation.clips.reserve(clip_count);
    for (std::uint32_t c = 0; c < clip_count; ++c) {
        fault::ClipRule clip;
        clip.node = in.str();
        clip.lo = static_cast<float>(in.f64());
        clip.hi = static_cast<float>(in.f64());
        m.recipe.mitigation.clips.push_back(std::move(clip));
    }
    const std::uint32_t tmr_count = in.u32();
    m.recipe.mitigation.tmr.reserve(tmr_count);
    for (std::uint32_t t = 0; t < tmr_count; ++t)
        m.recipe.mitigation.tmr.push_back(fault::TmrRule{in.str()});
    m.fingerprint.model_id = in.str();
    m.fingerprint.universe_size = in.u64();
    m.fingerprint.dtype = in.u8();
    m.fingerprint.policy = in.u8();
    m.fingerprint.accuracy_drop_threshold = in.f64();
    m.fingerprint.eval_hash = in.u32();
    m.fingerprint.weights_hash = in.u32();
    m.fingerprint.fault_model = in.u8();
    m.fingerprint.mbu_k = in.u8();
    m.fingerprint.mitigation_hash = in.u32();
    m.plan.approach = static_cast<core::Approach>(in.u8());
    m.plan.spec.error_margin = in.f64();
    m.plan.spec.confidence = in.f64();
    m.plan.spec.p = in.f64();
    m.plan.spec.mode = static_cast<stats::ConfidenceCoefficient>(in.u8());
    const std::uint64_t subpops = in.u64();
    m.plan.subpops.reserve(subpops);
    for (std::uint64_t s = 0; s < subpops; ++s) {
        core::SubpopPlan sp;
        sp.layer = in.i32();
        sp.bit = in.i32();
        sp.population = in.u64();
        sp.p = in.f64();
        sp.sample_size = in.u64();
        m.plan.subpops.push_back(sp);
    }
    m.layer_count = in.u32();
    m.item_count = in.u64();
    const std::uint32_t shard_count = in.u32();
    m.shards.reserve(shard_count);
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        ShardRange range;
        range.begin = in.u64();
        range.end = in.u64();
        m.shards.push_back(range);
    }
    if (in.pos != body.size())
        throw std::runtime_error("shard manifest: " +
                                 std::to_string(body.size() - in.pos) +
                                 " trailing payload byte(s)");
    return m;
}

}  // namespace

const char* to_string(CampaignKind kind) noexcept {
    switch (kind) {
        case CampaignKind::Census: return "census";
        case CampaignKind::Statistical: return "statistical";
    }
    return "?";
}

std::uint32_t ShardManifest::crc() const {
    const std::string body = encode(*this);
    return io::crc32(body.data(), body.size());
}

void ShardManifest::validate() const {
    const auto fail = [](const std::string& why) -> std::invalid_argument {
        return std::invalid_argument("shard manifest: " + why);
    };
    if (shards.empty()) throw fail("no shards");
    if (item_count == 0) throw fail("empty item space");
    if (kind() == CampaignKind::Census) {
        if (item_count != fingerprint.universe_size)
            throw fail("census item count " + std::to_string(item_count) +
                       " != universe size " +
                       std::to_string(fingerprint.universe_size));
    } else {
        if (item_count != plan.total_sample_size())
            throw fail("statistical item count " + std::to_string(item_count) +
                       " != plan sample size " +
                       std::to_string(plan.total_sample_size()));
    }
    std::uint64_t expected_begin = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const auto& range = shards[s];
        const std::string id = "shard " + std::to_string(s) + " range [" +
                               std::to_string(range.begin) + ", " +
                               std::to_string(range.end) + ")";
        if (range.begin >= range.end) throw fail(id + " is empty");
        if (range.begin > expected_begin)
            throw fail("shard ranges leave a gap: " + id + " starts after " +
                       std::to_string(expected_begin));
        if (range.begin < expected_begin)
            throw fail("shard ranges overlap: " + id + " starts before " +
                       std::to_string(expected_begin));
        expected_begin = range.end;
    }
    if (expected_begin != item_count)
        throw fail("shard ranges cover " + std::to_string(expected_begin) +
                   " of " + std::to_string(item_count) + " items");
}

void ShardManifest::save(const std::string& path) const {
    validate();
    io::write_framed_atomic(path, kManifestMagic, kManifestVersion,
                            encode(*this));
}

ShardManifest ShardManifest::load(const std::string& path) {
    const std::string body =
        io::read_framed(path, kManifestMagic, kManifestVersion,
                        "shard manifest");
    ShardManifest m = decode(body);
    m.validate();
    return m;
}

std::vector<ShardRange> partition_items(std::uint64_t item_count,
                                        std::uint32_t count) {
    if (count == 0)
        throw std::invalid_argument("partition_items: zero shards");
    if (count > item_count)
        throw std::invalid_argument(
            "partition_items: " + std::to_string(count) +
            " shards over " + std::to_string(item_count) +
            " items would leave empty shards");
    std::vector<ShardRange> ranges;
    ranges.reserve(count);
    const std::uint64_t base = item_count / count;
    const std::uint64_t extra = item_count % count;
    std::uint64_t begin = 0;
    for (std::uint32_t s = 0; s < count; ++s) {
        const std::uint64_t size = base + (s < extra ? 1 : 0);
        ranges.push_back(ShardRange{begin, begin + size});
        begin += size;
    }
    return ranges;
}

namespace {
std::string sibling(const std::string& manifest_path, std::uint32_t shard,
                    const char* extension) {
    const std::filesystem::path dir =
        std::filesystem::path(manifest_path).parent_path();
    return (dir / ("shard_" + std::to_string(shard) + extension)).string();
}
}  // namespace

std::string shard_result_path(const std::string& manifest_path,
                              std::uint32_t shard) {
    return sibling(manifest_path, shard, ".sfis");
}

std::string shard_journal_path(const std::string& manifest_path,
                               std::uint32_t shard) {
    return sibling(manifest_path, shard, ".sfij");
}

}  // namespace statfi::shard

#pragma once
// Shard manifest: the single source of truth for a scaled-out campaign.
//
// One campaign is split into N independent shard jobs; the manifest pins
// everything a shard runner needs to reproduce its slice bit-identically on
// another process (or machine), and everything the merger needs to prove the
// slices belong together:
//   * the RECIPE — model, approach, statistical spec, evaluation-set size,
//     policy, dtype, seed — from which any process can rebuild the exact
//     network, evaluation set, and fault universe;
//   * the FINGERPRINT the planning process computed after building that
//     fixture (universe size, dtype, policy, eval/weights hashes). A runner
//     rebuilds the fixture, recomputes the fingerprint, and refuses to run
//     when they differ — catching a diverged binary, dataset, or RNG before
//     it can poison a merged result;
//   * the PLAN — for statistical campaigns, the full per-subpopulation
//     sample sizes, so shards never re-derive them (and a data-aware
//     analysis runs once, at planning time);
//   * the SHARD RANGES — a contiguous, gap-free, overlap-free partition of
//     the item space: global fault indices [0, N) for a census, global
//     drawn-sample item indices [0, n) for a statistical campaign (items in
//     the canonical core::draw_plan order).
//
// The manifest is a framed artifact ("SFIM", CRC32-trailed, written
// atomically — src/io/artifact.hpp); its payload CRC doubles as the
// campaign identity that every shard-result artifact must carry back.

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/outcome.hpp"
#include "core/planner.hpp"
#include "fault/mitigation.hpp"
#include "fault/model.hpp"

namespace statfi::shard {

/// What the item space enumerates: the whole fault universe (census) or a
/// pre-drawn statistical sample.
enum class CampaignKind : std::uint8_t { Census = 0, Statistical = 1 };

const char* to_string(CampaignKind kind) noexcept;

/// Everything needed to rebuild the campaign fixture from scratch — mirrors
/// the `statfi` CLI options that define a campaign (see shard::build_fixture
/// for the exact reconstruction).
struct CampaignRecipe {
    std::string model = "micronet";
    core::Approach approach = core::Approach::Exhaustive;
    double error_margin = 0.01;
    double confidence = 0.99;
    std::int64_t images = 8;           ///< evaluation images per fault
    core::ClassificationPolicy policy =
        core::ClassificationPolicy::AnyMisprediction;
    double accuracy_drop_threshold = 0.0;
    bool train = false;                ///< fit on synthetic data first
    fault::DataType dtype = fault::DataType::Float32;
    std::uint64_t seed = 2023;
    /// Which fault universe the campaign enumerates (stuck-at weights by
    /// default; flip / mbu-kN / activation select the other models).
    fault::FaultModelSpec fault_model;
    /// Mitigations deployed on every runner's network (part of the campaign
    /// identity — the fingerprint hashes the descriptor).
    fault::MitigationConfig mitigation;
};

/// One shard's contiguous slice [begin, end) of the item space.
struct ShardRange {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
    [[nodiscard]] bool operator==(const ShardRange&) const = default;
};

struct ShardManifest {
    CampaignRecipe recipe;
    core::CampaignFingerprint fingerprint;
    /// Statistical campaigns: the concrete plan (drawn deterministically by
    /// every runner via core::draw_plan). Empty subpops for a census.
    core::CampaignPlan plan;
    std::uint32_t layer_count = 0;  ///< universe layers (merge-side tallies)
    std::uint64_t item_count = 0;   ///< universe size or total sample size
    std::vector<ShardRange> shards;

    [[nodiscard]] CampaignKind kind() const noexcept {
        return recipe.approach == core::Approach::Exhaustive
                   ? CampaignKind::Census
                   : CampaignKind::Statistical;
    }

    /// CRC32 of the serialized payload — the identity shard results carry so
    /// the merger can prove they were produced from THIS manifest.
    [[nodiscard]] std::uint32_t crc() const;

    /// Check internal consistency: at least one shard, every range
    /// non-empty, ranges contiguous from 0 to item_count (the contiguity
    /// check is what refuses gaps and overlaps), and the item count
    /// consistent with the fingerprint (census) or plan (statistical).
    /// @throws std::invalid_argument naming the violated invariant.
    void validate() const;

    /// Atomic, checksummed save/load ("SFIM" v1). load() validates the
    /// frame (empty/short/magic/version/checksum each get a distinct
    /// error), decodes, and runs validate().
    void save(const std::string& path) const;
    static ShardManifest load(const std::string& path);
};

/// Deterministically partition [0, item_count) into @p count contiguous,
/// maximally balanced, non-empty ranges (the first `item_count % count`
/// ranges get one extra item).
/// @throws std::invalid_argument when count is 0 or exceeds item_count.
std::vector<ShardRange> partition_items(std::uint64_t item_count,
                                        std::uint32_t count);

/// Conventional sibling paths next to a manifest at @p manifest_path.
std::string shard_result_path(const std::string& manifest_path,
                              std::uint32_t shard);
std::string shard_journal_path(const std::string& manifest_path,
                               std::uint32_t shard);

}  // namespace statfi::shard

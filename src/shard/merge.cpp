#include "shard/merge.hpp"

#include <chrono>
#include <stdexcept>

namespace statfi::shard {

MergedCampaign merge_shards(const ShardManifest& manifest,
                            const std::vector<std::string>& result_paths,
                            telemetry::Session* telemetry) {
    // A merge-only process never builds an engine, so freeze the metric
    // schema here (single slot) unless a prior campaign already did.
    if (telemetry && !telemetry->metrics().frozen())
        telemetry->bind_workers(1);
    telemetry::PhaseScope scope(telemetry, "shard_merge");
    manifest.validate();
    const std::uint32_t expected_crc = manifest.crc();
    const CampaignKind kind = manifest.kind();

    // Load and slot every artifact; every check names the offending path.
    // Each artifact gets its own validate span (and, when an event log is
    // attached, a merge_artifact event) so the /trace view and the HTML
    // phase breakdown show where a slow merge spends its time.
    std::vector<ShardResult> results(manifest.shards.size());
    std::vector<std::uint8_t> present(manifest.shards.size(), 0);
    for (const std::string& path : result_paths) {
        telemetry::PhaseScope validate_scope(telemetry, "merge_validate");
        const auto artifact_start = std::chrono::steady_clock::now();
        ShardResult r = ShardResult::load(path);
        if (r.manifest_crc != expected_crc)
            throw std::runtime_error(
                "shard merge: " + path +
                " was produced from a different manifest (artifact crc " +
                std::to_string(r.manifest_crc) + ", manifest crc " +
                std::to_string(expected_crc) + ")");
        if (r.kind != kind)
            throw std::runtime_error(
                "shard merge: " + path + " is a " +
                std::string(to_string(r.kind)) + " result but the manifest is " +
                to_string(kind));
        if (r.shard_id >= manifest.shards.size())
            throw std::runtime_error(
                "shard merge: " + path + " claims shard " +
                std::to_string(r.shard_id) + " but the manifest has only " +
                std::to_string(manifest.shards.size()) + " shards");
        if (present[r.shard_id])
            throw std::runtime_error(
                "shard merge: duplicate results for shard " +
                std::to_string(r.shard_id) + " (second: " + path + ")");
        if (r.range != manifest.shards[r.shard_id])
            throw std::runtime_error(
                "shard merge: " + path + " covers items [" +
                std::to_string(r.range.begin) + ", " +
                std::to_string(r.range.end) + ") but the manifest assigns [" +
                std::to_string(manifest.shards[r.shard_id].begin) + ", " +
                std::to_string(manifest.shards[r.shard_id].end) +
                ") to shard " + std::to_string(r.shard_id));
        present[r.shard_id] = 1;
        if (telemetry) {
            telemetry->metrics().inc(0,
                                     telemetry->ids().merge_artifacts_total);
            telemetry->metrics().inc(0, telemetry->ids().merge_items_total,
                                     r.range.size());
            if (telemetry::EventLog* log = telemetry->events())
                log->emit(
                    telemetry::Event("merge_artifact")
                        .field("shard",
                               static_cast<std::uint64_t>(r.shard_id))
                        .field("items", r.range.size())
                        .field("seconds",
                               std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   artifact_start)
                                   .count()));
        }
        results[r.shard_id] = std::move(r);
    }
    for (std::size_t k = 0; k < present.size(); ++k)
        if (!present[k])
            throw std::runtime_error("shard merge: no result for shard " +
                                     std::to_string(k) + " of " +
                                     std::to_string(present.size()));

    MergedCampaign merged;
    merged.kind = kind;
    if (kind == CampaignKind::Census) {
        merged.outcomes = core::ExhaustiveOutcomes(manifest.item_count);
        for (const ShardResult& r : results)
            for (std::uint64_t i = 0; i < r.range.size(); ++i)
                merged.outcomes.set(
                    r.range.begin + i,
                    static_cast<core::FaultOutcome>(r.outcomes[i]));
    } else {
        merged.result =
            core::make_empty_result(manifest.layer_count, manifest.plan);
        // Item order (shards are range-ascending by validate()) — the same
        // accumulation order as the unsharded engine's final tally loop.
        for (const ShardResult& r : results)
            for (std::uint64_t i = 0; i < r.range.size(); ++i) {
                if (r.subpops[i] >= merged.result.subpops.size())
                    throw std::runtime_error(
                        "shard merge: shard " + std::to_string(r.shard_id) +
                        " attributes an item to subpopulation " +
                        std::to_string(r.subpops[i]) +
                        " which the plan does not define");
                core::accumulate_outcome(
                    merged.result.subpops[r.subpops[i]], r.layers[i],
                    static_cast<core::FaultOutcome>(r.outcomes[i]));
            }
    }
    return merged;
}

MergedCampaign merge_shards(const ShardManifest& manifest,
                            const std::string& manifest_path,
                            telemetry::Session* telemetry) {
    std::vector<std::string> paths;
    paths.reserve(manifest.shards.size());
    for (std::uint32_t k = 0; k < manifest.shards.size(); ++k)
        paths.push_back(shard_result_path(manifest_path, k));
    return merge_shards(manifest, paths, telemetry);
}

}  // namespace statfi::shard

#pragma once
// Shard merger: validate every shard-result artifact against the manifest
// and pool them into the exact result an unsharded run would have produced.
//
// The merger is deliberately paranoid — a merged campaign is only as
// trustworthy as its weakest shard, so every artifact must prove (1) it was
// produced from THIS manifest (payload CRC match), (2) it fills a distinct
// shard slot (no duplicates, no missing shards), and (3) it covers exactly
// the item range the manifest assigned to that slot. Gap/overlap freedom of
// the ranges themselves is the manifest's validate() invariant. Artifact
// corruption (truncation, bit flips) is caught by the framed-artifact
// checksum before any of this runs.
//
// Census merges reassemble the dense ExhaustiveOutcomes table; statistical
// merges pool subpopulation tallies in item order via the same
// accumulate_outcome used by direct execution — both bit-identical to an
// unsharded run of the same recipe.

#include <string>
#include <vector>

#include "core/outcome.hpp"
#include "shard/manifest.hpp"
#include "shard/result.hpp"
#include "telemetry/session.hpp"

namespace statfi::shard {

/// A merged campaign: exactly one of the two payloads is meaningful,
/// selected by `kind`.
struct MergedCampaign {
    CampaignKind kind = CampaignKind::Census;
    /// Census: the reassembled dense outcome table (size item_count).
    core::ExhaustiveOutcomes outcomes;
    /// Statistical: pooled subpopulation tallies (wall_seconds is zero — the
    /// merger does no inference).
    core::CampaignResult result;
};

/// Merge the shard results at @p result_paths (any order) under
/// @p manifest. @throws std::runtime_error naming the violated invariant:
/// unreadable/corrupt artifact, foreign manifest CRC, kind mismatch,
/// shard id out of range, duplicate shard, range mismatch, missing shard.
/// @p telemetry (optional, borrowed) records the "shard_merge" phase span
/// plus merged-artifact/item counters.
MergedCampaign merge_shards(const ShardManifest& manifest,
                            const std::vector<std::string>& result_paths,
                            telemetry::Session* telemetry = nullptr);

/// Convenience: merge using the conventional sibling artifact paths next to
/// @p manifest_path (shard_result_path for every shard in the manifest).
MergedCampaign merge_shards(const ShardManifest& manifest,
                            const std::string& manifest_path,
                            telemetry::Session* telemetry = nullptr);

}  // namespace statfi::shard

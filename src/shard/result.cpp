#include "shard/result.hpp"

#include <cstring>
#include <stdexcept>

#include "io/artifact.hpp"

namespace statfi::shard {

namespace {
constexpr char kResultMagic[4] = {'S', 'F', 'I', 'S'};
constexpr std::uint32_t kResultVersion = 1;
}  // namespace

void ShardResult::save(const std::string& path) const {
    const std::uint64_t items = range.size();
    if (outcomes.size() != items)
        throw std::invalid_argument("ShardResult::save: " +
                                    std::to_string(outcomes.size()) +
                                    " outcomes for a " + std::to_string(items) +
                                    "-item range");
    const bool statistical = kind == CampaignKind::Statistical;
    if (statistical && (subpops.size() != items || layers.size() != items))
        throw std::invalid_argument(
            "ShardResult::save: attribution arrays mismatch the item range");

    std::string body;
    body.reserve(64 + items * (statistical ? 9 : 1));
    const auto put = [&body](const void* data, std::size_t size) {
        body.append(reinterpret_cast<const char*>(data), size);
    };
    put(&manifest_crc, sizeof(manifest_crc));
    put(&shard_id, sizeof(shard_id));
    body.push_back(static_cast<char>(kind));
    put(&range.begin, sizeof(range.begin));
    put(&range.end, sizeof(range.end));
    put(outcomes.data(), outcomes.size());
    if (statistical) {
        put(subpops.data(), subpops.size() * sizeof(std::uint32_t));
        put(layers.data(), layers.size() * sizeof(std::int32_t));
    }
    io::write_framed_atomic(path, kResultMagic, kResultVersion, body);
}

ShardResult ShardResult::load(const std::string& path) {
    const std::string body =
        io::read_framed(path, kResultMagic, kResultVersion, "shard result");
    const auto fail = [&](const std::string& why) -> std::runtime_error {
        return std::runtime_error("shard result: " + why + " in " + path);
    };
    constexpr std::size_t kFixed = 4 + 4 + 1 + 8 + 8;
    if (body.size() < kFixed) throw fail("truncated payload (missing header fields)");
    ShardResult result;
    std::size_t pos = 0;
    const auto get = [&](void* out, std::size_t size) {
        std::memcpy(out, body.data() + pos, size);
        pos += size;
    };
    get(&result.manifest_crc, sizeof(result.manifest_crc));
    get(&result.shard_id, sizeof(result.shard_id));
    const auto kind_byte = static_cast<std::uint8_t>(body[pos++]);
    if (kind_byte > static_cast<std::uint8_t>(CampaignKind::Statistical))
        throw fail("unknown campaign kind " + std::to_string(kind_byte));
    result.kind = static_cast<CampaignKind>(kind_byte);
    get(&result.range.begin, sizeof(result.range.begin));
    get(&result.range.end, sizeof(result.range.end));
    if (result.range.begin >= result.range.end)
        throw fail("empty item range");
    const std::uint64_t items = result.range.size();
    const std::uint64_t expected =
        kFixed + items * (result.kind == CampaignKind::Statistical ? 9 : 1);
    if (body.size() != expected)
        throw fail("truncated payload (range promises " +
                   std::to_string(items) + " items = " +
                   std::to_string(expected) + " payload bytes, have " +
                   std::to_string(body.size()) + ")");
    result.outcomes.resize(items);
    get(result.outcomes.data(), items);
    if (result.kind == CampaignKind::Statistical) {
        result.subpops.resize(items);
        get(result.subpops.data(), items * sizeof(std::uint32_t));
        result.layers.resize(items);
        get(result.layers.data(), items * sizeof(std::int32_t));
    }
    return result;
}

}  // namespace statfi::shard

#pragma once
// Shard-result artifact: one shard's classified slice, self-describing
// enough for the merger to validate it without rebuilding the campaign.
//
// Besides the outcome bytes for its item range, a result records which
// manifest produced it (the manifest's payload CRC) and which shard of that
// manifest it is — so merging a result from a different campaign, a
// different planning run, or the wrong slot fails loudly instead of
// producing a silently wrong merged table. Statistical results additionally
// carry each item's subpopulation and layer attribution, so the merger can
// pool tallies without the model, the universe, or any RNG re-derivation.
//
// Framed artifact ("SFIS", CRC32-trailed, atomic rename — io/artifact.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "shard/manifest.hpp"

namespace statfi::shard {

struct ShardResult {
    std::uint32_t manifest_crc = 0;  ///< ShardManifest::crc() that produced it
    std::uint32_t shard_id = 0;
    CampaignKind kind = CampaignKind::Census;
    ShardRange range;  ///< item slice [begin, end) this result covers

    /// Per-item FaultOutcome bytes, item range.size() of them, in item order.
    std::vector<std::uint8_t> outcomes;
    /// Statistical only (empty for census), parallel to `outcomes`:
    std::vector<std::uint32_t> subpops;  ///< plan subpopulation per item
    std::vector<std::int32_t> layers;    ///< fault layer per item

    /// Atomic, checksummed save/load ("SFIS" v1). load() reports the
    /// violated invariant distinctly (empty file, short header, bad magic,
    /// version, truncated payload, checksum, array-size mismatch).
    void save(const std::string& path) const;
    static ShardResult load(const std::string& path);
};

}  // namespace statfi::shard

#include "shard/runner.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <thread>

#include "core/convergence.hpp"
#include "shard/fixture.hpp"

namespace statfi::shard {

namespace {

/// Identity of a statistical shard's journal: the campaign fingerprint over
/// the ITEM space instead of the fault universe. Swapping the size and
/// tagging the model id guarantees a census journal never resumes into a
/// statistical shard (and vice versa) even at the same path.
core::CampaignFingerprint item_fingerprint(core::CampaignFingerprint fp,
                                           std::uint64_t item_count) {
    fp.universe_size = item_count;
    fp.model_id += "#items";
    return fp;
}

/// Classify the item slice [range.begin, range.end) of a drawn sample with
/// journaled resume — the statistical twin of the engine's range-restricted
/// durable census.
void run_statistical_slice(core::CampaignEngine& engine,
                           const std::vector<core::DrawnFault>& items,
                           const ShardRange& range,
                           const core::CampaignFingerprint& journal_fp,
                           const ShardRunOptions& options,
                           const std::string& journal_path,
                           std::vector<std::uint8_t>& outcomes,
                           ShardRunReport& report) {
    telemetry::PhaseScope scope(options.telemetry, "shard_slice");
    const std::uint64_t span = range.size();
    std::vector<std::uint8_t> done(span, 0);
    auto recovery = core::CampaignJournal::recover(journal_path, journal_fp);
    if (!recovery.note.empty()) std::cerr << "statfi: " << recovery.note << "\n";
    for (const core::JournalRecord& rec : recovery.records) {
        if (rec.fault_index < range.begin || rec.fault_index >= range.end)
            continue;  // defensive: record outside this shard's slice
        const std::uint64_t local = rec.fault_index - range.begin;
        outcomes[local] = rec.outcome;
        if (!done[local]) {
            done[local] = 1;
            ++report.resumed;
        }
    }
    auto journal = core::CampaignJournal::open(journal_path, journal_fp,
                                               recovery.valid_bytes);

    // Sink-side counters land in worker 0's slot; sink_mutex serializes
    // them, which satisfies the registry's single-writer increment contract.
    telemetry::Session* const telemetry = options.telemetry;
    if (telemetry)
        telemetry->metrics().inc(0, telemetry->ids().journal_resumed_total,
                                 report.resumed);
    telemetry::ProgressReporter reporter(options.progress, span,
                                         report.resumed);
    std::atomic<std::uint64_t> classified{0};
    std::atomic<bool> cancelled{false};
    std::mutex sink_mutex;  // guards journal appends + progress callback
    std::uint64_t since_flush = 0;

    const std::size_t workers = engine.worker_count();
    const std::uint64_t chunk = (span + workers - 1) / workers;
    const auto work = [&](std::size_t w) {
        const std::uint64_t lo = w * chunk;
        const std::uint64_t hi = std::min(lo + chunk, span);
        for (std::uint64_t i = lo; i < hi; ++i) {
            if (done[i]) continue;
            if (cancelled.load(std::memory_order_relaxed)) return;
            if (options.cancel && options.cancel->stop_requested()) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            const core::FaultOutcome outcome =
                engine.core(w).evaluate(items[range.begin + i].fault);
            outcomes[i] = static_cast<std::uint8_t>(outcome);
            const std::uint64_t n =
                classified.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(sink_mutex);
            journal.append(range.begin + i, static_cast<std::uint8_t>(outcome));
            if (telemetry)
                telemetry->metrics().inc(
                    0, telemetry->ids().journal_records_total);
            if (++since_flush >= 4096) {
                journal.flush();
                if (telemetry)
                    telemetry->metrics().inc(
                        0, telemetry->ids().checkpoint_flushes_total);
                since_flush = 0;
            }
            if (reporter.due(report.resumed + n))
                reporter.report(report.resumed + n);
        }
    };
    if (workers == 1) {
        work(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
        for (auto& t : threads) t.join();
    }
    journal.flush();
    if (telemetry)
        telemetry->metrics().inc(0,
                                 telemetry->ids().checkpoint_flushes_total);
    report.classified = classified.load();
    report.complete = !cancelled.load();
    if (report.complete) reporter.finish(report.classified);
}

}  // namespace

ShardRunReport run_shard(const ShardManifest& manifest,
                         const std::string& manifest_path,
                         const ShardRunOptions& options) {
    manifest.validate();
    if (options.shard >= manifest.shards.size())
        throw std::invalid_argument(
            "shard runner: shard " + std::to_string(options.shard) +
            " out of range (manifest has " +
            std::to_string(manifest.shards.size()) + ")");
    const ShardRange range = manifest.shards[options.shard];

    ShardRunReport report;
    report.journal_path = shard_journal_path(manifest_path, options.shard);
    report.result_path = shard_result_path(manifest_path, options.shard);

    telemetry::EventLog* const log =
        options.telemetry ? options.telemetry->events() : nullptr;
    if (log)
        log->emit(telemetry::Event("shard_begin")
                      .field("shard",
                             static_cast<std::uint64_t>(options.shard))
                      .field("range_begin", range.begin)
                      .field("range_end", range.end));
    const auto emit_shard_end = [&] {
        if (log)
            log->emit(telemetry::Event("shard_end")
                          .field("shard",
                                 static_cast<std::uint64_t>(options.shard))
                          .field("complete", report.complete)
                          .field("resumed", report.resumed)
                          .field("classified", report.classified));
    };

    CampaignFixture fx = [&] {
        telemetry::PhaseScope scope(options.telemetry, "fixture_build");
        return build_fixture(manifest.recipe);
    }();
    core::CampaignEngine engine(fx.net, fx.eval, fx.config, options.threads,
                                options.telemetry);
    const core::CampaignFingerprint fp =
        engine.fingerprint(fx.universe, manifest.recipe.model);
    if (fp != manifest.fingerprint)
        throw std::runtime_error(
            "shard runner: rebuilt campaign fingerprint differs from the "
            "manifest (rebuilt " + fp.describe() + "; manifest " +
            manifest.fingerprint.describe() +
            "); refusing to contribute wrong outcomes");

    if (log) {
        if (manifest.kind() == CampaignKind::Census)
            core::emit_plan_event_census(*log, fx.universe);
        else
            core::emit_plan_event(*log, fx.universe, manifest.plan);
    }

    if (!options.resume) std::filesystem::remove(report.journal_path);

    ShardResult result;
    result.manifest_crc = manifest.crc();
    result.shard_id = options.shard;
    result.kind = manifest.kind();
    result.range = range;

    if (manifest.kind() == CampaignKind::Census) {
        core::DurabilityOptions durability;
        durability.journal_path = report.journal_path;
        durability.model_id = manifest.recipe.model;
        durability.cancel = options.cancel;
        durability.range_begin = range.begin;
        durability.range_end = range.end;
        const core::ExhaustiveRun run =
            engine.run_exhaustive_durable(fx.universe, durability,
                                          options.progress);
        report.complete = run.complete;
        report.resumed = run.resumed;
        report.classified = run.classified;
        if (!run.complete) {
            emit_shard_end();
            return report;
        }
        result.outcomes.resize(range.size());
        for (std::uint64_t i = 0; i < range.size(); ++i)
            result.outcomes[i] =
                static_cast<std::uint8_t>(run.outcomes.at(range.begin + i));
        report.critical = run.outcomes.critical_count(range.begin, range.end);
    } else {
        const std::vector<core::DrawnFault> items = core::draw_plan(
            fx.universe, manifest.plan,
            stats::Rng(manifest.recipe.seed).fork("campaign"));
        if (items.size() != manifest.item_count)
            throw std::runtime_error(
                "shard runner: drew " + std::to_string(items.size()) +
                " items but the manifest promises " +
                std::to_string(manifest.item_count) +
                " — plan/draw divergence");
        result.outcomes.assign(range.size(), 0);
        run_statistical_slice(engine, items, range,
                              item_fingerprint(fp, manifest.item_count),
                              options, report.journal_path, result.outcomes,
                              report);
        if (!report.complete) {
            emit_shard_end();
            return report;
        }
        for (const std::uint8_t o : result.outcomes)
            if (static_cast<core::FaultOutcome>(o) ==
                core::FaultOutcome::Critical)
                ++report.critical;
        result.subpops.resize(range.size());
        result.layers.resize(range.size());
        for (std::uint64_t i = 0; i < range.size(); ++i) {
            const auto& item = items[range.begin + i];
            result.subpops[i] = static_cast<std::uint32_t>(item.subpop);
            result.layers[i] = item.fault.layer;
        }
    }
    result.save(report.result_path);
    std::filesystem::remove(report.journal_path);
    emit_shard_end();
    return report;
}

}  // namespace statfi::shard

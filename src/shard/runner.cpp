#include "shard/runner.hpp"

#include <filesystem>

#include "core/convergence.hpp"
#include "shard/fixture.hpp"

namespace statfi::shard {

ShardRunReport run_shard(const ShardManifest& manifest,
                         const std::string& manifest_path,
                         const ShardRunOptions& options) {
    manifest.validate();
    if (options.shard >= manifest.shards.size())
        throw std::invalid_argument(
            "shard runner: shard " + std::to_string(options.shard) +
            " out of range (manifest has " +
            std::to_string(manifest.shards.size()) + ")");
    const ShardRange range = manifest.shards[options.shard];

    ShardRunReport report;
    report.journal_path = shard_journal_path(manifest_path, options.shard);
    report.result_path = shard_result_path(manifest_path, options.shard);

    telemetry::EventLog* const log =
        options.telemetry ? options.telemetry->events() : nullptr;
    if (log)
        log->emit(telemetry::Event("shard_begin")
                      .field("shard",
                             static_cast<std::uint64_t>(options.shard))
                      .field("range_begin", range.begin)
                      .field("range_end", range.end));
    const auto emit_shard_end = [&] {
        if (log)
            log->emit(telemetry::Event("shard_end")
                          .field("shard",
                                 static_cast<std::uint64_t>(options.shard))
                          .field("complete", report.complete)
                          .field("resumed", report.resumed)
                          .field("classified", report.classified));
    };

    CampaignFixture fx = [&] {
        telemetry::PhaseScope scope(options.telemetry, "fixture_build");
        return build_fixture(manifest.recipe);
    }();
    core::CampaignEngine engine(fx.net, fx.eval, fx.config, options.threads,
                                options.telemetry);
    const core::CampaignFingerprint fp =
        engine.fingerprint(fx.universe, manifest.recipe.model);
    if (fp != manifest.fingerprint)
        throw std::runtime_error(
            "shard runner: rebuilt campaign fingerprint differs from the "
            "manifest (rebuilt " + fp.describe() + "; manifest " +
            manifest.fingerprint.describe() +
            "); refusing to contribute wrong outcomes");

    if (log) {
        if (manifest.kind() == CampaignKind::Census)
            core::emit_plan_event_census(*log, fx.universe);
        else
            core::emit_plan_event(*log, fx.universe, manifest.plan);
    }

    if (!options.resume) std::filesystem::remove(report.journal_path);

    ShardResult result;
    result.manifest_crc = manifest.crc();
    result.shard_id = options.shard;
    result.kind = manifest.kind();
    result.range = range;

    if (manifest.kind() == CampaignKind::Census) {
        core::DurabilityOptions durability;
        durability.journal_path = report.journal_path;
        durability.model_id = manifest.recipe.model;
        durability.cancel = options.cancel;
        durability.range_begin = range.begin;
        durability.range_end = range.end;
        const core::ExhaustiveRun run =
            engine.run_exhaustive_durable(fx.universe, durability,
                                          options.progress);
        report.complete = run.complete;
        report.resumed = run.resumed;
        report.classified = run.classified;
        if (!run.complete) {
            emit_shard_end();
            return report;
        }
        result.outcomes.resize(range.size());
        for (std::uint64_t i = 0; i < range.size(); ++i)
            result.outcomes[i] =
                static_cast<std::uint8_t>(run.outcomes.at(range.begin + i));
        report.critical = run.outcomes.critical_count(range.begin, range.end);
    } else {
        const std::vector<core::DrawnFault> items = core::draw_plan(
            fx.universe, manifest.plan,
            stats::Rng(manifest.recipe.seed).fork("campaign"));
        if (items.size() != manifest.item_count)
            throw std::runtime_error(
                "shard runner: drew " + std::to_string(items.size()) +
                " items but the manifest promises " +
                std::to_string(manifest.item_count) +
                " — plan/draw divergence");
        // The engine's durable statistical path: journaled ITEM indices
        // under the item-space fingerprint, range-restricted to this slice.
        core::DurabilityOptions durability;
        durability.journal_path = report.journal_path;
        durability.model_id = manifest.recipe.model;
        durability.cancel = options.cancel;
        durability.range_begin = range.begin;
        durability.range_end = range.end;
        core::StatisticalRun run = engine.run_durable(
            fx.universe, manifest.plan, items, durability, options.progress);
        report.complete = run.complete;
        report.resumed = run.resumed;
        report.classified = run.classified;
        result.outcomes = std::move(run.outcomes);
        if (!report.complete) {
            emit_shard_end();
            return report;
        }
        for (const std::uint8_t o : result.outcomes)
            if (static_cast<core::FaultOutcome>(o) ==
                core::FaultOutcome::Critical)
                ++report.critical;
        result.subpops.resize(range.size());
        result.layers.resize(range.size());
        for (std::uint64_t i = 0; i < range.size(); ++i) {
            const auto& item = items[range.begin + i];
            result.subpops[i] = static_cast<std::uint32_t>(item.subpop);
            result.layers[i] = item.fault.layer;
        }
    }
    result.save(report.result_path);
    std::filesystem::remove(report.journal_path);
    emit_shard_end();
    return report;
}

}  // namespace statfi::shard

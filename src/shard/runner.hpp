#pragma once
// Shard runner: execute ONE shard of a manifest in this process, durably.
//
// The runner rebuilds the campaign fixture from the manifest's recipe,
// proves the rebuild matches by comparing campaign fingerprints, and then
// classifies its item slice through the ordinary CampaignEngine — so it
// inherits the engine's checkpoint/resume journal, cooperative
// cancellation, progress/ETA, and multi-worker execution unchanged. On
// completion it writes the checksummed shard-result artifact next to the
// manifest and removes its journal; on interruption it leaves the journal
// for a `--resume` rerun.
//
// Census shards journal GLOBAL FAULT indices (the engine's range-restricted
// durable census). Statistical shards journal ITEM indices into the
// canonical drawn sample; their journal fingerprint swaps the universe size
// for the item count and tags the model id, so a census journal can never
// be resumed into a statistical shard or vice versa.

#include <string>

#include "core/outcome.hpp"
#include "shard/manifest.hpp"
#include "shard/result.hpp"
#include "telemetry/session.hpp"

namespace statfi::shard {

struct ShardRunOptions {
    std::uint32_t shard = 0;
    bool resume = false;   ///< continue from a matching journal if present
    std::size_t threads = 1;  ///< engine workers (0 = hardware concurrency)
    const core::CancellationToken* cancel = nullptr;
    core::ProgressFn progress;  ///< heartbeat over this shard's item span
    /// Optional telemetry sink (borrowed); handed to the shard's engine, so
    /// counters/spans cover fixture build, classification, and journaling.
    telemetry::Session* telemetry = nullptr;
};

struct ShardRunReport {
    bool complete = false;
    std::uint64_t resumed = 0;     ///< items replayed from the journal
    std::uint64_t classified = 0;  ///< items classified by this run
    std::uint64_t critical = 0;    ///< Critical outcomes in this shard's slice
    std::string result_path;       ///< written artifact (complete runs only)
    std::string journal_path;      ///< checkpoint journal (interrupted runs)
};

/// Run shard @p options.shard of @p manifest; artifacts are placed next to
/// @p manifest_path. @throws std::runtime_error when the rebuilt fixture's
/// fingerprint does not match the manifest (diverged binary/data), and
/// std::invalid_argument for an out-of-range shard id.
ShardRunReport run_shard(const ShardManifest& manifest,
                         const std::string& manifest_path,
                         const ShardRunOptions& options);

}  // namespace statfi::shard

#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statfi::stats {

namespace {
std::vector<double> sorted_copy(std::span<const double> xs) {
    std::vector<double> s(xs.begin(), xs.end());
    std::sort(s.begin(), s.end());
    return s;
}
}  // namespace

double mean(std::span<const double> xs) {
    if (xs.empty()) throw std::domain_error("mean: empty input");
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
    if (xs.empty()) throw std::domain_error("min_of: empty input");
    return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
    if (xs.empty()) throw std::domain_error("max_of: empty input");
    return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) throw std::domain_error("quantile: empty input");
    if (!(q >= 0.0 && q <= 1.0))
        throw std::domain_error("quantile: q must be in [0,1]");
    const auto s = sorted_copy(xs);
    if (s.size() == 1) return s[0];
    const double h = q * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, s.size() - 1);
    const double frac = h - std::floor(h);
    return s[lo] + frac * (s[hi] - s[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Fences tukey_fences(std::span<const double> xs, double k) {
    const double q1 = quantile(xs, 0.25);
    const double q3 = quantile(xs, 0.75);
    const double iqr = q3 - q1;
    return Fences{q1 - k * iqr, q3 + k * iqr};
}

std::vector<std::size_t> outlier_indices(std::span<const double> xs, double k) {
    const Fences f = tukey_fences(xs, k);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < xs.size(); ++i)
        if (xs[i] < f.lo || xs[i] > f.hi) out.push_back(i);
    return out;
}

std::vector<double> minmax_normalize(std::span<const double> xs, double a,
                                     double b) {
    if (xs.empty()) return {};
    const double lo = min_of(xs);
    const double hi = max_of(xs);
    std::vector<double> out(xs.size());
    if (hi == lo) {
        std::fill(out.begin(), out.end(), b);
        return out;
    }
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = a + (xs[i] - lo) * (b - a) / (hi - lo);
    return out;
}

std::vector<double> minmax_normalize_robust(std::span<const double> xs, double a,
                                            double b, double tukey_k) {
    if (xs.empty()) return {};
    const Fences f = tukey_fences(xs, tukey_k);
    // Min/max over inliers only.
    bool any_inlier = false;
    double lo = 0.0, hi = 0.0;
    for (double x : xs) {
        if (x < f.lo || x > f.hi) continue;
        if (!any_inlier) {
            lo = hi = x;
            any_inlier = true;
        } else {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    std::vector<double> out(xs.size());
    if (!any_inlier || hi == lo) {
        // Degenerate distribution: fall back to the safest (max-FI) choice.
        std::fill(out.begin(), out.end(), b);
        return out;
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double v = a + (xs[i] - lo) * (b - a) / (hi - lo);
        out[i] = std::clamp(v, std::min(a, b), std::max(a, b));
    }
    return out;
}

}  // namespace statfi::stats

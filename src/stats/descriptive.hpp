#pragma once
// Descriptive statistics and outlier detection. The data-aware methodology
// (paper §III-B) min-max normalizes the per-bit criticality D_avg "without
// considering the outliers"; we implement Tukey IQR fences for that.

#include <cstddef>
#include <span>
#include <vector>

namespace statfi::stats {

double mean(std::span<const double> xs);
/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 elements.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated quantile (type-7, the numpy/R default), q in [0,1].
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Tukey fences: [Q1 - k*IQR, Q3 + k*IQR]; the classic outlier rule uses
/// k = 1.5.
struct Fences {
    double lo = 0.0;
    double hi = 0.0;
};
Fences tukey_fences(std::span<const double> xs, double k = 1.5);

/// Indices of elements falling outside the Tukey fences.
std::vector<std::size_t> outlier_indices(std::span<const double> xs,
                                         double k = 1.5);

/// Min-max normalize xs into [a, b]. Elements outside the Tukey fences are
/// excluded from the min/max computation and the result is clamped to
/// [a, b] — so high outliers saturate at b and low outliers at a, exactly
/// the paper's "assign the outliers the highest criticality".
/// If all (non-outlier) values are equal, every element maps to b.
std::vector<double> minmax_normalize_robust(std::span<const double> xs, double a,
                                            double b, double tukey_k = 1.5);

/// Plain min-max normalization into [a, b] (no outlier handling).
std::vector<double> minmax_normalize(std::span<const double> xs, double a,
                                     double b);

}  // namespace statfi::stats

#include "stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace statfi::stats {

namespace {
constexpr double kSqrt2 = 1.41421356237309504880;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;
}  // namespace

double normal_pdf(double x) noexcept {
    return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) noexcept {
    return 0.5 * std::erfc(-x / kSqrt2);
}

double normal_quantile(double p) {
    if (!(p > 0.0 && p < 1.0))
        throw std::domain_error("normal_quantile: p must be in (0,1)");

    // Acklam's rational approximation.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    double x = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step using the exact CDF brings the error to
    // ~1e-15 in the central region.
    const double e = normal_cdf(x) - p;
    const double u = e / normal_pdf(x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double normal_two_sided_z(double confidence) {
    if (!(confidence > 0.0 && confidence < 1.0))
        throw std::domain_error("normal_two_sided_z: confidence must be in (0,1)");
    return normal_quantile(0.5 + confidence / 2.0);
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
    if (k > n)
        throw std::domain_error("log_binomial_coefficient: k > n");
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t k, std::uint64_t n, double p) {
    if (k > n) return 0.0;
    if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0) return k == n ? 1.0 : 0.0;
    const double logp = log_binomial_coefficient(n, k) +
                        static_cast<double>(k) * std::log(p) +
                        static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(logp);
}

double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) {
    if (k >= n) return 1.0;
    if (p <= 0.0) return 1.0;
    if (p >= 1.0) return 0.0;
    // P(X <= k) = I_{1-p}(n-k, k+1) via the incomplete beta — O(1) and stable
    // for the large n encountered in fault populations.
    return incomplete_beta(static_cast<double>(n - k), static_cast<double>(k) + 1.0,
                           1.0 - p);
}

double binomial_mean(std::uint64_t n, double p) noexcept {
    return static_cast<double>(n) * p;
}

double binomial_variance(std::uint64_t n, double p) noexcept {
    return static_cast<double>(n) * p * (1.0 - p);
}

double hypergeometric_pmf(std::uint64_t k, std::uint64_t N, std::uint64_t K,
                          std::uint64_t n) {
    if (K > N || n > N)
        throw std::domain_error("hypergeometric_pmf: K and n must not exceed N");
    if (k > n || k > K) return 0.0;
    if (n - k > N - K) return 0.0;  // not enough failures in the population
    const double logp = log_binomial_coefficient(K, k) +
                        log_binomial_coefficient(N - K, n - k) -
                        log_binomial_coefficient(N, n);
    return std::exp(logp);
}

double hypergeometric_mean(std::uint64_t N, std::uint64_t K,
                           std::uint64_t n) noexcept {
    if (N == 0) return 0.0;
    return static_cast<double>(n) * static_cast<double>(K) / static_cast<double>(N);
}

double hypergeometric_variance(std::uint64_t N, std::uint64_t K,
                               std::uint64_t n) noexcept {
    if (N <= 1) return 0.0;
    const double Nd = static_cast<double>(N);
    const double p = static_cast<double>(K) / Nd;
    const double fpc = (Nd - static_cast<double>(n)) / (Nd - 1.0);
    return static_cast<double>(n) * p * (1.0 - p) * fpc;
}

double incomplete_beta(double a, double b, double x) {
    if (!(a > 0.0) || !(b > 0.0))
        throw std::domain_error("incomplete_beta: a, b must be positive");
    if (x < 0.0 || x > 1.0)
        throw std::domain_error("incomplete_beta: x must be in [0,1]");
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;

    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
    // fraction in its rapidly-converging region.
    if (x > (a + 1.0) / (a + b + 2.0))
        return 1.0 - incomplete_beta(b, a, 1.0 - x);

    const double log_front = a * std::log(x) + b * std::log1p(-x) -
                             std::log(a) -
                             (std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b));
    const double front = std::exp(log_front);

    // Lentz's modified continued fraction.
    constexpr double tiny = 1e-300;
    constexpr double eps = 1e-15;
    double f = 1.0, c = 1.0, d = 0.0;
    for (int i = 0; i <= 400; ++i) {
        const int m = i / 2;
        double numerator = 0.0;
        if (i == 0) {
            numerator = 1.0;
        } else if (i % 2 == 0) {
            numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
        } else {
            numerator = -((a + m) * (a + b + m) * x) /
                        ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
        }
        d = 1.0 + numerator * d;
        if (std::fabs(d) < tiny) d = tiny;
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if (std::fabs(c) < tiny) c = tiny;
        const double delta = c * d;
        f *= delta;
        if (std::fabs(1.0 - delta) < eps) break;
    }
    return front * (f - 1.0);
}

double incomplete_beta_inv(double a, double b, double p) {
    if (p <= 0.0) return 0.0;
    if (p >= 1.0) return 1.0;
    // Bisection to 1e-12; robust for all (a, b) we encounter, and the cost
    // (≈40 beta evaluations) is irrelevant next to fault simulation.
    double lo = 0.0, hi = 1.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (incomplete_beta(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-14) break;
    }
    return 0.5 * (lo + hi);
}

}  // namespace statfi::stats

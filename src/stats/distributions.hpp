#pragma once
// Probability distributions needed by the statistical fault-injection
// machinery: the standard normal (for confidence coefficients and the normal
// approximation to the binomial), the binomial itself (exact checks and
// Clopper–Pearson intervals), and the hypergeometric distribution (the exact
// law of sampling faults *without replacement* from a finite population).

#include <cstdint>

namespace statfi::stats {

/// Standard normal probability density.
double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution function, Phi(x).
double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF (quantile), Acklam's rational approximation
/// refined by one Halley step; |error| < 1e-13 over (0,1).
/// @pre 0 < p < 1
double normal_quantile(double p);

/// Two-sided confidence coefficient: z such that P(|Z| <= z) = confidence.
/// E.g. confidence 0.99 -> 2.5758...
/// @pre 0 < confidence < 1
double normal_two_sided_z(double confidence);

/// log(n choose k) via lgamma; exact enough for n up to ~1e15.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// Binomial pmf P(X = k), X ~ B(n, p). Computed in log-space.
double binomial_pmf(std::uint64_t k, std::uint64_t n, double p);

/// Binomial cdf P(X <= k), X ~ B(n, p). Direct summation in log-space;
/// intended for the moderate n used in interval inversion and tests.
double binomial_cdf(std::uint64_t k, std::uint64_t n, double p);

/// Mean and variance of B(n, p): n*p and n*p*(1-p)  (the paper's Eq. 2).
double binomial_mean(std::uint64_t n, double p) noexcept;
double binomial_variance(std::uint64_t n, double p) noexcept;

/// Hypergeometric pmf: probability of k successes in a sample of n drawn
/// without replacement from a population of N containing K successes.
double hypergeometric_pmf(std::uint64_t k, std::uint64_t N, std::uint64_t K,
                          std::uint64_t n);

/// Hypergeometric mean n*K/N and variance with the finite population
/// correction factor (N-n)/(N-1) that Eq. 1 of the paper applies.
double hypergeometric_mean(std::uint64_t N, std::uint64_t K,
                           std::uint64_t n) noexcept;
double hypergeometric_variance(std::uint64_t N, std::uint64_t K,
                               std::uint64_t n) noexcept;

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz). Used for exact binomial tail probabilities and
/// Clopper–Pearson interval endpoints.
/// @pre a > 0, b > 0, 0 <= x <= 1
double incomplete_beta(double a, double b, double x);

/// Inverse of the regularized incomplete beta in x: finds x with
/// I_x(a, b) = p by bisection + Newton. @pre 0 <= p <= 1
double incomplete_beta_inv(double a, double b, double p);

}  // namespace statfi::stats

#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "stats/sample_size.hpp"

namespace statfi::stats {

namespace {

void validate(std::uint64_t successes, std::uint64_t n, double confidence) {
    if (n == 0) throw std::domain_error("interval: n must be > 0");
    if (successes > n) throw std::domain_error("interval: successes > n");
    if (!(confidence > 0.0 && confidence < 1.0))
        throw std::domain_error("interval: confidence must be in (0,1)");
}

Interval clip(double lo, double hi) noexcept {
    return Interval{std::max(0.0, lo), std::min(1.0, hi)};
}

}  // namespace

Interval wald_interval_fpc(std::uint64_t successes, std::uint64_t n,
                           std::uint64_t population, double confidence) {
    validate(successes, n, confidence);
    if (population < n)
        throw std::domain_error("wald_interval_fpc: population < n");
    const double p_hat = static_cast<double>(successes) / static_cast<double>(n);
    const double t = normal_two_sided_z(confidence);
    const double e = achieved_error_margin_at(population, n, p_hat, t);
    return clip(p_hat - e, p_hat + e);
}

Interval wald_interval(std::uint64_t successes, std::uint64_t n,
                       double confidence) {
    validate(successes, n, confidence);
    const double p_hat = static_cast<double>(successes) / static_cast<double>(n);
    const double z = normal_two_sided_z(confidence);
    const double e = z * std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(n));
    return clip(p_hat - e, p_hat + e);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t n,
                         double confidence) {
    validate(successes, n, confidence);
    const double p_hat = static_cast<double>(successes) / static_cast<double>(n);
    const double z = normal_two_sided_z(confidence);
    const double z2 = z * z;
    const double nd = static_cast<double>(n);
    const double denom = 1.0 + z2 / nd;
    const double center = (p_hat + z2 / (2.0 * nd)) / denom;
    const double half =
        z * std::sqrt(p_hat * (1.0 - p_hat) / nd + z2 / (4.0 * nd * nd)) / denom;
    return clip(center - half, center + half);
}

Interval clopper_pearson_interval(std::uint64_t successes, std::uint64_t n,
                                  double confidence) {
    validate(successes, n, confidence);
    const double alpha = 1.0 - confidence;
    const double k = static_cast<double>(successes);
    const double nd = static_cast<double>(n);
    Interval iv;
    iv.lo = (successes == 0)
                ? 0.0
                : incomplete_beta_inv(k, nd - k + 1.0, alpha / 2.0);
    iv.hi = (successes == n)
                ? 1.0
                : incomplete_beta_inv(k + 1.0, nd - k, 1.0 - alpha / 2.0);
    return iv;
}

}  // namespace statfi::stats

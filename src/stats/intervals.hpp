#pragma once
// Confidence intervals for a binomial/hypergeometric proportion — used to
// attach error margins to fault-injection campaign estimates, and to ablate
// the paper's normal-approximation margin against interval constructions
// with better small-sample coverage.

#include <cstdint>

namespace statfi::stats {

/// A two-sided confidence interval [lo, hi] for a proportion.
struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    [[nodiscard]] double width() const noexcept { return hi - lo; }
    [[nodiscard]] double center() const noexcept { return 0.5 * (lo + hi); }
    [[nodiscard]] bool contains(double value) const noexcept {
        return value >= lo && value <= hi;
    }
};

/// Normal-approximation (Wald) interval with the finite-population
/// correction — exactly the margin construction the paper uses:
///   p_hat ± t * sqrt(p_hat(1-p_hat)/n * (N-n)/(N-1)),   clipped to [0,1].
/// @param successes number of critical faults observed
/// @param n sample size (> 0)
/// @param population total population N (>= n)
/// @param confidence two-sided confidence level in (0,1)
Interval wald_interval_fpc(std::uint64_t successes, std::uint64_t n,
                           std::uint64_t population, double confidence);

/// Wald interval without the finite-population correction (infinite N).
Interval wald_interval(std::uint64_t successes, std::uint64_t n,
                       double confidence);

/// Wilson score interval — much better coverage than Wald for p near 0 or 1,
/// which is where most per-bit fault criticalities live.
Interval wilson_interval(std::uint64_t successes, std::uint64_t n,
                         double confidence);

/// Clopper–Pearson "exact" interval via the incomplete beta inverse;
/// guaranteed coverage >= confidence at the cost of conservatism.
Interval clopper_pearson_interval(std::uint64_t successes, std::uint64_t n,
                                  double confidence);

}  // namespace statfi::stats

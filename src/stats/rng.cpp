#include "stats/rng.hpp"

#include <cmath>

namespace statfi::stats {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) noexcept {
    // FNV-1a 64-bit over the bytes, then a splitmix64 finalize for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    std::uint64_t s = h;
    return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    // xoshiro's all-zero state is absorbing; splitmix64 cannot emit four
    // zeros in a row, but guard anyway for hand-crafted seeds.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::string_view label) const noexcept {
    // Combine current state with the label hash; the temporary copy keeps
    // fork() const so a parent stream is unaffected by derivation.
    std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
    return Rng(mix ^ hash_label(label));
}

Rng Rng::fork(std::uint64_t index) const noexcept {
    std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
    std::uint64_t sm = index + 0x632be59bd9b4e019ULL;
    return Rng(mix ^ splitmix64(sm));
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 in (0,1] to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

}  // namespace statfi::stats

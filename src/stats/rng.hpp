#pragma once
// Deterministic pseudo-random number generation for reproducible fault
// injection campaigns.
//
// Every random decision in StatFI (fault sampling, dataset synthesis, weight
// initialization) flows from a named Rng stream so that experiments are
// bit-for-bit reproducible across runs and machines. The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 as its authors
// recommend.

#include <cstdint>
#include <limits>
#include <string_view>

namespace statfi::stats {

/// Splitmix64 step: the canonical seeding/stream-derivation mixer.
/// Advances @p state and returns the next 64-bit output.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Hash a label into a 64-bit value, for deriving named sub-streams.
/// FNV-1a followed by a splitmix64 finalizer; stable across platforms.
std::uint64_t hash_label(std::string_view label) noexcept;

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with 256-bit state.
///
/// Satisfies std::uniform_random_bit_generator so it can drive standard
/// <random> distributions, though StatFI prefers the bias-free members below.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds all 256 bits of state from @p seed via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    /// Derive an independent, reproducible sub-stream for @p label.
    /// Streams with different labels (or parents) are statistically
    /// independent for all practical purposes.
    [[nodiscard]] Rng fork(std::string_view label) const noexcept;
    /// Derive an independent sub-stream for a numeric index (e.g. sample id).
    [[nodiscard]] Rng fork(std::uint64_t index) const noexcept;

    /// Next raw 64-bit output.
    std::uint64_t next() noexcept;

    std::uint64_t operator()() noexcept { return next(); }
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
    /// @pre bound > 0
    std::uint64_t uniform_below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive. @pre lo <= hi
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1) with 53 random mantissa bits.
    double uniform01() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Standard normal variate (Box–Muller, cached pair).
    double normal() noexcept;

    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Bernoulli trial with success probability @p p.
    bool bernoulli(double p) noexcept;

private:
    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace statfi::stats

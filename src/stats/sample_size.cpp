#include "stats/sample_size.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace statfi::stats {

namespace {

void validate(const SampleSpec& spec) {
    if (!(spec.error_margin > 0.0))
        throw std::domain_error("SampleSpec: error_margin must be > 0");
    if (!(spec.confidence > 0.0 && spec.confidence < 1.0))
        throw std::domain_error("SampleSpec: confidence must be in (0,1)");
    if (!(spec.p >= 0.0 && spec.p <= 1.0))
        throw std::domain_error("SampleSpec: p must be in [0,1]");
}

}  // namespace

double confidence_coefficient(double confidence, ConfidenceCoefficient mode) {
    if (!(confidence > 0.0 && confidence < 1.0))
        throw std::domain_error("confidence_coefficient: confidence must be in (0,1)");
    if (mode == ConfidenceCoefficient::Table) {
        // Classic two-sided normal table values, as used by the paper.
        if (std::fabs(confidence - 0.90) < 1e-12) return 1.645;
        if (std::fabs(confidence - 0.95) < 1e-12) return 1.96;
        if (std::fabs(confidence - 0.99) < 1e-12) return 2.58;
        if (std::fabs(confidence - 0.999) < 1e-12) return 3.29;
    }
    return normal_two_sided_z(confidence);
}

double sample_size_infinite(const SampleSpec& spec) {
    validate(spec);
    const double t = spec.t();
    const double pq = spec.p * (1.0 - spec.p);
    return t * t * pq / (spec.error_margin * spec.error_margin);
}

double sample_size_real(std::uint64_t population, const SampleSpec& spec) {
    validate(spec);
    if (population == 0) return 0.0;
    const double N = static_cast<double>(population);
    const double t = spec.t();
    const double pq = spec.p * (1.0 - spec.p);
    if (pq == 0.0) {
        // Degenerate prior: every trial has a certain outcome; a single
        // observation determines the population (n = 1).
        return 1.0;
    }
    const double e2 = spec.error_margin * spec.error_margin;
    return N / (1.0 + e2 * (N - 1.0) / (t * t * pq));
}

std::uint64_t sample_size(std::uint64_t population, const SampleSpec& spec) {
    if (population == 0) return 0;
    const double n_real = sample_size_real(population, spec);
    auto n = static_cast<std::uint64_t>(std::llround(n_real));
    n = std::max<std::uint64_t>(n, 1);
    n = std::min(n, population);
    return n;
}

double achieved_error_margin(std::uint64_t population, std::uint64_t n,
                             const SampleSpec& spec) {
    validate(spec);
    return achieved_error_margin_at(population, n, spec.p, spec.t());
}

double achieved_error_margin_at(std::uint64_t population, std::uint64_t n,
                                double p_hat, double t) {
    if (n == 0)
        throw std::domain_error("achieved_error_margin: n must be > 0");
    if (n > population)
        throw std::domain_error("achieved_error_margin: n must not exceed N");
    if (population <= 1 || n == population) return 0.0;
    const double N = static_cast<double>(population);
    const double nd = static_cast<double>(n);
    const double pq = p_hat * (1.0 - p_hat);
    const double fpc = (N - nd) / (N - 1.0);
    return t * std::sqrt(pq / nd * fpc);
}

}  // namespace statfi::stats

#pragma once
// Sample-size determination for statistical fault injection — the paper's
// Eq. 1 and its inversion.
//
//   n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))          (Eq. 1)
//
// where N is the fault-population size, e the desired error margin, t the
// confidence coefficient, and p the a-priori probability that an injected
// fault becomes a critical failure. The formula is the normal approximation
// to the binomial with the finite-population correction factor applied
// (Leveugle et al., DATE 2009).
//
// NOTE on t: the paper's published sample sizes (e.g. layer-wise n = 10,389
// for N = 27,648 at e = 1%, 99% confidence) are reproduced exactly with the
// classic *table* value t = 2.58, not the exact quantile 2.5758. Both are
// available; ConfidenceCoefficient::Table is the default so our tables match
// the paper digit-for-digit.

#include <cstdint>

namespace statfi::stats {

/// How to turn a confidence level into the t coefficient of Eq. 1.
enum class ConfidenceCoefficient {
    Table,  ///< classic rounded table values (0.90->1.645, 0.95->1.96, 0.99->2.58)
    Exact,  ///< exact two-sided normal quantile
};

/// Returns the confidence coefficient t for a two-sided confidence level.
/// Table mode falls back to the exact quantile for levels without a classic
/// table entry.
double confidence_coefficient(double confidence,
                              ConfidenceCoefficient mode = ConfidenceCoefficient::Table);

/// Parameters of a statistical fault-injection sample-size computation.
struct SampleSpec {
    double error_margin = 0.01;  ///< e: half-width of the confidence interval
    double confidence = 0.99;    ///< two-sided confidence level
    double p = 0.5;              ///< a-priori probability of success (critical fault)
    ConfidenceCoefficient mode = ConfidenceCoefficient::Table;

    /// The t coefficient implied by confidence/mode.
    [[nodiscard]] double t() const { return confidence_coefficient(confidence, mode); }
};

/// Sample size for an *infinite* population: n0 = t^2 p (1-p) / e^2.
double sample_size_infinite(const SampleSpec& spec);

/// Eq. 1: sample size for a finite population of @p population faults,
/// rounded to the nearest integer and clamped to [min(1, N), N].
/// Throws std::domain_error for invalid spec values (e <= 0, p outside
/// [0, 1], confidence outside (0, 1)).
std::uint64_t sample_size(std::uint64_t population, const SampleSpec& spec);

/// Exact (unrounded) value of Eq. 1; exposed for tests and analysis.
double sample_size_real(std::uint64_t population, const SampleSpec& spec);

/// Inversion of Eq. 1: the error margin achieved by a sample of size @p n
/// from a population of @p N at probability @p p and coefficient t:
///   e = t * sqrt( p(1-p)/n * (N-n)/(N-1) )
/// This is the half-width the paper reports as the "error margin" of a
/// statistical campaign. For n == N the margin is exactly 0.
double achieved_error_margin(std::uint64_t population, std::uint64_t n,
                             const SampleSpec& spec);

/// As above but evaluated at the *observed* success rate p_hat (post-campaign
/// margin around the estimate, rather than the planning margin at p = 0.5).
double achieved_error_margin_at(std::uint64_t population, std::uint64_t n,
                                double p_hat, double t);

}  // namespace statfi::stats

#include "stats/sampling.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace statfi::stats {

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                      std::uint64_t n, Rng& rng) {
    if (n > population)
        throw std::domain_error("sample_without_replacement: n > population");
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(n) * 2);
    // Floyd: for j = N-n .. N-1, pick t in [0, j]; insert t, or j if t taken.
    for (std::uint64_t j = population - n; j < population; ++j) {
        const std::uint64_t t = rng.uniform_below(j + 1);
        if (!chosen.insert(t).second) chosen.insert(j);
    }
    std::vector<std::uint64_t> result(chosen.begin(), chosen.end());
    std::sort(result.begin(), result.end());
    return result;
}

std::vector<std::uint64_t> selection_sample(std::uint64_t population,
                                            std::uint64_t n, Rng& rng) {
    if (n > population)
        throw std::domain_error("selection_sample: n > population");
    std::vector<std::uint64_t> result;
    result.reserve(static_cast<std::size_t>(n));
    std::uint64_t remaining_pop = population;
    std::uint64_t remaining_n = n;
    for (std::uint64_t i = 0; i < population && remaining_n > 0; ++i) {
        // Include i with probability remaining_n / remaining_pop.
        if (rng.uniform_below(remaining_pop) < remaining_n) {
            result.push_back(i);
            --remaining_n;
        }
        --remaining_pop;
    }
    return result;
}

std::vector<std::uint64_t> sample_indices(std::uint64_t population,
                                          std::uint64_t n, Rng& rng) {
    if (n > population)
        throw std::domain_error("sample_indices: n > population");
    if (n == population) {
        std::vector<std::uint64_t> all(static_cast<std::size_t>(population));
        for (std::uint64_t i = 0; i < population; ++i)
            all[static_cast<std::size_t>(i)] = i;
        return all;
    }
    // Above ~25% sampling fraction the O(N) streaming pass beats the hash
    // set in both time constant and memory locality.
    if (population < 4 * n) return selection_sample(population, n, rng);
    return sample_without_replacement(population, n, rng);
}

}  // namespace statfi::stats

#pragma once
// Random-sampling algorithms used to draw fault samples from (sub)populations
// without materializing the population. Fault populations reach 1.4e8
// elements (MobileNetV2), so everything here is O(n) or O(n log n) in the
// *sample* size, never in the population size.

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace statfi::stats {

/// Draw @p n distinct indices uniformly from [0, population) without
/// replacement, using Robert Floyd's algorithm: O(n) expected time, O(n)
/// memory, independent of population size. Result is sorted ascending so
/// downstream fault enumeration can stream through it.
/// @pre n <= population
std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                      std::uint64_t n, Rng& rng);

/// Selection sampling (Knuth's Algorithm S): O(population) time, O(n) memory,
/// emits indices in increasing order with exactly uniform inclusion
/// probability. Preferable when n is a large fraction of the population
/// (Floyd's hash set would hold nearly everything anyway).
std::vector<std::uint64_t> selection_sample(std::uint64_t population,
                                            std::uint64_t n, Rng& rng);

/// Chooses between Floyd and Algorithm S based on the sampling fraction.
std::vector<std::uint64_t> sample_indices(std::uint64_t population,
                                          std::uint64_t n, Rng& rng);

/// Reservoir sampling (Algorithm R) over a stream of unknown length:
/// returns min(n, stream length) items. Provided for streaming fault sources.
template <typename Iter>
std::vector<typename std::iterator_traits<Iter>::value_type> reservoir_sample(
    Iter first, Iter last, std::uint64_t n, Rng& rng) {
    std::vector<typename std::iterator_traits<Iter>::value_type> reservoir;
    reservoir.reserve(static_cast<std::size_t>(n));
    std::uint64_t seen = 0;
    for (; first != last; ++first, ++seen) {
        if (reservoir.size() < n) {
            reservoir.push_back(*first);
        } else {
            const std::uint64_t j = rng.uniform_below(seen + 1);
            if (j < n) reservoir[static_cast<std::size_t>(j)] = *first;
        }
    }
    return reservoir;
}

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& items, Rng& rng) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.uniform_below(i));
        std::swap(items[i - 1], items[j]);
    }
}

}  // namespace statfi::stats

#include "stats/stratified.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace statfi::stats {

namespace {

/// Distribute `total` according to non-negative weights, largest-remainder
/// rounding, capping stratum h at cap[h]. Returns allocation summing to
/// min(total, sum(cap)).
std::vector<std::uint64_t> weighted_allocation(
    const std::vector<double>& weights, const std::vector<std::uint64_t>& caps,
    std::uint64_t total) {
    const std::size_t H = weights.size();
    std::vector<std::uint64_t> alloc(H, 0);
    std::uint64_t capacity = 0;
    for (auto c : caps) capacity += c;
    std::uint64_t budget = std::min(total, capacity);

    // Iterate because capping a stratum frees budget for the others.
    std::vector<bool> capped(H, false);
    while (budget > 0) {
        double weight_sum = 0.0;
        for (std::size_t h = 0; h < H; ++h)
            if (!capped[h]) weight_sum += weights[h];
        if (weight_sum <= 0.0) {
            // No weight left: spread the remainder over uncapped strata.
            for (std::size_t h = 0; h < H && budget > 0; ++h) {
                if (capped[h]) continue;
                const std::uint64_t room = caps[h] - alloc[h];
                const std::uint64_t take = std::min(room, budget);
                alloc[h] += take;
                budget -= take;
            }
            break;
        }
        // Provisional shares + remainders.
        std::vector<double> remainder(H, 0.0);
        std::vector<std::uint64_t> add(H, 0);
        std::uint64_t assigned = 0;
        for (std::size_t h = 0; h < H; ++h) {
            if (capped[h]) continue;
            const double share =
                static_cast<double>(budget) * weights[h] / weight_sum;
            add[h] = static_cast<std::uint64_t>(std::floor(share));
            remainder[h] = share - std::floor(share);
            assigned += add[h];
        }
        // Largest remainders get the leftover units.
        std::vector<std::size_t> order;
        for (std::size_t h = 0; h < H; ++h)
            if (!capped[h]) order.push_back(h);
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return remainder[a] > remainder[b];
        });
        std::uint64_t leftover = budget - assigned;
        for (std::size_t h : order) {
            if (leftover == 0) break;
            ++add[h];
            --leftover;
        }
        // Apply with caps; anything over a cap returns to the budget.
        std::uint64_t used = 0;
        bool newly_capped = false;
        for (std::size_t h = 0; h < H; ++h) {
            if (capped[h] || add[h] == 0) continue;
            const std::uint64_t room = caps[h] - alloc[h];
            const std::uint64_t take = std::min(room, add[h]);
            alloc[h] += take;
            used += take;
            if (alloc[h] == caps[h]) {
                capped[h] = true;
                newly_capped = true;
            }
        }
        budget -= used;
        if (used == 0 && !newly_capped) break;  // cannot make progress
    }
    return alloc;
}

}  // namespace

std::vector<std::uint64_t> proportional_allocation(
    const std::vector<std::uint64_t>& stratum_sizes, std::uint64_t total) {
    std::vector<double> weights(stratum_sizes.size());
    for (std::size_t h = 0; h < stratum_sizes.size(); ++h)
        weights[h] = static_cast<double>(stratum_sizes[h]);
    return weighted_allocation(weights, stratum_sizes, total);
}

std::vector<std::uint64_t> neyman_allocation(
    const std::vector<std::uint64_t>& stratum_sizes,
    const std::vector<double>& stratum_stddevs, std::uint64_t total) {
    if (stratum_sizes.size() != stratum_stddevs.size())
        throw std::domain_error("neyman_allocation: size/stddev length mismatch");
    std::vector<double> weights(stratum_sizes.size());
    for (std::size_t h = 0; h < stratum_sizes.size(); ++h) {
        if (stratum_stddevs[h] < 0.0)
            throw std::domain_error("neyman_allocation: negative stddev");
        weights[h] = static_cast<double>(stratum_sizes[h]) * stratum_stddevs[h];
    }
    auto alloc = weighted_allocation(weights, stratum_sizes, total);
    // Guarantee observability: one sample for zero-variance strata if the
    // budget allows, taken from the largest allocation.
    for (std::size_t h = 0; h < alloc.size(); ++h) {
        if (alloc[h] > 0 || stratum_sizes[h] == 0) continue;
        auto donor = std::max_element(alloc.begin(), alloc.end());
        if (donor != alloc.end() && *donor > 1) {
            --(*donor);
            alloc[h] = 1;
        }
    }
    return alloc;
}

}  // namespace statfi::stats

#pragma once
// Stratified-sampling allocation. A network-wise SFI that still wants
// per-layer detail must split its total budget across strata (layers or
// bit×layer subpopulations); these are the classic allocation rules.

#include <cstdint>
#include <vector>

namespace statfi::stats {

/// Allocate @p total sample slots across strata proportionally to stratum
/// sizes, using largest-remainder rounding so the result sums exactly to
/// min(total, sum(sizes)) and never exceeds any stratum size.
std::vector<std::uint64_t> proportional_allocation(
    const std::vector<std::uint64_t>& stratum_sizes, std::uint64_t total);

/// Neyman (optimal) allocation: slots proportional to N_h * sigma_h, with
/// largest-remainder rounding and per-stratum capping at N_h. Strata with
/// zero variance receive a minimal allocation of 1 (if any budget remains)
/// so their rate remains observable.
std::vector<std::uint64_t> neyman_allocation(
    const std::vector<std::uint64_t>& stratum_sizes,
    const std::vector<double>& stratum_stddevs, std::uint64_t total);

}  // namespace statfi::stats

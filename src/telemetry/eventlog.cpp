#include "telemetry/eventlog.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "report/json.hpp"

namespace statfi::telemetry {

namespace {

/// Shortest representation that round-trips a double — matches JsonWriter's
/// number formatting so event-log values re-serialize identically.
std::string fmt_number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v) return shorter;
    }
    return buf;
}

}  // namespace

Event& Event::field(std::string_view key, const std::string& v) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":\"";
    payload_ += report::json_escape(v);
    payload_ += '"';
    return *this;
}

Event& Event::field(std::string_view key, const char* v) {
    return field(key, std::string(v));
}

Event& Event::field(std::string_view key, double v) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":";
    payload_ += fmt_number(v);
    return *this;
}

Event& Event::field(std::string_view key, std::uint64_t v) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":";
    payload_ += std::to_string(v);
    return *this;
}

Event& Event::field(std::string_view key, std::int64_t v) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":";
    payload_ += std::to_string(v);
    return *this;
}

Event& Event::field(std::string_view key, bool v) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":";
    payload_ += v ? "true" : "false";
    return *this;
}

Event& Event::raw(std::string_view key, const std::string& json) {
    payload_ += ",\"";
    payload_ += report::json_escape(std::string(key));
    payload_ += "\":";
    payload_ += json;
    return *this;
}

EventLog::EventLog(std::ostream& out)
    : out_(out), epoch_(std::chrono::steady_clock::now()) {}

EventLog::EventLog(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(*owned_),
      epoch_(std::chrono::steady_clock::now()) {
    if (!out_)
        throw std::runtime_error("eventlog: cannot open " + path +
                                 " for writing");
}

void EventLog::emit(const Event& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (seq_ == 0 && event.type() != "campaign_header")
        throw std::logic_error(
            "eventlog: first event must be campaign_header, got " +
            event.type());
    const double ts =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_)
            .count();
    char ts_buf[32];
    std::snprintf(ts_buf, sizeof(ts_buf), "%.6f", ts);
    out_ << "{\"v\":" << kSchemaVersion << ",\"seq\":" << seq_++
         << ",\"ts\":" << ts_buf << ",\"type\":\""
         << report::json_escape(event.type()) << "\"" << trace_fields_
         << event.payload() << "}\n";
    out_.flush();
}

void EventLog::set_trace(const TraceContext& context) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!context.valid()) {
        trace_fields_.clear();
        return;
    }
    trace_fields_ = ",\"trace_id\":\"" + format_trace_id(context.trace_id) +
                    "\",\"span_id\":\"" + format_trace_id(context.span_id) +
                    "\"";
}

std::uint64_t EventLog::events_written() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

}  // namespace statfi::telemetry

#pragma once
// EventLog: the structured JSONL record of one campaign — the durable,
// replayable narrative the Observatory report and fleet tooling consume
// (DESIGN.md §5.13).
//
// Schema contract (frozen at version 1; tools/check_eventlog.py enforces it
// in CI):
//  * one JSON object per line, compact (no newlines inside an event);
//  * every event carries {"v":1,"seq":N,"ts":S,"type":"..."} — `seq` is a
//    strictly monotonic 0-based sequence number, `ts` seconds since the log
//    was opened (6 decimals);
//  * the FIRST event must be type "campaign_header" (header-first
//    invariant; emit() throws std::logic_error on any other type at seq 0);
//  * everything except `ts` is a deterministic function of the campaign —
//    two runs of the same recipe + seed produce byte-identical logs modulo
//    the ts values (asserted in tests/telemetry/eventlog_test.cpp).
//
// Event types at v1 (required keys beyond the envelope):
//   campaign_header  schema, command, model, approach, dtype, policy, seed,
//                    images, confidence, error_margin
//   plan             universe, planned, strata, bits, layers[] — emitted
//                    once the fixture + plan exist (the header goes out
//                    first so fixture_build itself is captured)
//   phase_begin      phase
//   phase_end        phase, seconds
//   resume           replayed
//   stratum_update   stratum, layer, bit, population, planned, done,
//                    critical, p_hat, wilson_lo/hi, wald_lo/hi
//   shard_begin      shard, range_begin, range_end
//   shard_end        shard, complete, resumed, classified
//   merge_artifact   shard, items, seconds
//   campaign_end     outcome ("complete"|"interrupted"), injected,
//                    critical, wall_seconds
//
// Writers append under a mutex and flush per event, so a crashed or
// interrupted campaign leaves a valid prefix and a live log can be tailed
// while the campaign runs. Like every telemetry sink the log only observes:
// campaign outcomes are bit-identical with it on or off.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/trace.hpp"

namespace statfi::telemetry {

/// One event under construction: envelope fields are stamped by EventLog,
/// payload fields are appended in call order (deterministic serialization).
class Event {
public:
    explicit Event(std::string type) : type_(std::move(type)) {}

    Event& field(std::string_view key, const std::string& v);
    Event& field(std::string_view key, const char* v);
    Event& field(std::string_view key, double v);
    Event& field(std::string_view key, std::uint64_t v);
    Event& field(std::string_view key, std::int64_t v);
    Event& field(std::string_view key, int v) {
        return field(key, static_cast<std::int64_t>(v));
    }
    Event& field(std::string_view key, bool v);
    /// Append a pre-serialized JSON value (arrays/objects built by the
    /// caller with JsonWriter).
    Event& raw(std::string_view key, const std::string& json);

    [[nodiscard]] const std::string& type() const noexcept { return type_; }
    [[nodiscard]] const std::string& payload() const noexcept {
        return payload_;
    }

private:
    std::string type_;
    std::string payload_;  ///< ",\"k\":v,..." fragment after the envelope
};

class EventLog {
public:
    static constexpr int kSchemaVersion = 1;
    static constexpr const char* kSchemaName = "statfi.eventlog.v1";

    /// Log into @p out (borrowed; must outlive the log). Used by tests and
    /// the in-memory report path.
    explicit EventLog(std::ostream& out);
    /// Log into a file at @p path (truncates). @throws std::runtime_error
    /// when the file cannot be opened.
    explicit EventLog(const std::string& path);

    /// Append one event. The first event must be of type "campaign_header"
    /// — any other type before the header throws std::logic_error (the
    /// header-first invariant validators rely on).
    void emit(const Event& event);

    /// Stamp a cross-process trace identity (fleet plane): every event
    /// emitted after this carries "trace_id" and "span_id" envelope fields
    /// (16-hex, constant for the life of the log). Unset (the default, or
    /// an invalid context) the envelope is byte-identical to pre-fleet
    /// logs. Call before the campaign_header so the whole log is stamped.
    void set_trace(const TraceContext& context);

    [[nodiscard]] std::uint64_t events_written() const noexcept;

private:
    std::unique_ptr<std::ostream> owned_;  ///< file-backed logs own the stream
    std::ostream& out_;
    mutable std::mutex mutex_;
    std::uint64_t seq_ = 0;
    std::chrono::steady_clock::time_point epoch_;
    std::string trace_fields_;  ///< pre-rendered ',"trace_id":...' fragment
};

}  // namespace statfi::telemetry

#include "telemetry/exporters.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "report/json.hpp"

namespace statfi::telemetry {

namespace {

/// Prometheus floating-point sample value / le label (%g round-trips the
/// magnitudes we emit and matches the ecosystem's formatting habits).
std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

const char* type_name(MetricKind kind) {
    switch (kind) {
        case MetricKind::Counter: return "counter";
        case MetricKind::Gauge: return "gauge";
        case MetricKind::Histogram: return "histogram";
    }
    return "untyped";
}

struct PerfFamily {
    const char* name;
    const char* help;
    std::uint64_t PerfSample::* field;
};

constexpr PerfFamily kPerfFamilies[] = {
    {"statfi_perf_instructions_total", "Instructions retired per phase",
     &PerfSample::instructions},
    {"statfi_perf_cycles_total", "CPU cycles per phase", &PerfSample::cycles},
    {"statfi_perf_cache_misses_total", "Cache misses per phase",
     &PerfSample::cache_misses},
    {"statfi_perf_branch_misses_total", "Branch misses per phase",
     &PerfSample::branch_misses},
};

}  // namespace

void write_prometheus(std::ostream& out, const MetricsSnapshot& snap,
                      const PerfPhases& perf) {
    for (const MetricValue& m : snap.metrics) {
        out << "# HELP " << m.name << " " << m.help << "\n";
        out << "# TYPE " << m.name << " " << type_name(m.kind) << "\n";
        switch (m.kind) {
            case MetricKind::Counter:
                out << m.name << " " << m.counter << "\n";
                break;
            case MetricKind::Gauge:
                out << m.name << " " << fmt(m.gauge) << "\n";
                break;
            case MetricKind::Histogram: {
                std::uint64_t cumulative = 0;
                for (std::size_t b = 0; b < m.bounds.size(); ++b) {
                    cumulative += m.bucket_counts[b];
                    out << m.name << "_bucket{le=\"" << fmt(m.bounds[b])
                        << "\"} " << cumulative << "\n";
                }
                cumulative += m.bucket_counts.back();
                out << m.name << "_bucket{le=\"+Inf\"} " << cumulative
                    << "\n";
                out << m.name << "_sum " << fmt(m.sum) << "\n";
                out << m.name << "_count " << m.count << "\n";
                break;
            }
        }
    }
    if (!perf.empty()) {
        for (const PerfFamily& family : kPerfFamilies) {
            out << "# HELP " << family.name << " " << family.help << "\n";
            out << "# TYPE " << family.name << " counter\n";
            for (const auto& [phase, sample] : perf)
                out << family.name << "{phase=\"" << phase << "\"} "
                    << sample.*family.field << "\n";
        }
    }
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap,
                        const PerfPhases& perf) {
    report::JsonWriter json(out);
    json.begin_object();
    json.field("workers", static_cast<std::uint64_t>(snap.workers));
    json.key("metrics").begin_array();
    for (const MetricValue& m : snap.metrics) {
        json.begin_object()
            .field("name", m.name)
            .field("help", m.help)
            .field("type", type_name(m.kind));
        switch (m.kind) {
            case MetricKind::Counter: json.field("value", m.counter); break;
            case MetricKind::Gauge: json.field("value", m.gauge); break;
            case MetricKind::Histogram:
                json.key("bounds").begin_array();
                for (const double b : m.bounds) json.value(b);
                json.end_array();
                json.key("bucket_counts").begin_array();
                for (const std::uint64_t c : m.bucket_counts) json.value(c);
                json.end_array();
                json.field("count", m.count).field("sum", m.sum);
                break;
        }
        json.end_object();
    }
    json.end_array();
    json.key("perf_phases").begin_array();
    for (const auto& [phase, sample] : perf) {
        json.begin_object()
            .field("phase", phase)
            .field("instructions", sample.instructions)
            .field("cycles", sample.cycles)
            .field("cache_misses", sample.cache_misses)
            .field("branch_misses", sample.branch_misses)
            .end_object();
    }
    json.end_array();
    json.end_object();
    json.finish();
}

void export_metrics_file(const Session& session, const std::string& path) {
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("telemetry: cannot write metrics file " +
                                 path);
    const MetricsSnapshot snap = session.metrics().snapshot();
    const PerfPhases perf = session.perf_phases();
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        write_metrics_json(out, snap, perf);
    else
        write_prometheus(out, snap, perf);
}

void export_trace_file(const Session& session, const std::string& path) {
    const TraceRecorder* trace = session.trace();
    if (!trace)
        throw std::runtime_error(
            "telemetry: tracing disabled on this session");
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("telemetry: cannot write trace file " +
                                 path);
    trace->write_chrome_trace(out);
}

}  // namespace statfi::telemetry

#pragma once
// Exporters: serialize a MetricsSnapshot (plus optional per-phase hardware
// counters) as Prometheus text exposition or JSON.
//
// Prometheus exposition follows the text format v0.0.4 rules the ecosystem
// scrapers expect: one # HELP / # TYPE pair per metric family, histogram
// `_bucket` samples CUMULATIVE with inclusive `le` labels ending at
// le="+Inf" (whose value equals `_count`), `_sum` and `_count` samples.
// tools/check_prometheus.py validates exactly these invariants in CI.
//
// The JSON flavor reuses report::JsonWriter, so it inherits its escaping
// and non-finite-double handling — one serializer to trust, not two.

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/perf.hpp"
#include "telemetry/session.hpp"

namespace statfi::telemetry {

using PerfPhases = std::vector<std::pair<std::string, PerfSample>>;

/// Prometheus text exposition of @p snap (+ statfi_perf_*_total{phase=...}
/// families when @p perf is non-empty).
void write_prometheus(std::ostream& out, const MetricsSnapshot& snap,
                      const PerfPhases& perf = {});

/// JSON document with the same content (workers, metrics, perf_phases).
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap,
                        const PerfPhases& perf = {});

/// Convenience: snapshot @p session and write to @p path. Format is chosen
/// by extension — ".json" gets the JSON document, anything else Prometheus
/// text. @throws std::runtime_error when the file cannot be written.
void export_metrics_file(const Session& session, const std::string& path);

/// Convenience: write @p session's trace as Chrome trace JSON to @p path.
/// @throws std::runtime_error when tracing is disabled on the session or
/// the file cannot be written.
void export_trace_file(const Session& session, const std::string& path);

}  // namespace statfi::telemetry

#include "telemetry/history.hpp"

#include <cstring>
#include <stdexcept>

#include "io/artifact.hpp"
#include "report/json.hpp"

namespace statfi::telemetry {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'F', 'H'};

void put_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_f64(std::string& out, double v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked reads over the frame payload; a short payload is a
/// distinct error from a checksum mismatch (the frame already validated).
class Reader {
public:
    explicit Reader(const std::string& payload) : payload_(payload) {}

    std::uint32_t u32() { return read<std::uint32_t>(); }
    std::uint64_t u64() { return read<std::uint64_t>(); }
    double f64() { return read<double>(); }

    std::string str() {
        const std::uint32_t len = u32();
        if (len > payload_.size() - pos_)
            throw std::runtime_error("metrics history: truncated series name");
        std::string s = payload_.substr(pos_, len);
        pos_ += len;
        return s;
    }

private:
    template <typename T>
    T read() {
        if (sizeof(T) > payload_.size() - pos_)
            throw std::runtime_error("metrics history: truncated payload");
        T v;
        std::memcpy(&v, payload_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    const std::string& payload_;
    std::size_t pos_ = 0;
};

}  // namespace

HistoryRing::HistoryRing(std::vector<std::string> series, std::size_t capacity)
    : series_(std::move(series)), capacity_(capacity == 0 ? 1 : capacity) {}

void HistoryRing::append(double seconds, const std::vector<double>& values) {
    if (values.size() != series_.size())
        throw std::logic_error("metrics history: sample has " +
                               std::to_string(values.size()) +
                               " values, ring has " +
                               std::to_string(series_.size()) + " series");
    if (ring_.size() == capacity_) ring_.erase(ring_.begin());
    ring_.push_back(HistorySample{seconds, values});
    ++total_;
}

std::vector<HistorySample> HistoryRing::samples() const { return ring_; }

void HistoryRing::save(const std::string& path) const {
    std::string payload;
    payload.reserve(64 + ring_.size() * (series_.size() + 1) * sizeof(double));
    put_u32(payload, static_cast<std::uint32_t>(series_.size()));
    put_u32(payload, static_cast<std::uint32_t>(capacity_));
    put_u64(payload, total_);
    put_u64(payload, ring_.size());
    for (const std::string& name : series_) {
        put_u32(payload, static_cast<std::uint32_t>(name.size()));
        payload += name;
    }
    for (const HistorySample& sample : ring_) {
        put_f64(payload, sample.seconds);
        for (const double v : sample.values) put_f64(payload, v);
    }
    io::write_framed_atomic(path, kMagic, kFormatVersion, payload);
}

HistoryRing HistoryRing::load(const std::string& path) {
    const std::string payload =
        io::read_framed(path, kMagic, kFormatVersion, "metrics history");
    Reader in(payload);
    const std::uint32_t series_count = in.u32();
    const std::uint32_t capacity = in.u32();
    const std::uint64_t total = in.u64();
    const std::uint64_t count = in.u64();
    if (count > capacity)
        throw std::runtime_error(
            "metrics history: sample count exceeds capacity");
    std::vector<std::string> series;
    series.reserve(series_count);
    for (std::uint32_t i = 0; i < series_count; ++i) series.push_back(in.str());

    HistoryRing ring(std::move(series), capacity);
    for (std::uint64_t i = 0; i < count; ++i) {
        HistorySample sample;
        sample.seconds = in.f64();
        sample.values.reserve(series_count);
        for (std::uint32_t s = 0; s < series_count; ++s)
            sample.values.push_back(in.f64());
        ring.ring_.push_back(std::move(sample));
    }
    ring.total_ = total;
    return ring;
}

void HistoryRing::write_json(std::ostream& out) const {
    report::JsonWriter json(out, 0);
    json.begin_object();
    json.key("series").begin_array();
    for (const std::string& name : series_) json.value(name);
    json.end_array();
    json.field("capacity", static_cast<std::uint64_t>(capacity_));
    json.field("total", total_);
    json.key("samples").begin_array();
    for (const HistorySample& sample : ring_) {
        json.begin_object();
        json.field("seconds", sample.seconds);
        json.key("values").begin_array();
        for (const double v : sample.values) json.value(v);
        json.end_array();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    json.finish();
}

}  // namespace statfi::telemetry

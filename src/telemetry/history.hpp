#pragma once
// HistoryRing: durable metrics history for the fleet observability plane
// (DESIGN.md decision 18) — a bounded ring of (timestamp, values...) samples
// a periodic sampler appends while a campaign runs, persisted as a compact
// "TSF" (time-series fleet) artifact next to the campaign's other cache
// artifacts (`metrics.tsf`).
//
// Design constraints, in order:
//  * bounded: a campaign that runs for hours must not grow an unbounded
//    file — the ring keeps the newest `capacity` samples (oldest evicted);
//  * crash-safe: each save is one framed atomic rewrite (io::write_framed
//    envelope: magic + version + CRC32), so a SIGKILL mid-sample leaves the
//    previous complete snapshot, never a torn file;
//  * self-describing: the file carries its own series names, so readers
//    (the /campaigns/<id>/history endpoint, `statfi report` sparklines)
//    need no schema side-channel and old files keep loading when series
//    are added.
//
// The file is small by construction (capacity 512 × ~9 doubles ≈ 37 KB),
// so "append" as whole-file rewrite costs less than one engine heartbeat.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace statfi::telemetry {

/// One sample row: seconds since campaign start plus one double per series.
struct HistorySample {
    double seconds = 0.0;
    std::vector<double> values;
};

class HistoryRing {
public:
    static constexpr std::uint32_t kFormatVersion = 1;

    /// @p series names each value column; @p capacity bounds retained
    /// samples (>= 1 enforced).
    explicit HistoryRing(std::vector<std::string> series,
                         std::size_t capacity = 512);

    /// Append one sample (values.size() must equal series count; throws
    /// std::logic_error otherwise). Evicts the oldest sample at capacity.
    void append(double seconds, const std::vector<double>& values);

    [[nodiscard]] const std::vector<std::string>& series() const noexcept {
        return series_;
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Samples ever appended (monotonic; exceeds size() once wrapped).
    [[nodiscard]] std::uint64_t total_appended() const noexcept {
        return total_;
    }
    /// Retained samples, oldest first.
    [[nodiscard]] std::vector<HistorySample> samples() const;
    [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

    /// Persist as a framed TSF artifact (atomic temp + rename).
    void save(const std::string& path) const;
    /// Load a TSF artifact; throws std::runtime_error naming the violated
    /// invariant (missing/corrupt/short file, unknown version).
    static HistoryRing load(const std::string& path);

    /// JSON document: {"series":[...], "capacity":N, "total":N,
    /// "samples":[{"seconds":S,"values":[...]}, ...]} oldest first.
    void write_json(std::ostream& out) const;

private:
    std::vector<std::string> series_;
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    std::vector<HistorySample> ring_;  ///< oldest first
};

}  // namespace statfi::telemetry

#include "telemetry/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "telemetry/exporters.hpp"

namespace statfi::telemetry {

namespace {

const char* reason_of(int status) {
    switch (status) {
        case 200: return "OK";
        case 202: return "Accepted";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 409: return "Conflict";
        case 413: return "Payload Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "Response";
    }
}

std::string serialize(const HttpResponse& response, bool head_only) {
    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << " " << reason_of(response.status)
        << "\r\n"
        << "Content-Type: " << response.content_type << "\r\n"
        << "Content-Length: " << response.body.size() << "\r\n"
        << "Connection: close\r\n\r\n";
    if (!head_only) out << response.body;
    return out.str();
}

HttpResponse plain(int status, std::string body) {
    return HttpResponse{status, "text/plain", std::move(body)};
}

/// Case-insensitive Content-Length lookup in a raw header block. Returns
/// -1 when absent, -2 when unparseable.
long long content_length_of(std::string_view headers) {
    std::size_t pos = 0;
    while (pos < headers.size()) {
        std::size_t eol = headers.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = headers.size();
        const std::string_view line = headers.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
            std::string name(line.substr(0, colon));
            std::transform(name.begin(), name.end(), name.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            if (name == "content-length") {
                const std::string value(line.substr(colon + 1));
                try {
                    const long long n = std::stoll(value);
                    return n < 0 ? -2 : n;
                } catch (const std::exception&) {
                    return -2;
                }
            }
        }
        pos = eol + 2;
    }
    return -1;
}

}  // namespace

bool HttpRequest::query_flag(std::string_view key) const {
    std::size_t pos = 0;
    while (pos <= query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos) amp = query.size();
        const std::string_view param =
            std::string_view(query).substr(pos, amp - pos);
        const std::size_t eq = param.find('=');
        const std::string_view name =
            eq == std::string_view::npos ? param : param.substr(0, eq);
        if (name == key)
            return eq == std::string_view::npos || param.substr(eq + 1) != "0";
        pos = amp + 1;
    }
    return false;
}

HttpServer::HttpServer(const Options& options) : options_(options) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error(std::string("http server: socket: ") +
                                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        throw std::runtime_error(
            "http server: cannot bind 127.0.0.1:" +
            std::to_string(options.port) + ": " + std::strerror(err));
    }
    if (::listen(listen_fd_, 64) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        throw std::runtime_error(std::string("http server: listen: ") +
                                 std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string method, std::string path,
                       HttpHandler handler) {
    routes_.push_back(
        Route{std::move(method), std::move(path), false, std::move(handler)});
}

void HttpServer::route_prefix(std::string method, std::string prefix,
                              HttpHandler handler) {
    routes_.push_back(
        Route{std::move(method), std::move(prefix), true, std::move(handler)});
}

void HttpServer::start() {
    if (accept_thread_.joinable()) return;  // already started
    const std::size_t pool = std::max<std::size_t>(1, options_.handler_threads);
    handlers_.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t)
        handlers_.emplace_back(&HttpServer::handler_loop, this);
    accept_thread_ = std::thread(&HttpServer::accept_loop, this);
}

void HttpServer::stop() {
    if (stop_.exchange(true)) {
        // A second stop still joins anything a racing first stop missed.
    }
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& t : handlers_)
        if (t.joinable()) t.join();
    handlers_.clear();
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        for (const int fd : pending_) ::close(fd);
        pending_.clear();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void HttpServer::accept_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // 100ms poll tick bounds the shutdown latency without a self-pipe.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            pending_.push_back(client);
        }
        queue_cv_.notify_one();
    }
}

void HttpServer::handler_loop() {
    for (;;) {
        int client = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [&] {
                return stop_.load(std::memory_order_relaxed) ||
                       !pending_.empty();
            });
            if (pending_.empty()) return;  // stopping and drained
            client = pending_.front();
            pending_.pop_front();
        }
        handle(client);
        ::close(client);
    }
}

void HttpServer::handle(int client_fd) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.read_timeout_ms);
    const auto send_all = [&](const char* bytes, std::size_t size) -> bool {
        std::size_t sent = 0;
        while (sent < size) {
            const ssize_t n = ::send(client_fd, bytes + sent, size - sent,
                                     MSG_NOSIGNAL);
            if (n <= 0) return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    };
    const auto answer = [&](const HttpResponse& response, bool head_only) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (response.stream && !head_only) {
            // Streaming body: headers out first, then one HTTP/1.1 chunk
            // per sink() call. The sink reports the client's liveness back
            // so the producer stops on disconnect or server shutdown.
            std::ostringstream header;
            header << "HTTP/1.1 " << response.status << " "
                   << reason_of(response.status) << "\r\n"
                   << "Content-Type: " << response.content_type << "\r\n"
                   << "Transfer-Encoding: chunked\r\n"
                   << "Connection: close\r\n\r\n";
            const std::string head_wire = header.str();
            bool alive = send_all(head_wire.data(), head_wire.size());
            const ChunkSink sink = [&](std::string_view chunk) -> bool {
                if (stop_.load(std::memory_order_relaxed)) alive = false;
                if (!alive || chunk.empty()) return alive;
                char frame[32];
                const int frame_len = std::snprintf(
                    frame, sizeof(frame), "%zx\r\n", chunk.size());
                alive = send_all(frame, static_cast<std::size_t>(frame_len)) &&
                        send_all(chunk.data(), chunk.size()) &&
                        send_all("\r\n", 2);
                return alive;
            };
            response.stream(sink);
            if (alive && !stop_.load(std::memory_order_relaxed))
                send_all("0\r\n\r\n", 5);
            return;
        }
        const std::string wire = serialize(response, head_only);
        send_all(wire.data(), wire.size());
    };
    // Reads are bounded three ways: total size (413), wall clock (408), and
    // connection close (408 for a truncated request).
    std::string data;
    const auto read_more = [&]() -> int {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (remaining <= 0) return 0;
        pollfd pfd{client_fd, POLLIN, 0};
        if (::poll(&pfd, 1, static_cast<int>(remaining)) <= 0) return 0;
        char buf[4096];
        const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
        if (n <= 0) return 0;
        data.append(buf, static_cast<std::size_t>(n));
        return 1;
    };

    // Phase 1: the header block.
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
        if (data.size() > options_.max_request_bytes)
            return answer(plain(413, "request header exceeds the limit\n"),
                          false);
        if (!read_more())
            return answer(plain(408, "timed out reading the request\n"),
                          false);
    }

    // Request line: METHOD SP TARGET SP HTTP/x.
    const std::size_t line_end = data.find("\r\n");
    std::istringstream line(data.substr(0, line_end));
    HttpRequest request;
    std::string http_version;
    line >> request.method >> request.target >> http_version;
    if (request.method.empty() || request.target.empty() ||
        request.target[0] != '/' || http_version.rfind("HTTP/", 0) != 0)
        return answer(plain(400, "malformed request line\n"), false);
    const std::size_t query = request.target.find('?');
    if (query != std::string::npos) {
        request.query = request.target.substr(query + 1);
        request.target.resize(query);  // routes match on the bare path
    }

    if (request.method != "GET" && request.method != "HEAD" &&
        request.method != "POST")
        return answer(plain(405, "supported methods: GET, HEAD, POST\n"),
                      false);

    // Phase 2: the body (POST only; Content-Length framed).
    const long long declared = content_length_of(
        std::string_view(data).substr(line_end + 2, header_end - line_end - 2));
    if (declared == -2)
        return answer(plain(400, "unparseable Content-Length\n"), false);
    if (request.method == "POST") {
        const std::size_t body_begin = header_end + 4;
        const std::size_t body_len =
            declared < 0 ? 0 : static_cast<std::size_t>(declared);
        if (body_begin + body_len > options_.max_request_bytes)
            return answer(plain(413, "request body exceeds the limit\n"),
                          false);
        while (data.size() < body_begin + body_len) {
            if (!read_more())
                return answer(plain(408, "timed out reading the body\n"),
                              false);
        }
        request.body = data.substr(body_begin, body_len);
    }

    const bool head = request.method == "HEAD";
    if (head) request.method = "GET";  // HEAD is GET minus the body
    answer(dispatch(request), head);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
    const Route* best_prefix = nullptr;
    bool path_exists = false;
    for (const Route& r : routes_) {
        const bool path_match =
            r.prefix ? request.target.rfind(r.key, 0) == 0
                     : request.target == r.key;
        if (!path_match) continue;
        path_exists = true;
        if (r.method != request.method) continue;
        if (!r.prefix) {
            try {
                return r.handler(request);
            } catch (const std::exception& e) {
                return plain(500, std::string("handler error: ") + e.what() +
                                      "\n");
            }
        }
        if (!best_prefix || r.key.size() > best_prefix->key.size())
            best_prefix = &r;
    }
    if (best_prefix) {
        try {
            return best_prefix->handler(request);
        } catch (const std::exception& e) {
            return plain(500,
                         std::string("handler error: ") + e.what() + "\n");
        }
    }
    if (path_exists)
        return plain(405, "method not allowed for this endpoint\n");
    return plain(404, "unknown endpoint\n");
}

// --- StatusServer: the observatory's four GET routes -----------------------

StatusServer::StatusServer(Session* session, std::uint16_t port)
    : session_(session), http_([&] {
          if (!session)
              throw std::runtime_error("status server: null telemetry session");
          HttpServer::Options options;
          options.port = port;
          options.handler_threads = 2;
          return options;
      }()) {
    http_.route("GET", "/metrics", [this](const HttpRequest&) {
        std::ostringstream body;
        write_prometheus(body, session_->metrics().snapshot(),
                         session_->perf_phases());
        return HttpResponse{200, "text/plain; version=0.0.4", body.str()};
    });
    http_.route("GET", "/status", [this](const HttpRequest&) {
        return HttpResponse{200, "application/json",
                            session_->status().snapshot_json()};
    });
    http_.route("GET", "/trace", [this](const HttpRequest&) {
        const TraceRecorder* trace = session_->trace();
        if (!trace)
            return HttpResponse{404, "text/plain",
                                "tracing disabled on this session\n"};
        std::ostringstream body;
        trace->write_chrome_trace(body);
        return HttpResponse{200, "application/json", body.str()};
    });
    http_.route("GET", "/", [](const HttpRequest&) {
        return HttpResponse{200, "text/plain",
                            "statfi campaign observatory\n"
                            "  /metrics  Prometheus exposition\n"
                            "  /status   JSON campaign snapshot\n"
                            "  /trace    Chrome trace of phases\n"};
    });
    http_.start();
}

}  // namespace statfi::telemetry

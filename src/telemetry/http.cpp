#include "telemetry/http.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "telemetry/exporters.hpp"

namespace statfi::telemetry {

namespace {

std::string http_response(int code, const char* reason,
                          const char* content_type,
                          const std::string& body, bool head_only) {
    std::ostringstream out;
    out << "HTTP/1.1 " << code << " " << reason << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n";
    if (!head_only) out << body;
    return out.str();
}

}  // namespace

StatusServer::StatusServer(Session* session, std::uint16_t port)
    : session_(session) {
    if (!session_)
        throw std::runtime_error("status server: null telemetry session");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error(std::string("status server: socket: ") +
                                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        throw std::runtime_error(
            "status server: cannot bind 127.0.0.1:" + std::to_string(port) +
            ": " + std::strerror(err));
    }
    if (::listen(listen_fd_, 16) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        throw std::runtime_error(std::string("status server: listen: ") +
                                 std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread(&StatusServer::serve, this);
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::stop() {
    if (!stop_.exchange(true) && thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void StatusServer::serve() {
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // 100ms poll tick bounds the shutdown latency without a self-pipe.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0) continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        handle(client);
        ::close(client);
    }
}

void StatusServer::handle(int client_fd) {
    // One bounded read is enough: requests are tiny GETs and we only need
    // the request line. Stop at the header terminator or 8 KiB.
    std::string request;
    char buf[2048];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find("\r\n");
    if (line_end == std::string::npos) return;
    std::istringstream line(request.substr(0, line_end));
    std::string method, target;
    line >> method >> target;
    const std::size_t query = target.find('?');
    if (query != std::string::npos) target.resize(query);

    const std::string response = respond(method, target);
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::size_t sent = 0;
    while (sent < response.size()) {
        const ssize_t n = ::send(client_fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
}

std::string StatusServer::respond(const std::string& method,
                                  const std::string& target) const {
    const bool head = method == "HEAD";
    if (!head && method != "GET")
        return http_response(405, "Method Not Allowed", "text/plain",
                             "read-only endpoint: GET or HEAD\n", false);
    if (target == "/metrics") {
        std::ostringstream body;
        write_prometheus(body, session_->metrics().snapshot(),
                         session_->perf_phases());
        return http_response(200, "OK", "text/plain; version=0.0.4",
                             body.str(), head);
    }
    if (target == "/status")
        return http_response(200, "OK", "application/json",
                             session_->status().snapshot_json(), head);
    if (target == "/trace") {
        const TraceRecorder* trace = session_->trace();
        if (!trace)
            return http_response(404, "Not Found", "text/plain",
                                 "tracing disabled on this session\n", false);
        std::ostringstream body;
        trace->write_chrome_trace(body);
        return http_response(200, "OK", "application/json", body.str(),
                             head);
    }
    if (target == "/")
        return http_response(200, "OK", "text/plain",
                             "statfi campaign observatory\n"
                             "  /metrics  Prometheus exposition\n"
                             "  /status   JSON campaign snapshot\n"
                             "  /trace    Chrome trace of phases\n",
                             head);
    return http_response(404, "Not Found", "text/plain",
                         "unknown endpoint\n", false);
}

}  // namespace statfi::telemetry

#pragma once
// HttpServer: a dependency-free, multi-route HTTP/1.1 layer for the
// observatory and the StatFI service daemon (DESIGN.md §5.13, decision 16).
//
// Scope is deliberately small — this is a loopback control/scrape surface,
// not a web framework: bounded request size, one request per connection
// (Connection: close), GET/HEAD/POST only, exact-match and prefix routes,
// a fixed handler pool, and a read timeout so a stalled or malicious
// client can never hang a handler thread. The server binds 127.0.0.1 only
// — fleets are reached through a tunnel or sidecar, never exposed raw.
//
// Failure taxonomy (each with a distinct status, tested in
// tests/service/http_server_test.cpp):
//   malformed request line            -> 400
//   method outside GET/HEAD/POST      -> 405
//   method not registered for a path  -> 405
//   unknown path                      -> 404
//   read timeout / truncated request  -> 408
//   request larger than the cap       -> 413
//
// StatusServer — the read-only, single-campaign observatory endpoint of
// PR 5 — is now a thin adapter that registers four GET routes on an
// HttpServer; its endpoint contract (/status /metrics /trace /) is
// unchanged.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/session.hpp"

namespace statfi::telemetry {

struct HttpRequest {
    std::string method;  ///< "GET" | "HEAD" | "POST"
    std::string target;  ///< path only (query string stripped)
    std::string query;   ///< raw query string after '?' (no decoding)
    std::string body;    ///< POST payload (empty for GET/HEAD)

    /// True when the query string contains @p key as `key` or `key=value`
    /// with a value other than "0". No percent-decoding — fleet query
    /// parameters are plain tokens like follow=1.
    [[nodiscard]] bool query_flag(std::string_view key) const;
};

/// Writes one body chunk to the client. Returns false once the client is
/// gone (disconnect) or the server is stopping — the stream function must
/// stop producing then.
using ChunkSink = std::function<bool(std::string_view chunk)>;
/// A streaming body producer: called once on the handler thread after the
/// response headers go out; every sink() call becomes one HTTP/1.1 chunk.
using StreamFn = std::function<void(const ChunkSink&)>;

struct HttpResponse {
    HttpResponse() = default;
    HttpResponse(int s, std::string type, std::string content)
        : status(s), content_type(std::move(type)), body(std::move(content)) {}

    int status = 200;
    std::string content_type = "text/plain";
    std::string body;
    /// When set (GET only), the response is sent Transfer-Encoding: chunked
    /// and @p stream produces the body incrementally — the long-poll path
    /// behind /campaigns/<id>/events?follow=1. `body` is ignored then
    /// (HEAD still answers headers-only).
    StreamFn stream;
};

/// A route handler. Runs on a handler-pool thread; must be thread-safe
/// against concurrent invocations and against the state it reads/writes.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
public:
    struct Options {
        std::uint16_t port = 0;      ///< 0 picks an ephemeral port
        std::size_t handler_threads = 2;
        /// Hard cap on one request (request line + headers + body). Anything
        /// larger is answered 413 without reading the rest.
        std::size_t max_request_bytes = 1 << 20;
        /// Patience for a slow client, per poll; a request that has not
        /// completed within this window is answered 408 and closed.
        int read_timeout_ms = 2000;
    };

    /// Bind 127.0.0.1:port. Routes are registered afterwards; call start()
    /// to begin serving. @throws std::runtime_error when the socket cannot
    /// be bound.
    explicit HttpServer(const Options& options);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Register an exact-match route, e.g. ("GET", "/status", ...). HEAD is
    /// served by GET routes automatically (body stripped). Register before
    /// start(); not thread-safe afterwards.
    void route(std::string method, std::string path, HttpHandler handler);

    /// Register a prefix route, e.g. ("GET", "/campaigns/", ...). Exact
    /// routes win; the longest matching prefix is tried next.
    void route_prefix(std::string method, std::string prefix,
                      HttpHandler handler);

    /// Start the accept loop and the handler pool.
    void start();

    /// Stop accepting, drain queued connections, join every thread
    /// (idempotent; also run by the destructor).
    void stop();

    /// The port actually bound (resolves port 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Requests answered so far (any status).
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// True once stop() has begun — long-running stream handlers poll this
    /// (their ChunkSink also starts returning false) so shutdown never
    /// waits on a follow stream.
    [[nodiscard]] bool stopping() const noexcept {
        return stop_.load(std::memory_order_relaxed);
    }

private:
    struct Route {
        std::string method;
        std::string key;  ///< path (exact) or prefix
        bool prefix = false;
        HttpHandler handler;
    };

    void accept_loop();
    void handler_loop();
    void handle(int client_fd);
    [[nodiscard]] HttpResponse dispatch(const HttpRequest& request) const;

    Options options_;
    std::vector<Route> routes_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::thread accept_thread_;
    std::vector<std::thread> handlers_;
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_;  ///< accepted fds awaiting a handler thread
};

/// StatusServer: the read-only single-campaign observatory endpoint —
/// four GET routes (/metrics /status /trace /) over one HttpServer.
/// Everything it serves is a snapshot of borrowed session state; it cannot
/// perturb campaign outcomes (bit-identical with or without it).
class StatusServer {
public:
    /// Bind 127.0.0.1:@p port (0 = ephemeral) and serve @p session. The
    /// session is borrowed and must outlive the server.
    /// @throws std::runtime_error when the socket cannot be bound.
    StatusServer(Session* session, std::uint16_t port);
    ~StatusServer() = default;

    StatusServer(const StatusServer&) = delete;
    StatusServer& operator=(const StatusServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return http_.port(); }
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
        return http_.requests_served();
    }

    void stop() { http_.stop(); }

private:
    Session* session_;
    HttpServer http_;
};

}  // namespace statfi::telemetry

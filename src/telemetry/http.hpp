#pragma once
// StatusServer: a dependency-free, read-only HTTP/1.1 endpoint for live
// campaign observation (DESIGN.md §5.13).
//
// Scope is deliberately tiny — this is a poll-based scrape target, not a
// web framework: one accept loop on a background thread, one request per
// connection (Connection: close), GET/HEAD only, bounded request size.
// Endpoint contract:
//   GET /metrics  Prometheus text exposition of the session's registry
//                 (same bytes as --metrics-out)
//   GET /status   JSON snapshot from the session's StatusBoard: state,
//                 phase stack, campaign descriptor, progress/ETA
//   GET /trace    Chrome trace JSON of the phases recorded so far
//                 (404 when tracing is disabled on the session)
//   GET /         text index of the endpoints
// Everything else is 404; non-GET/HEAD is 405. The server binds
// 127.0.0.1 only — campaign fleets are scraped through a tunnel or sidecar,
// never exposed raw.
//
// The server only ever READS session state (metrics snapshots, the trace
// buffer, the status board) — it cannot perturb campaign outcomes, which
// stay bit-identical with or without it (asserted in
// tests/telemetry/eventlog_test.cpp and gated in bench_perf
// --observatory-json).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "telemetry/session.hpp"

namespace statfi::telemetry {

class StatusServer {
public:
    /// Bind 127.0.0.1:@p port (0 picks an ephemeral port — read the actual
    /// one from port()) and start serving @p session. The session is
    /// borrowed and must outlive the server.
    /// @throws std::runtime_error when the socket cannot be bound.
    StatusServer(Session* session, std::uint16_t port);
    ~StatusServer();

    StatusServer(const StatusServer&) = delete;
    StatusServer& operator=(const StatusServer&) = delete;

    /// The port actually bound (resolves port 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Requests served so far (tests / smoke diagnostics).
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stop accepting and join the server thread (idempotent; also run by
    /// the destructor).
    void stop();

private:
    void serve();
    void handle(int client_fd);
    [[nodiscard]] std::string respond(const std::string& method,
                                      const std::string& target) const;

    Session* session_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::thread thread_;
};

}  // namespace statfi::telemetry

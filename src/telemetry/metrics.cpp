#include "telemetry/metrics.hpp"

#include <bit>
#include <stdexcept>

namespace statfi::telemetry {

namespace {

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t b) { return std::bit_cast<double>(b); }

}  // namespace

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
    for (const MetricValue& m : metrics)
        if (m.name == name) return &m;
    return nullptr;
}

void MetricsRegistry::require_unfrozen(const char* op) const {
    if (frozen())
        throw std::logic_error(std::string("MetricsRegistry: ") + op +
                               " after freeze() — the metric schema is fixed "
                               "once workers are bound");
}

MetricId MetricsRegistry::add_counter(std::string name, std::string help) {
    require_unfrozen("add_counter");
    Descriptor d;
    d.name = std::move(name);
    d.help = std::move(help);
    d.kind = MetricKind::Counter;
    d.slot = scalar_slots_++;
    metrics_.push_back(std::move(d));
    return metrics_.size() - 1;
}

MetricId MetricsRegistry::add_gauge(std::string name, std::string help) {
    require_unfrozen("add_gauge");
    Descriptor d;
    d.name = std::move(name);
    d.help = std::move(help);
    d.kind = MetricKind::Gauge;
    d.slot = scalar_slots_++;
    metrics_.push_back(std::move(d));
    return metrics_.size() - 1;
}

MetricId MetricsRegistry::add_histogram(std::string name, std::string help,
                                        std::vector<double> bounds) {
    require_unfrozen("add_histogram");
    if (bounds.empty())
        throw std::invalid_argument(
            "MetricsRegistry: histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds.size(); ++i)
        if (!(bounds[i - 1] < bounds[i]))
            throw std::invalid_argument(
                "MetricsRegistry: histogram bounds must be strictly "
                "increasing");
    Descriptor d;
    d.name = std::move(name);
    d.help = std::move(help);
    d.kind = MetricKind::Histogram;
    d.hist_offset = hist_slots_;
    d.bounds = std::move(bounds);
    // buckets + overflow + count + sum
    hist_slots_ += d.bounds.size() + 3;
    metrics_.push_back(std::move(d));
    return metrics_.size() - 1;
}

void MetricsRegistry::freeze(std::size_t workers) {
    if (workers == 0)
        throw std::invalid_argument("MetricsRegistry: freeze(0)");
    if (frozen()) {
        if (workers_.size() != workers)
            throw std::logic_error(
                "MetricsRegistry: already frozen for " +
                std::to_string(workers_.size()) + " worker(s), cannot "
                "re-freeze for " + std::to_string(workers));
        return;
    }
    workers_.resize(workers);
    for (WorkerStore& w : workers_) {
        if (scalar_slots_ > 0)
            w.scalars = std::make_unique<Slot[]>(scalar_slots_);
        if (hist_slots_ > 0) w.hist = std::make_unique<Slot[]>(hist_slots_);
    }
}

void MetricsRegistry::inc(std::size_t worker, MetricId id,
                          std::uint64_t delta) {
    // Single-writer slot: the owning worker is the only mutator, so a
    // relaxed load+store is not a lost-update risk, and the atomic type
    // makes concurrent snapshot() reads well-defined.
    std::atomic<std::uint64_t>& slot =
        workers_[worker].scalars[metrics_[id].slot].v;
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

void MetricsRegistry::set_gauge(MetricId id, double value) {
    workers_[0].scalars[metrics_[id].slot].v.store(double_bits(value),
                                                   std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::size_t worker, MetricId id, double value) {
    const Descriptor& d = metrics_[id];
    std::size_t bucket = d.bounds.size();  // +Inf overflow by default
    for (std::size_t b = 0; b < d.bounds.size(); ++b) {
        if (value <= d.bounds[b]) {
            bucket = b;
            break;
        }
    }
    Slot* block = workers_[worker].hist.get() + d.hist_offset;
    auto bump = [](Slot& s, std::uint64_t delta) {
        s.v.store(s.v.load(std::memory_order_relaxed) + delta,
                  std::memory_order_relaxed);
    };
    bump(block[bucket], 1);
    bump(block[d.bounds.size() + 1], 1);  // count
    Slot& sum = block[d.bounds.size() + 2];
    sum.v.store(double_bits(bits_double(sum.v.load(
                                std::memory_order_relaxed)) +
                            value),
                std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    snap.workers = workers_.size();
    snap.metrics.reserve(metrics_.size());
    for (const Descriptor& d : metrics_) {
        MetricValue v;
        v.name = d.name;
        v.help = d.help;
        v.kind = d.kind;
        switch (d.kind) {
            case MetricKind::Counter:
                for (const WorkerStore& w : workers_)
                    v.counter +=
                        w.scalars[d.slot].v.load(std::memory_order_relaxed);
                break;
            case MetricKind::Gauge:
                if (!workers_.empty())
                    v.gauge = bits_double(workers_[0].scalars[d.slot].v.load(
                        std::memory_order_relaxed));
                break;
            case MetricKind::Histogram: {
                v.bounds = d.bounds;
                v.bucket_counts.assign(d.bounds.size() + 1, 0);
                for (const WorkerStore& w : workers_) {
                    const Slot* block = w.hist.get() + d.hist_offset;
                    for (std::size_t b = 0; b <= d.bounds.size(); ++b)
                        v.bucket_counts[b] +=
                            block[b].v.load(std::memory_order_relaxed);
                    v.count += block[d.bounds.size() + 1].v.load(
                        std::memory_order_relaxed);
                    v.sum += bits_double(block[d.bounds.size() + 2].v.load(
                        std::memory_order_relaxed));
                }
                break;
            }
        }
        snap.metrics.push_back(std::move(v));
    }
    return snap;
}

}  // namespace statfi::telemetry

#pragma once
// MetricsRegistry: the numeric half of the telemetry subsystem.
//
// Design constraints (DESIGN.md §5.12):
//  * The injection hot loop runs ~10^4..10^5 faults/second per worker, so a
//    counter increment must never contend: every worker owns a private,
//    cache-line-padded slot per metric and only ever writes its own slot.
//    Slots are std::atomic<u64> accessed with relaxed ordering — a relaxed
//    store by the single owning worker costs the same as a plain store on
//    every target we build for, but makes concurrent snapshot() reads
//    well-defined (TSan-clean) instead of racy.
//  * Aggregation happens on snapshot(): values are summed across worker
//    slots at read time, so the hot path never touches shared state.
//  * The metric schema is frozen before workers start (freeze(workers)):
//    registration allocates descriptor entries only; freeze() sizes the
//    per-worker slot arrays once, so the hot path indexes fixed vectors and
//    never observes a reallocation.
//
// Counters are u64 monotonic. Gauges are process-wide doubles (set, not
// accumulated — worker identity is meaningless for "golden accuracy").
// Histograms have fixed, registration-time bucket bounds with Prometheus
// `le` semantics (value <= bound, inclusive; implicit +Inf overflow bucket)
// plus a running sum and count.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace statfi::telemetry {

/// Index into the registry's descriptor table. Valid only for the registry
/// that issued it.
using MetricId = std::size_t;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Aggregated value of one metric, produced by MetricsRegistry::snapshot().
struct MetricValue {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;  ///< Counter: sum over workers
    double gauge = 0.0;         ///< Gauge: last set value
    /// Histogram: per-bucket counts (bounds.size() + 1, last = +Inf
    /// overflow), total count and sum of observed values.
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
};

struct MetricsSnapshot {
    std::size_t workers = 0;
    std::vector<MetricValue> metrics;

    /// Lookup by name (snapshot-sized linear scan; test/export convenience).
    [[nodiscard]] const MetricValue* find(const std::string& name) const;
};

class MetricsRegistry {
public:
    /// Register metrics, then freeze(workers), then increment. Registration
    /// after freeze() throws std::logic_error — the per-worker slot arrays
    /// are sized exactly once so the lock-free hot path never races a
    /// reallocation.
    MetricId add_counter(std::string name, std::string help);
    MetricId add_gauge(std::string name, std::string help);
    /// @p bounds must be strictly increasing upper bounds (Prometheus `le`,
    /// inclusive); an implicit +Inf bucket is appended.
    MetricId add_histogram(std::string name, std::string help,
                           std::vector<double> bounds);

    /// Allocate per-worker storage. Idempotent for the same worker count;
    /// throws std::logic_error on a different count (two engines must not
    /// share one registry with different shapes).
    void freeze(std::size_t workers);
    [[nodiscard]] bool frozen() const noexcept { return !workers_.empty(); }
    [[nodiscard]] std::size_t worker_count() const noexcept {
        return workers_.size();
    }

    // --- hot path (valid after freeze(); @p worker < worker_count()) ------
    void inc(std::size_t worker, MetricId id, std::uint64_t delta = 1);
    /// Gauges are process-wide: no worker parameter, last writer wins.
    void set_gauge(MetricId id, double value);
    void observe(std::size_t worker, MetricId id, double value);

    /// Aggregate every metric across workers. Safe to call concurrently
    /// with inc()/observe(); a snapshot taken mid-campaign sees some prefix
    /// of each worker's updates (relaxed reads), never torn values.
    [[nodiscard]] MetricsSnapshot snapshot() const;

private:
    struct Descriptor {
        std::string name;
        std::string help;
        MetricKind kind = MetricKind::Counter;
        std::size_t slot = 0;           ///< scalar slot (counter/gauge)
        std::size_t hist_offset = 0;    ///< first slot of histogram block
        std::vector<double> bounds;     ///< histogram upper bounds
    };

    /// One cache line per slot: no two workers' hot counters ever share a
    /// line, and within a worker adjacent metrics don't false-share either.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> v{0};
        Slot() = default;
        Slot(const Slot&) = delete;
    };

    /// Histogram block layout within hist: [buckets...][overflow][count][sum]
    /// where sum stores the bit pattern of a double. Fixed-size arrays
    /// (atomics are immovable; the arrays are sized exactly once by freeze).
    struct WorkerStore {
        std::unique_ptr<Slot[]> scalars;
        std::unique_ptr<Slot[]> hist;
    };

    void require_unfrozen(const char* op) const;

    std::vector<Descriptor> metrics_;
    std::size_t scalar_slots_ = 0;
    std::size_t hist_slots_ = 0;
    std::vector<WorkerStore> workers_;
};

}  // namespace statfi::telemetry

#include "telemetry/perf.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define STATFI_HAS_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define STATFI_HAS_PERF_EVENTS 0
#endif

namespace statfi::telemetry {

PerfProbe::~PerfProbe() { close(); }

bool PerfProbe::compiled_in() noexcept { return STATFI_HAS_PERF_EVENTS != 0; }

#if STATFI_HAS_PERF_EVENTS

namespace {

constexpr std::uint64_t kConfigs[PerfProbe::kEvents] = {
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

constexpr const char* kNames[PerfProbe::kEvents] = {
    "instructions", "cycles", "cache-misses", "branch-misses"};

int open_event(std::uint64_t config) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = config;
    attr.disabled = 0;        // count from open()
    attr.inherit = 1;         // include worker threads spawned later
    attr.exclude_kernel = 1;  // unprivileged-friendly (paranoid <= 2)
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0 /* this process */,
                -1 /* any cpu */, -1 /* no group: inherit forbids it */, 0));
}

}  // namespace

bool PerfProbe::open() {
    close();
    for (int i = 0; i < kEvents; ++i) {
        fds_[i] = open_event(kConfigs[i]);
        if (fds_[i] < 0) {
            reason_ = std::string("perf_event_open(") + kNames[i] +
                      ") failed: " + std::strerror(errno) +
                      " (container/CI without perf access? check "
                      "kernel.perf_event_paranoid)";
            close();
            return false;
        }
    }
    available_ = true;
    reason_.clear();
    return true;
}

void PerfProbe::close() {
    for (int& fd : fds_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
    }
    available_ = false;
    if (reason_.empty()) reason_ = "perf probe closed";
}

PerfSample PerfProbe::read() const {
    PerfSample s;
    if (!available_) return s;
    std::uint64_t values[kEvents] = {};
    for (int i = 0; i < kEvents; ++i) {
        if (::read(fds_[i], &values[i], sizeof(values[i])) !=
            sizeof(values[i]))
            return s;  // valid stays false
    }
    s.instructions = values[0];
    s.cycles = values[1];
    s.cache_misses = values[2];
    s.branch_misses = values[3];
    s.valid = true;
    return s;
}

#else  // !STATFI_HAS_PERF_EVENTS

bool PerfProbe::open() {
    reason_ = "perf_event_open not available on this platform";
    return false;
}

void PerfProbe::close() {}

PerfSample PerfProbe::read() const { return {}; }

#endif

PerfSample PerfProbe::delta_since(const PerfSample& earlier) const {
    PerfSample now = read();
    if (!now.valid || !earlier.valid) return {};
    PerfSample d;
    d.instructions = now.instructions - earlier.instructions;
    d.cycles = now.cycles - earlier.cycles;
    d.cache_misses = now.cache_misses - earlier.cache_misses;
    d.branch_misses = now.branch_misses - earlier.branch_misses;
    d.valid = true;
    return d;
}

}  // namespace statfi::telemetry

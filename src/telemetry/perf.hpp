#pragma once
// PerfProbe: hardware performance counters per campaign phase via Linux
// perf_event_open (instructions, cycles, cache-misses, branch-misses).
//
// Adapted from the probe pattern in perf-stat-collector's PerfProbes.h, with
// two policy changes for a library setting:
//  * compile-gated, not build-flag-gated: the implementation exists only
//    when <linux/perf_event.h> is present; elsewhere every call is a no-op
//    and compiled_in() is false.
//  * graceful runtime fallback: perf_event_open routinely fails inside
//    containers and CI (kernel.perf_event_paranoid, seccomp, missing PMU).
//    open() reports failure through unavailable_reason() and the probe
//    degrades to inert — telemetry still works, just without hardware
//    counters (DESIGN.md §5.12 lists the caveats).
//
// Counters are opened with inherit=1 so worker threads spawned after open()
// are counted too. inherit precludes PERF_FORMAT_GROUP reads, so the four
// events are independent fds read separately — fine at phase granularity
// (reads happen per campaign phase, not per fault).

#include <cstdint>
#include <string>

namespace statfi::telemetry {

struct PerfSample {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t branch_misses = 0;
    bool valid = false;

    PerfSample& operator+=(const PerfSample& o) {
        instructions += o.instructions;
        cycles += o.cycles;
        cache_misses += o.cache_misses;
        branch_misses += o.branch_misses;
        valid = valid || o.valid;
        return *this;
    }
};

class PerfProbe {
public:
    PerfProbe() = default;
    ~PerfProbe();
    PerfProbe(const PerfProbe&) = delete;
    PerfProbe& operator=(const PerfProbe&) = delete;

    /// True when the platform support was compiled in at all.
    static bool compiled_in() noexcept;

    /// Try to open the counters for this process (+ future threads).
    /// Returns available(); failure is not an error — see
    /// unavailable_reason().
    bool open();
    void close();

    [[nodiscard]] bool available() const noexcept { return available_; }
    [[nodiscard]] const std::string& unavailable_reason() const noexcept {
        return reason_;
    }

    /// Cumulative counts since open(). valid=false when unavailable or a
    /// counter read failed.
    [[nodiscard]] PerfSample read() const;

    /// read() minus @p earlier — the per-phase delta helper.
    [[nodiscard]] PerfSample delta_since(const PerfSample& earlier) const;

    static constexpr int kEvents = 4;

private:
    int fds_[kEvents] = {-1, -1, -1, -1};
    bool available_ = false;
    std::string reason_ = "perf probe not opened";
};

}  // namespace statfi::telemetry

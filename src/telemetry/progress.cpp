#include "telemetry/progress.hpp"

#include <ostream>
#include <stdexcept>

#include "report/table.hpp"

namespace statfi::telemetry {

ProgressReporter::ProgressReporter(ProgressFn fn, std::uint64_t total,
                                   std::uint64_t resumed,
                                   std::uint64_t stride)
    : fn_(std::move(fn)), total_(total), resumed_(resumed),
      start_(std::chrono::steady_clock::now()) {
    if (stride == 0 || (stride & (stride - 1)) != 0)
        throw std::invalid_argument(
            "ProgressReporter: stride must be a power of two");
    mask_ = stride - 1;
}

double ProgressReporter::elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
}

void ProgressReporter::report(std::uint64_t done) const {
    if (!fn_) return;
    ProgressInfo info;
    info.done = done;
    info.total = total_;
    info.elapsed_seconds = elapsed();
    const auto classified = done - resumed_;
    info.faults_per_second =
        info.elapsed_seconds > 0.0
            ? static_cast<double>(classified) / info.elapsed_seconds
            : 0.0;
    info.eta_seconds = info.faults_per_second > 0.0
                           ? static_cast<double>(total_ - done) /
                                 info.faults_per_second
                           : 0.0;
    fn_(info);
}

void ProgressReporter::finish(std::uint64_t classified) const {
    if (!fn_) return;
    ProgressInfo info;
    info.done = total_;
    info.total = total_;
    info.elapsed_seconds = elapsed();
    info.faults_per_second =
        info.elapsed_seconds > 0.0
            ? static_cast<double>(classified) / info.elapsed_seconds
            : 0.0;
    info.eta_seconds = 0.0;
    fn_(info);
}

ProgressFn ProgressReporter::stream_heartbeat(std::ostream& out) {
    return [&out](const ProgressInfo& p) {
        out << "\r  " << p.done << "/" << p.total << "  ("
            << report::fmt_u64(
                   static_cast<std::uint64_t>(p.faults_per_second))
            << " faults/s, ~"
            << report::fmt_u64(static_cast<std::uint64_t>(p.eta_seconds))
            << "s left)   " << std::flush;
        if (p.done == p.total) out << "\n";
    };
}

}  // namespace statfi::telemetry

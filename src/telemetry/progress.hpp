#pragma once
// ProgressReporter: the single implementation of campaign heartbeat/ETA.
//
// Before the telemetry subsystem, the rate/ETA arithmetic lived twice — in
// the engine's durable census and again in the shard runner's statistical
// slice — and a third fragment (the stderr formatting) in the CLI. All
// three now route through this class. The reporting contract:
//  * heartbeats are emitted every `stride` items (power of two, checked
//    with a mask so the hot loop pays one AND + compare when no journal or
//    reporter is attached);
//  * `done` counts resumed + newly classified items, but the rate reflects
//    only this run's work (resumed items were free);
//  * heartbeats go wherever the ProgressFn sends them — the stock
//    stderr_heartbeat() writes STRICTLY to its stream (stderr in the CLI),
//    never stdout, so `--json` stdout stays a single valid JSON document
//    (asserted in tests/telemetry/progress_test.cpp).

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <chrono>

namespace statfi::telemetry {

/// Heartbeat passed to campaign progress callbacks.
struct ProgressInfo {
    std::uint64_t done = 0;   ///< items classified or resumed so far
    std::uint64_t total = 0;  ///< items in this run's span
    double elapsed_seconds = 0.0;
    double faults_per_second = 0.0;  ///< classification rate of this run
    double eta_seconds = 0.0;        ///< estimated remaining wall time
};
using ProgressFn = std::function<void(const ProgressInfo&)>;

class ProgressReporter {
public:
    /// Inert reporter: due() is always false, report()/finish() no-ops.
    ProgressReporter() = default;

    /// @p total items in the span, of which @p resumed were replayed from a
    /// journal before this run started. @p stride must be a power of two.
    ProgressReporter(ProgressFn fn, std::uint64_t total,
                     std::uint64_t resumed = 0, std::uint64_t stride = 4096);

    [[nodiscard]] explicit operator bool() const noexcept {
        return static_cast<bool>(fn_);
    }

    /// Cheap hot-loop check: is @p done (resumed + classified) on a
    /// heartbeat stride?
    [[nodiscard]] bool due(std::uint64_t done) const noexcept {
        return fn_ && (done & mask_) == 0;
    }

    /// Emit a heartbeat at @p done items. Rate counts only this run's work
    /// (done - resumed); ETA extrapolates it over the remainder.
    void report(std::uint64_t done) const;

    /// Emit the final heartbeat: done == total, rate over @p classified
    /// items actually classified by this run.
    void finish(std::uint64_t classified) const;

    /// The stock heartbeat sink: carriage-return status line on @p out
    /// ("\r  done/total  (rate faults/s, ~eta s left)"), newline when the
    /// span completes. The CLI passes std::cerr — stdout is reserved for
    /// documents.
    static ProgressFn stream_heartbeat(std::ostream& out);

private:
    [[nodiscard]] double elapsed() const;

    ProgressFn fn_;
    std::uint64_t total_ = 0;
    std::uint64_t resumed_ = 0;
    std::uint64_t mask_ = 0xFFF;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace statfi::telemetry
